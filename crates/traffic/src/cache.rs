//! Set-associative cache models matching Table 4 of the paper.
//!
//! The paper's traced system: per-core 32 KB L1I + 32 KB L1D (4-way,
//! 32-byte blocks) and a private 256 KB L2 (16-way, 64-byte blocks), with
//! 80-cycle memory latency. The simulated sizes are deliberately reduced
//! from the physical 64 KB/2 MB configuration "to obtain sufficient
//! network traffic".
//!
//! These models drive [`crate::cachegen`], the cache-accurate alternative
//! to the statistical trace synthesizer in [`crate::coherence`].

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u32,
}

impl CacheConfig {
    /// Table 4 simulated L1 (instruction or data): 32 KB, 4-way, 32 B
    /// blocks.
    pub const L1_SIM: CacheConfig = CacheConfig {
        size_bytes: 32 * 1024,
        ways: 4,
        block_bytes: 32,
    };
    /// Table 4 simulated L2: 256 KB, 16-way, 64 B blocks.
    pub const L2_SIM: CacheConfig = CacheConfig {
        size_bytes: 256 * 1024,
        ways: 16,
        block_bytes: 64,
    };

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero or non-dividing sizes).
    pub fn sets(self) -> u32 {
        assert!(
            self.block_bytes > 0 && self.ways > 0,
            "degenerate cache geometry"
        );
        let lines = self.size_bytes / self.block_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "ways must divide the line count"
        );
        let sets = lines / self.ways;
        assert!(sets > 0, "cache must have at least one set");
        sets
    }

    /// The block-aligned address of `addr`.
    pub fn block_of(self, addr: u64) -> u64 {
        addr / u64::from(self.block_bytes) * u64::from(self.block_bytes)
    }

    fn set_of(self, addr: u64) -> usize {
        ((addr / u64::from(self.block_bytes)) % u64::from(self.sets())) as usize
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The block was present.
    Hit,
    /// The block was filled; `evicted` carries a dirty victim's block
    /// address if one was written back.
    Miss {
        /// Dirty victim written back, if any.
        evicted_dirty: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp: higher = more recent.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = cfg.sets() as usize;
        SetAssocCache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways as usize); n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses `addr`; a write marks the block dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        self.clock += 1;
        let set = self.cfg.set_of(addr);
        let tag = addr / u64::from(self.cfg.block_bytes);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= write;
            self.hits += 1;
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        let evicted_dirty = if lines.len() < self.cfg.ways as usize {
            None
        } else {
            let victim_idx = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("set is full, so non-empty");
            let victim = lines.swap_remove(victim_idx);
            victim
                .dirty
                .then_some(victim.tag * u64::from(self.cfg.block_bytes))
        };
        lines.push(Line {
            tag,
            dirty: write,
            lru: self.clock,
        });
        CacheOutcome::Miss { evicted_dirty }
    }

    /// Invalidates `addr` if present; returns whether the line was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.cfg.set_of(addr);
        let tag = addr / u64::from(self.cfg.block_bytes);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.tag == tag)?;
        Some(lines.swap_remove(idx).dirty)
    }

    /// Whether `addr` is currently cached.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.cfg.set_of(addr);
        let tag = addr / u64::from(self.cfg.block_bytes);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Where a hierarchy access was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyOutcome {
    /// Satisfied by the L1.
    L1Hit,
    /// Missed L1, hit the private L2.
    L2Hit,
    /// Missed both levels: the network must fetch the line. Carries any
    /// dirty L2 victim block to write back to memory.
    L2Miss {
        /// The 64-byte L2 block being fetched.
        block: u64,
        /// Dirty L2 victim, if one was evicted.
        writeback: Option<u64>,
    },
}

/// One core's private two-level hierarchy (L1D + L2; instruction fetches
/// can share the same interface with `is_write = false`).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
}

impl CacheHierarchy {
    /// Builds the Table 4 simulated hierarchy.
    pub fn table4() -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(CacheConfig::L1_SIM),
            l2: SetAssocCache::new(CacheConfig::L2_SIM),
        }
    }

    /// Builds a hierarchy from explicit configurations.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
        }
    }

    /// Performs one data access.
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyOutcome {
        match self.l1.access(addr, write) {
            CacheOutcome::Hit => HierarchyOutcome::L1Hit,
            CacheOutcome::Miss { .. } => {
                // L1 victims write through into the (inclusive-enough) L2
                // without network traffic; only L2 state matters here.
                match self.l2.access(addr, write) {
                    CacheOutcome::Hit => HierarchyOutcome::L2Hit,
                    CacheOutcome::Miss { evicted_dirty } => HierarchyOutcome::L2Miss {
                        block: self.l2.config().block_of(addr),
                        writeback: evicted_dirty,
                    },
                }
            }
        }
    }

    /// Invalidates a block in both levels (remote GetX).
    pub fn invalidate(&mut self, addr: u64) {
        self.l1.invalidate(addr);
        self.l2.invalidate(addr);
    }

    /// Whether the L2 holds the block (snoop hit).
    pub fn snoop(&self, addr: u64) -> bool {
        self.l2.contains(addr)
    }

    /// The L2 miss ratio so far.
    pub fn l2_miss_ratio(&self) -> f64 {
        self.l2.miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_geometries() {
        assert_eq!(CacheConfig::L1_SIM.sets(), 256); // 32KB / 32B / 4
        assert_eq!(CacheConfig::L2_SIM.sets(), 256); // 256KB / 64B / 16
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(CacheConfig::L1_SIM);
        assert!(matches!(c.access(0x1000, false), CacheOutcome::Miss { .. }));
        assert_eq!(c.access(0x1000, false), CacheOutcome::Hit);
        // Same block, different word.
        assert_eq!(c.access(0x101F, false), CacheOutcome::Hit);
        // Next block misses.
        assert!(matches!(c.access(0x1020, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // A tiny 2-way, 2-set cache for a controlled test.
        let cfg = CacheConfig {
            size_bytes: 128,
            ways: 2,
            block_bytes: 32,
        };
        assert_eq!(cfg.sets(), 2);
        let mut c = SetAssocCache::new(cfg);
        // Three blocks mapping to set 0: block addr multiples of 64.
        let (a, b, d) = (0u64, 64, 128);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now more recent than b
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let cfg = CacheConfig {
            size_bytes: 64,
            ways: 1,
            block_bytes: 32,
        };
        let mut c = SetAssocCache::new(cfg);
        c.access(0, true); // dirty fill of set 0
                           // Same set, different tag: evicts the dirty block.
        match c.access(64, false) {
            CacheOutcome::Miss {
                evicted_dirty: Some(victim),
            } => assert_eq!(victim, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        // Clean eviction reports none.
        match c.access(128, false) {
            CacheOutcome::Miss { evicted_dirty } => assert_eq!(evicted_dirty, None),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = SetAssocCache::new(CacheConfig::L1_SIM);
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert!(!c.contains(0x40));
        assert_eq!(c.invalidate(0x40), None);
    }

    #[test]
    fn hierarchy_l1_l2_filtering() {
        let mut h = CacheHierarchy::table4();
        let addr = 0xABC0;
        assert!(matches!(
            h.access(addr, false),
            HierarchyOutcome::L2Miss { .. }
        ));
        // L1 now holds it.
        assert_eq!(h.access(addr, false), HierarchyOutcome::L1Hit);
        // Evict from L1 only by touching many conflicting blocks; then the
        // L2 still hits. L1 set count = 256, block 32B: conflicting
        // addresses stride 256*32 = 8192.
        for i in 1..=4 {
            h.access(addr + i * 8192, false);
        }
        assert_eq!(h.access(addr, false), HierarchyOutcome::L2Hit);
    }

    #[test]
    fn hierarchy_snoop_and_invalidate() {
        let mut h = CacheHierarchy::table4();
        h.access(0x1234, true);
        assert!(h.snoop(0x1234));
        h.invalidate(0x1234);
        assert!(!h.snoop(0x1234));
        assert!(matches!(
            h.access(0x1234, false),
            HierarchyOutcome::L2Miss { .. }
        ));
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = SetAssocCache::new(CacheConfig::L1_SIM);
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig {
            size_bytes: 96,
            ways: 4,
            block_bytes: 32,
        }
        .sets();
    }
}
