//! Determinism-hygiene lint over the workspace sources.
//!
//! The repo's central contract is that identical spec + seed produce
//! byte-identical canonical reports. The hazards that break that
//! contract are boring and recurring: a wall-clock read leaking into a
//! result, iteration over an unordered hash container feeding a
//! canonical encoding, ambient process state (environment variables,
//! thread identity) steering simulation. This lint scans
//! `crates/*/src/**/*.rs` line by line for those patterns, scoped to
//! the code paths where they matter:
//!
//! * `wall-clock` — `Instant::now` / `SystemTime::now` anywhere except
//!   the observability layer (`obs/`), the watchdog and supervision
//!   modules (whose whole job is wall time), and the bench crate.
//! * `hash-iteration` — `HashMap` / `HashSet` in the canonical-report
//!   paths (`crates/lab`, `crates/netsim/src/obs`), where unordered
//!   iteration order could leak into encoded output.
//! * `ambient-env` — `env::var` / `thread::current` in the simulation
//!   core (`crates/core`, `crates/netsim`).
//!
//! Findings are matched against an allowlist file
//! (`results/analyze/srclint-allow.txt`) of audited exceptions, one
//! `<file> <rule> # justification` per line. A finding without an
//! allowlist entry fails the lint; so does a stale entry without a
//! finding — the list can only ever shrink to fit.
//!
//! Heuristics, deliberately: lines after a `#[cfg(test)]` marker are
//! skipped (tests may use wall clocks freely; by repo convention the
//! test module is the last item), as are `//` comment lines. This is a
//! grep with scoping, not a type checker — cheap, deterministic, and
//! good enough to keep hazards from landing silently.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint rule: a name, the substrings that trigger it, and the
/// path scope it applies to.
struct Rule {
    name: &'static str,
    needles: &'static [&'static str],
    applies: fn(&str) -> bool,
}

fn wall_clock_scope(path: &str) -> bool {
    !(path.contains("/obs/")
        || path.ends_with("watchdog.rs")
        || path.ends_with("supervise.rs")
        || path.starts_with("crates/bench/"))
}

fn hash_iteration_scope(path: &str) -> bool {
    path.starts_with("crates/lab/") || path.starts_with("crates/netsim/src/obs/")
}

fn ambient_env_scope(path: &str) -> bool {
    path.starts_with("crates/core/") || path.starts_with("crates/netsim/")
}

const RULES: [Rule; 3] = [
    Rule {
        name: "wall-clock",
        needles: &["Instant::now", "SystemTime::now"],
        applies: wall_clock_scope,
    },
    Rule {
        name: "hash-iteration",
        needles: &["HashMap", "HashSet"],
        applies: hash_iteration_scope,
    },
    Rule {
        name: "ambient-env",
        needles: &["env::var", "thread::current"],
        applies: ambient_env_scope,
    },
];

/// One determinism-hazard hit in the sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrcFinding {
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Rule name (`wall-clock`, `hash-iteration`, `ambient-env`).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Scans one source file (already read) under its workspace-relative
/// path. Exposed for tests; [`scan_workspace`] drives it.
pub fn scan_source(path: &str, text: &str) -> Vec<SrcFinding> {
    // The rule table itself spells out every needle; scanning it would
    // only ever flag the lint's own definition.
    if path == "crates/analyze/src/srclint.rs" {
        return Vec::new();
    }
    let rules: Vec<&Rule> = RULES.iter().filter(|r| (r.applies)(path)).collect();
    if rules.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line == "#[cfg(test)]" {
            // Repo convention: the test module is the last item.
            break;
        }
        if line.starts_with("//") {
            continue;
        }
        for rule in &rules {
            if rule.needles.iter().any(|n| line.contains(n)) {
                findings.push(SrcFinding {
                    file: path.to_string(),
                    line: ln + 1,
                    rule: rule.name,
                    excerpt: line.to_string(),
                });
            }
        }
    }
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `crates/*/src/**/*.rs` under the workspace root.
/// Files are visited in sorted path order, so the finding list is
/// deterministic.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<SrcFinding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&file)?;
        findings.extend(scan_source(&rel, &text));
    }
    Ok(findings)
}

/// One audited exception: this file may trigger this rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name the exception covers.
    pub rule: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.file, self.rule)
    }
}

/// Parses an allowlist file: one `<file> <rule> # justification` per
/// line, `#` comments, blanks ignored.
///
/// # Errors
///
/// Errors on a malformed line or an unknown rule name.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let (Some(file), Some(rule), None) = (words.next(), words.next(), words.next()) else {
            return Err(format!(
                "srclint allowlist line {}: expected `<file> <rule>`, got {raw:?}",
                ln + 1
            ));
        };
        if !RULES.iter().any(|r| r.name == rule) {
            return Err(format!(
                "srclint allowlist line {}: unknown rule {rule:?}",
                ln + 1
            ));
        }
        entries.push(AllowEntry {
            file: file.to_string(),
            rule: rule.to_string(),
        });
    }
    Ok(entries)
}

/// The result of matching findings against an allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowVerdict {
    /// Findings with no covering allowlist entry — lint failures.
    pub violations: Vec<SrcFinding>,
    /// Allowlist entries with no matching finding — stale, also
    /// failures (the list may only shrink to fit).
    pub stale: Vec<AllowEntry>,
}

impl AllowVerdict {
    /// Whether the workspace is clean under the allowlist.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Matches findings against audited exceptions. An entry covers every
/// finding with the same (file, rule) — exceptions are per file, not
/// per line, so routine edits don't churn the list.
pub fn apply_allowlist(findings: &[SrcFinding], allow: &[AllowEntry]) -> AllowVerdict {
    let covered = |f: &SrcFinding| allow.iter().any(|a| a.file == f.file && a.rule == f.rule);
    let used = |a: &AllowEntry| {
        findings
            .iter()
            .any(|f| f.file == a.file && f.rule == a.rule)
    };
    AllowVerdict {
        violations: findings.iter().filter(|f| !covered(f)).cloned().collect(),
        stale: allow.iter().filter(|a| !used(a)).cloned().collect(),
    }
}

/// Renders the allowlist that would make `findings` pass: one unique
/// `<file> <rule>` per line in sorted order, preserving the
/// justification comment of any matching entry in `existing`. CI diffs
/// this against the committed file, so an audited list stays byte-
/// stable until the underlying findings actually change.
pub fn emit_allow(findings: &[SrcFinding], existing: &str) -> String {
    let mut keys: Vec<(String, &'static str)> =
        findings.iter().map(|f| (f.file.clone(), f.rule)).collect();
    keys.sort();
    keys.dedup();
    let mut out = String::from(
        "# srclint audited exceptions: <file> <rule> # justification\n\
         # regenerate with: phastlane analyze --src --emit-allow <path>\n",
    );
    for (file, rule) in keys {
        let prefix = format!("{file} {rule}");
        let line = existing
            .lines()
            .map(str::trim)
            .find(|l| l.split('#').next().unwrap_or("").trim() == prefix)
            .map(str::to_string)
            .unwrap_or_else(|| format!("{prefix} # unreviewed"));
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_flagged_outside_the_observability_layer() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let hits = scan_source("crates/lab/src/runner.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "wall-clock");
        assert_eq!(hits[0].line, 1);
        // Same line is fine in the exempted homes of wall time.
        for ok in [
            "crates/netsim/src/obs/phase.rs",
            "crates/lab/src/watchdog.rs",
            "crates/lab/src/supervise.rs",
            "crates/bench/src/timing.rs",
        ] {
            assert_eq!(scan_source(ok, src), Vec::new(), "{ok}");
        }
    }

    #[test]
    fn hash_iteration_scoped_to_canonical_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            scan_source("crates/lab/src/report.rs", src)[0].rule,
            "hash-iteration"
        );
        assert_eq!(
            scan_source("crates/netsim/src/obs/flight.rs", src)[0].rule,
            "hash-iteration"
        );
        // Outside the canonical-report paths, unordered containers are
        // someone else's problem.
        assert_eq!(scan_source("crates/cli/src/args.rs", src), Vec::new());
        assert_eq!(scan_source("crates/netsim/src/ideal.rs", src), Vec::new());
    }

    #[test]
    fn ambient_env_scoped_to_the_simulation_core() {
        let src = "let v = std::env::var(\"X\");\n";
        assert_eq!(
            scan_source("crates/core/src/config.rs", src)[0].rule,
            "ambient-env"
        );
        assert_eq!(scan_source("crates/cli/src/lab.rs", src), Vec::new());
    }

    #[test]
    fn test_modules_and_comments_are_skipped() {
        let src = "\
fn f() {}
// Instant::now in a comment is fine
#[cfg(test)]
mod tests {
    fn t() { let t = Instant::now(); }
}
";
        assert_eq!(scan_source("crates/lab/src/runner.rs", src), Vec::new());
    }

    #[test]
    fn allowlist_round_trip() {
        let findings = vec![
            SrcFinding {
                file: "crates/lab/src/runner.rs".into(),
                line: 10,
                rule: "wall-clock",
                excerpt: "let t = Instant::now();".into(),
            },
            SrcFinding {
                file: "crates/lab/src/runner.rs".into(),
                line: 20,
                rule: "wall-clock",
                excerpt: "let u = Instant::now();".into(),
            },
        ];
        // Uncovered findings are violations.
        let verdict = apply_allowlist(&findings, &[]);
        assert_eq!(verdict.violations.len(), 2);
        assert!(!verdict.clean());
        // One per-file entry covers both lines.
        let allow = parse_allowlist("crates/lab/src/runner.rs wall-clock # watchdog wall budget\n")
            .unwrap();
        assert!(apply_allowlist(&findings, &allow).clean());
        // A stale entry fails the other way.
        let verdict = apply_allowlist(&[], &allow);
        assert_eq!(verdict.stale, allow);
        assert!(!verdict.clean());
    }

    #[test]
    fn allowlist_rejects_garbage() {
        assert!(parse_allowlist("just-a-file\n").is_err());
        assert!(parse_allowlist("a.rs not-a-rule\n").is_err());
        assert!(parse_allowlist("a.rs wall-clock extra\n").is_err());
        assert!(parse_allowlist("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn emit_allow_preserves_existing_justifications() {
        let findings = vec![SrcFinding {
            file: "crates/lab/src/runner.rs".into(),
            line: 10,
            rule: "wall-clock",
            excerpt: "x".into(),
        }];
        let existing = "crates/lab/src/runner.rs wall-clock # watchdog wall budget\n";
        let out = emit_allow(&findings, existing);
        assert!(out.contains("# watchdog wall budget"), "{out}");
        let fresh = emit_allow(&findings, "");
        assert!(fresh.contains("# unreviewed"), "{fresh}");
        // Emitted text parses back to a covering allowlist.
        let entries = parse_allowlist(&out).unwrap();
        assert!(apply_allowlist(&findings, &entries).clean());
    }

    #[test]
    fn the_lint_does_not_flag_its_own_rule_table() {
        let src = "needles: &[\"Instant::now\", \"SystemTime::now\"],\n";
        assert_eq!(
            scan_source("crates/analyze/src/srclint.rs", src),
            Vec::new()
        );
    }
}
