//! Harness verification against the ideal network, where every expected
//! number can be computed by hand.

use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::harness::{
    run_synthetic, run_trace, Dep, MsgId, SyntheticOptions, Trace, TraceMessage, TraceOptions,
};
use phastlane_netsim::ideal::IdealNetwork;
use phastlane_netsim::packet::{DestSet, NewPacket, PacketKind};

fn ideal() -> IdealNetwork {
    IdealNetwork::new(Mesh::PAPER, 2, 1)
}

#[test]
fn synthetic_run_measures_exact_latency() {
    // One packet per cycle from node 0 to node 1: latency is exactly
    // base 2 + 1 hop = 3 on the ideal network.
    let mut net = ideal();
    let mut workload = |_cycle: u64| vec![NewPacket::unicast(NodeId(0), NodeId(1))];
    let opts = SyntheticOptions {
        warmup: 10,
        measure: 100,
        drain: 100,
    };
    let result = run_synthetic(&mut net, &mut workload, opts);
    assert_eq!(result.latency.mean(), Some(3.0));
    assert_eq!(result.latency.min(), Some(3));
    assert_eq!(result.latency.max(), 3);
    assert_eq!(result.unfinished, 0);
    // One packet per cycle over 64 nodes.
    assert!((result.offered_rate - 1.0 / 64.0).abs() < 1e-9);
    assert!((result.accepted_rate - result.offered_rate).abs() < 1e-9);
}

#[test]
fn trace_chain_timing_is_exact() {
    // A three-message chain on the ideal network:
    //   m0: n0 -> n1 at earliest 5           (delivers at 5 + 3 = 8)
    //   m1: n1 -> n2, dep m0, think 4        (eligible 12, delivers 15)
    //   m2: n2 -> n0 (2 hops), dep m1, think 0 (eligible 15, delivers 19)
    let msg = |id, src, dst, earliest, deps: Vec<Dep>, think| TraceMessage {
        id: MsgId(id),
        src: NodeId(src),
        dests: DestSet::Unicast(NodeId(dst)),
        kind: PacketKind::Data,
        earliest,
        deps,
        think,
    };
    let trace = Trace {
        messages: vec![
            msg(0, 0, 1, 5, vec![], 0),
            msg(1, 1, 2, 0, vec![Dep::full(MsgId(0))], 4),
            msg(2, 2, 0, 0, vec![Dep::at(MsgId(1), NodeId(2))], 0),
        ],
    };
    let mut net = ideal();
    let r = run_trace(&mut net, &trace, TraceOptions::default());
    assert!(!r.timed_out);
    assert_eq!(r.completed, 3);
    assert_eq!(r.completion_cycle, 19);
}

#[test]
fn per_destination_dep_fires_before_full_delivery() {
    // m0 broadcasts from a corner; a dependent keyed on the *adjacent*
    // node becomes eligible long before the farthest copy lands.
    let trace = Trace {
        messages: vec![
            TraceMessage {
                id: MsgId(0),
                src: NodeId(0),
                dests: DestSet::Broadcast,
                kind: PacketKind::ReadRequest,
                earliest: 0,
                deps: vec![],
                think: 0,
            },
            TraceMessage {
                id: MsgId(1),
                src: NodeId(1),
                dests: DestSet::Unicast(NodeId(0)),
                kind: PacketKind::DataResponse,
                earliest: 0,
                deps: vec![Dep::at(MsgId(0), NodeId(1))],
                think: 0,
            },
        ],
    };
    let mut net = ideal();
    let r = run_trace(&mut net, &trace, TraceOptions::default());
    // m0 reaches n1 at cycle 3 (injected at 1 after the stall-queue
    // cycle, plus base 2 + 1 hop... measured: completion is bounded by
    // the farthest broadcast copy, 2 + 14 hops).
    assert!(!r.timed_out);
    assert_eq!(r.completed, 2);
    // The response (1 hop from n1 to n0) lands well before the broadcast
    // finishes at ~n63: completion equals the broadcast tail, not the
    // response.
    let broadcast_tail = 2 + 14;
    assert!(r.completion_cycle >= broadcast_tail);
    assert!(r.completion_cycle <= broadcast_tail + 3);
}

#[test]
fn self_send_message_completes_without_network() {
    let trace = Trace {
        messages: vec![
            TraceMessage {
                id: MsgId(0),
                src: NodeId(7),
                dests: DestSet::Unicast(NodeId(7)),
                kind: PacketKind::Writeback,
                earliest: 3,
                deps: vec![],
                think: 0,
            },
            TraceMessage {
                id: MsgId(1),
                src: NodeId(7),
                dests: DestSet::Unicast(NodeId(15)), // (7,1): one hop south of n7
                kind: PacketKind::Data,
                earliest: 0,
                deps: vec![Dep::full(MsgId(0))],
                think: 2,
            },
        ],
    };
    let mut net = ideal();
    let r = run_trace(&mut net, &trace, TraceOptions::default());
    assert!(!r.timed_out);
    assert_eq!(r.completed, 2);
    // m0 resolves at its earliest (3); m1 eligible at 5, injected, lands
    // 3 cycles later.
    assert_eq!(r.completion_cycle, 3 + 2 + 3);
}

#[test]
fn timeout_reported_when_trace_cannot_finish() {
    let trace = Trace {
        messages: vec![TraceMessage {
            id: MsgId(0),
            src: NodeId(0),
            dests: DestSet::Unicast(NodeId(1)),
            kind: PacketKind::Data,
            earliest: 1_000_000,
            deps: vec![],
            think: 0,
        }],
    };
    let mut net = ideal();
    let r = run_trace(&mut net, &trace, TraceOptions { max_cycles: 100 });
    assert!(r.timed_out);
    assert_eq!(r.completed, 0);
}

#[test]
fn trace_append_remaps_ids_and_offsets_time() {
    let mk = |id, src, dst, earliest, deps: Vec<Dep>| TraceMessage {
        id: MsgId(id),
        src: NodeId(src),
        dests: DestSet::Unicast(NodeId(dst)),
        kind: PacketKind::Data,
        earliest,
        deps,
        think: 0,
    };
    let mut a = Trace {
        messages: vec![
            mk(0, 0, 1, 0, vec![]),
            mk(1, 1, 2, 0, vec![Dep::full(MsgId(0))]),
        ],
    };
    let b = Trace {
        messages: vec![
            mk(0, 3, 4, 5, vec![]),
            mk(1, 4, 5, 0, vec![Dep::at(MsgId(0), NodeId(4))]),
        ],
    };
    a.append(&b, 100);
    assert_eq!(a.len(), 4);
    assert!(a.validate().is_ok(), "append preserves validity");
    // The appended messages got fresh ids and shifted times.
    assert_eq!(a.messages[2].id, MsgId(2));
    assert_eq!(a.messages[2].earliest, 105);
    assert_eq!(a.messages[3].deps[0].msg, MsgId(2));
    // And the composed trace actually replays.
    let mut net = ideal();
    let r = run_trace(&mut net, &a, TraceOptions::default());
    assert!(!r.timed_out);
    assert_eq!(r.completed, 4);
    assert_eq!(a.of_kind(PacketKind::Data).count(), 4);
}
