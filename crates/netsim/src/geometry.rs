//! 2D-mesh geometry: node identifiers, coordinates, directions, and ports.

use std::fmt;

/// A node (router + attached core/cache/MC tile) in the mesh, identified by
/// its row-major index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// An (x, y) coordinate in the mesh. `x` grows eastward, `y` grows
/// southward; (0, 0) is the north-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One of the four mesh link directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Toward smaller `y`.
    North,
    /// Toward larger `y`.
    South,
    /// Toward larger `x`.
    East,
    /// Toward smaller `x`.
    West,
}

impl Direction {
    /// All four directions.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// Whether this direction moves along the X dimension.
    pub fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A router port: one of the four link directions or the local
/// (node-attachment) port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// A link port.
    Dir(Direction),
    /// The local injection/ejection port.
    Local,
}

impl Port {
    /// All five ports in a fixed arbitration order (N, S, E, W, Local).
    pub const ALL: [Port; 5] = [
        Port::Dir(Direction::North),
        Port::Dir(Direction::South),
        Port::Dir(Direction::East),
        Port::Dir(Direction::West),
        Port::Local,
    ];

    /// Dense index for table lookups (0..=4, Local last).
    pub fn index(self) -> usize {
        match self {
            Port::Dir(Direction::North) => 0,
            Port::Dir(Direction::South) => 1,
            Port::Dir(Direction::East) => 2,
            Port::Dir(Direction::West) => 3,
            Port::Local => 4,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Dir(d) => write!(f, "{d}"),
            Port::Local => f.write_str("L"),
        }
    }
}

/// A rectangular 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// The paper's 8x8, 64-node configuration.
    pub const PAPER: Mesh = Mesh {
        width: 8,
        height: 8,
    };

    /// Creates a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Mesh width (columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total node count.
    pub fn nodes(self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Whether `node` is a valid id for this mesh.
    pub fn contains(self, node: NodeId) -> bool {
        node.index() < self.nodes()
    }

    /// Coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(
            self.contains(node),
            "node {node} outside {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn node_at(self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coord {coord} outside {}x{} mesh",
            self.width,
            self.height
        );
        NodeId(coord.y * self.width + coord.x)
    }

    /// The neighbour of `node` in `dir`, if it exists.
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let next = match dir {
            Direction::North => (c.y > 0).then(|| Coord { x: c.x, y: c.y - 1 }),
            Direction::South => (c.y + 1 < self.height).then(|| Coord { x: c.x, y: c.y + 1 }),
            Direction::East => (c.x + 1 < self.width).then(|| Coord { x: c.x + 1, y: c.y }),
            Direction::West => (c.x > 0).then(|| Coord { x: c.x - 1, y: c.y }),
        }?;
        Some(self.node_at(next))
    }

    /// Manhattan (hop) distance between two nodes.
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        let dx = i32::from(ca.x) - i32::from(cb.x);
        let dy = i32::from(ca.y) - i32::from(cb.y);
        dx.unsigned_abs() + dy.unsigned_abs()
    }

    /// Iterator over every node id.
    pub fn iter_nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }
}

impl Default for Mesh {
    fn default() -> Self {
        Mesh::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_is_8x8() {
        let m = Mesh::PAPER;
        assert_eq!(m.nodes(), 64);
        assert_eq!((m.width(), m.height()), (8, 8));
    }

    #[test]
    fn coord_roundtrip() {
        let m = Mesh::PAPER;
        for node in m.iter_nodes() {
            assert_eq!(m.node_at(m.coord(node)), node);
        }
    }

    #[test]
    fn corner_coordinates() {
        let m = Mesh::PAPER;
        assert_eq!(m.coord(NodeId(0)), Coord { x: 0, y: 0 });
        assert_eq!(m.coord(NodeId(7)), Coord { x: 7, y: 0 });
        assert_eq!(m.coord(NodeId(56)), Coord { x: 0, y: 7 });
        assert_eq!(m.coord(NodeId(63)), Coord { x: 7, y: 7 });
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh::PAPER;
        assert_eq!(m.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(0), Direction::South), Some(NodeId(8)));
        assert_eq!(m.neighbor(NodeId(63), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(63), Direction::East), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Mesh::new(5, 3);
        for n in m.iter_nodes() {
            for d in Direction::ALL {
                if let Some(nb) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn distance_examples() {
        let m = Mesh::PAPER;
        assert_eq!(m.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.distance(NodeId(0), NodeId(1)), 1);
        assert_eq!(m.distance(NodeId(3), NodeId(24)), 6); // (3,0) -> (0,3)
    }

    #[test]
    fn port_indices_dense_and_unique() {
        let mut seen = [false; 5];
        for p in Port::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_out_of_range_panics() {
        let _ = Mesh::new(2, 2).coord(NodeId(4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, 4);
    }
}
