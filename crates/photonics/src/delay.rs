//! Critical-path delay analysis of the Phastlane router (§3.1).
//!
//! Reproduces Figures 5 and 6: the component delays of the four internal
//! router operations (Packet Pass, Packet Block, Packet Accept, Packet
//! Interim Accept), and the maximum number of hops a packet can travel in
//! one 4 GHz clock cycle under each scaling scenario.
//!
//! The paper's findings that this module must (and does) reproduce:
//!
//! * the number of wavelengths has little impact on delay;
//! * most of the delay involves driving the resonators (for the average
//!   and pessimistic scenarios, where drive delay dominates);
//! * Packet Pass > Packet Block > Packet Accept;
//! * 8 / 5 / 4 hops per cycle for optimistic / average / pessimistic
//!   scaling, independent of the number of wavelengths.

use crate::devices::{
    Modulator, OpticalReceiver, RingResonator, Waveguide, WAVEGUIDE_DELAY_PS_PER_MM,
};
use crate::scaling::Scaling;
use crate::units::{Millimeters, Picoseconds, TechNode};
use crate::wdm::WdmConfig;
use std::fmt;

/// Network clock frequency assumed throughout the paper: 4 GHz.
pub const CLOCK_GHZ: f64 = 4.0;

/// One clock period at 4 GHz.
pub const CLOCK_PERIOD: Picoseconds = Picoseconds(250.0);

/// Centre-to-centre distance between adjacent routers.
///
/// 64 nodes of ~3.5 mm^2 each (Kumar-methodology core + caches + MC) give a
/// node pitch of ~1.87 mm.
pub const HOP_LENGTH: Millimeters = Millimeters(1.87);

/// Register setup/hold plus clock skew budgeted per cycle (*calibrated*).
pub const REGISTER_AND_SKEW: Picoseconds = Picoseconds(12.0);

/// Extra write-enable generation time for an interim accept over a plain
/// accept (*calibrated*; the paper notes these signals are off the critical
/// path).
pub const INTERIM_WRITE_ENABLE: Picoseconds = Picoseconds(1.0);

/// Physical pitch occupied per waveguide in the router's internal turn
/// region (*calibrated*).
pub const INTERNAL_PITCH_MM_PER_WAVEGUIDE: f64 = 0.0168;

/// Physical length occupied per wavelength's resonator/receiver pair along
/// an input or output port (*calibrated*).
pub const PORT_PITCH_MM_PER_WAVELENGTH: f64 = 0.00131;

/// The four internal router operations whose critical paths Figure 5
/// breaks down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterOp {
    /// A packet passes to a router output port, forcing contending packets
    /// to be received at their input ports.
    PacketPass,
    /// A packet gets blocked and buffered at the switch.
    PacketBlock,
    /// A packet is accepted at its destination.
    PacketAccept,
    /// A packet is accepted at an interim node.
    PacketInterimAccept,
}

impl RouterOp {
    /// All operations, in the paper's order.
    pub const ALL: [RouterOp; 4] = [
        RouterOp::PacketPass,
        RouterOp::PacketBlock,
        RouterOp::PacketAccept,
        RouterOp::PacketInterimAccept,
    ];
}

impl RouterOp {
    /// Abbreviation used in the paper's Figure 5 (PP, PB, PA, PIA).
    pub fn abbrev(self) -> &'static str {
        match self {
            RouterOp::PacketPass => "PP",
            RouterOp::PacketBlock => "PB",
            RouterOp::PacketAccept => "PA",
            RouterOp::PacketInterimAccept => "PIA",
        }
    }
}

impl fmt::Display for RouterOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Component-level breakdown of one critical path (one bar of Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathBreakdown {
    /// Receiving the packet's Router Control bits.
    pub receive_control: Picoseconds,
    /// Driving control/turn resonators (possibly two back-to-back stages).
    pub drive_resonators: Picoseconds,
    /// Traversing waveguide inside the router (ports + turn region).
    pub traverse: Picoseconds,
    /// Receiving the packet itself (for block/accept paths).
    pub receive_packet: Picoseconds,
}

impl PathBreakdown {
    /// Total path delay.
    pub fn total(&self) -> Picoseconds {
        self.receive_control + self.drive_resonators + self.traverse + self.receive_packet
    }
}

/// A point in the router design space: WDM degree, scaling scenario, and
/// technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterDesign {
    /// WDM packaging of the data path.
    pub wdm: WdmConfig,
    /// Technology scaling scenario.
    pub scaling: Scaling,
    /// Technology node (16 nm in the paper).
    pub node: TechNode,
}

impl RouterDesign {
    /// The paper's design point for a given scaling scenario: 64-way WDM
    /// at 16 nm.
    pub fn paper(scaling: Scaling) -> Self {
        RouterDesign {
            wdm: WdmConfig::PAPER,
            scaling,
            node: TechNode::NM16,
        }
    }

    fn receiver(&self) -> OpticalReceiver {
        OpticalReceiver::new(self.scaling, self.node)
    }

    fn modulator(&self) -> Modulator {
        Modulator::new(self.scaling, self.node)
    }

    fn resonator(&self) -> RingResonator {
        RingResonator::new(self.scaling)
    }

    /// Waveguide length of the router's internal turn region.
    pub fn internal_length(&self) -> Millimeters {
        Millimeters(f64::from(self.wdm.total_waveguides()) * INTERNAL_PITCH_MM_PER_WAVEGUIDE)
    }

    /// Waveguide length of one input or output port (the row of
    /// resonator/receiver pairs, one per wavelength).
    pub fn port_length(&self) -> Millimeters {
        Millimeters(f64::from(self.wdm.payload_wdm) * PORT_PITCH_MM_PER_WAVELENGTH)
    }

    /// Time to traverse the router end to end: input port, turn region,
    /// output port.
    pub fn traverse_delay(&self) -> Picoseconds {
        let mm = self.internal_length().value() + 2.0 * self.port_length().value();
        Picoseconds(mm * WAVEGUIDE_DELAY_PS_PER_MM)
    }

    /// Critical-path breakdown for one router operation (Figure 5).
    pub fn critical_path(&self, op: RouterOp) -> PathBreakdown {
        let rx = self.receiver().receive_delay();
        let drive = self.resonator().drive_delay();
        match op {
            // (a) receive control; (b) drive C0 Group-1 resonators of the
            // blocked packets; (c) that signal drives the blocked packets'
            // receive resonators; (d) traverse the remainder of the switch.
            RouterOp::PacketPass => PathBreakdown {
                receive_control: rx,
                drive_resonators: drive * 2.0,
                traverse: self.traverse_delay(),
                receive_packet: Picoseconds(0.0),
            },
            // Same as PacketPass but the traverse is replaced by receiving
            // the blocked packet at its input port.
            RouterOp::PacketBlock => PathBreakdown {
                receive_control: rx,
                drive_resonators: drive * 2.0,
                traverse: Picoseconds(0.0),
                receive_packet: rx,
            },
            // (a) receive the C0 control; (b) drive the receive resonators;
            // (c) receive the packet.
            RouterOp::PacketAccept => PathBreakdown {
                receive_control: rx,
                drive_resonators: drive,
                traverse: Picoseconds(0.0),
                receive_packet: rx,
            },
            RouterOp::PacketInterimAccept => PathBreakdown {
                receive_control: rx,
                drive_resonators: drive,
                traverse: INTERIM_WRITE_ENABLE,
                receive_packet: rx,
            },
        }
    }

    /// Propagation delay of one inter-router link.
    pub fn link_delay(&self) -> Picoseconds {
        Waveguide::new(HOP_LENGTH).propagation_delay()
    }

    /// End-to-end network delay for a transmission covering `hops` links
    /// (`hops - 1` intermediate routers), assuming worst-case contention
    /// at every router.
    ///
    /// `hops` links, `hops - 1` Packet Pass traversals, plus modulator
    /// drive at the source, Packet Accept at the destination, and register
    /// overhead and clock skew.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is zero.
    pub fn transmission_delay(&self, hops: u32) -> Picoseconds {
        assert!(hops > 0, "a transmission covers at least one hop");
        let pp = self.critical_path(RouterOp::PacketPass).total();
        let pa = self.critical_path(RouterOp::PacketAccept).total();
        self.modulator().transmit_delay()
            + pp * f64::from(hops - 1)
            + self.link_delay() * f64::from(hops)
            + pa
            + REGISTER_AND_SKEW
    }

    /// The maximum number of hops a packet can travel in a single clock
    /// cycle (Figure 6). Solves for the largest `H` with
    /// `transmission_delay(H) <= CLOCK_PERIOD`.
    pub fn max_hops_per_cycle(&self) -> u32 {
        let mut hops = 0;
        while self.transmission_delay(hops + 1) <= CLOCK_PERIOD {
            hops += 1;
            if hops > 64 {
                break; // physically implausible; guard against miscalibration
            }
        }
        hops
    }
}

/// Figure 6 as data: max hops per cycle for every (wavelength, scaling)
/// combination in the paper's sweep.
pub fn figure6_series(node: TechNode) -> Vec<(WdmConfig, Scaling, u32)> {
    let mut rows = Vec::new();
    for wdm in WdmConfig::SWEEP {
        for scaling in Scaling::ALL {
            let d = RouterDesign { wdm, scaling, node };
            rows.push((wdm, scaling, d.max_hops_per_cycle()));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_design(scaling: Scaling) -> RouterDesign {
        RouterDesign::paper(scaling)
    }

    #[test]
    fn max_hops_matches_figure6() {
        // The paper's headline: 8 / 5 / 4 hops per cycle.
        assert_eq!(paper_design(Scaling::Optimistic).max_hops_per_cycle(), 8);
        assert_eq!(paper_design(Scaling::Average).max_hops_per_cycle(), 5);
        assert_eq!(paper_design(Scaling::Pessimistic).max_hops_per_cycle(), 4);
    }

    #[test]
    fn max_hops_independent_of_wavelengths() {
        // Figure 6: the hop counts hold for 32-, 64-, and 128-way WDM.
        for wdm in WdmConfig::SWEEP {
            for (scaling, expect) in [
                (Scaling::Optimistic, 8),
                (Scaling::Average, 5),
                (Scaling::Pessimistic, 4),
            ] {
                let d = RouterDesign {
                    wdm,
                    scaling,
                    node: TechNode::NM16,
                };
                assert_eq!(
                    d.max_hops_per_cycle(),
                    expect,
                    "wdm={} scaling={scaling}",
                    wdm.payload_wdm
                );
            }
        }
    }

    #[test]
    fn pass_exceeds_block_exceeds_accept() {
        // Paper: "The time to pass through the router exceeds the packet
        // block time. Accepting a packet is the fastest."
        for scaling in Scaling::ALL {
            let d = paper_design(scaling);
            let pp = d.critical_path(RouterOp::PacketPass).total();
            let pb = d.critical_path(RouterOp::PacketBlock).total();
            let pa = d.critical_path(RouterOp::PacketAccept).total();
            assert!(pp > pb, "{scaling}: PP {pp} <= PB {pb}");
            assert!(pb > pa, "{scaling}: PB {pb} <= PA {pa}");
        }
    }

    #[test]
    fn wavelengths_have_little_impact_on_delay() {
        // Figure 5's observation: varying WDM degree changes the critical
        // paths only marginally (here: < 15 % of the packet-pass delay).
        for scaling in Scaling::ALL {
            let totals: Vec<f64> = WdmConfig::SWEEP
                .iter()
                .map(|&wdm| {
                    RouterDesign {
                        wdm,
                        scaling,
                        node: TechNode::NM16,
                    }
                    .critical_path(RouterOp::PacketPass)
                    .total()
                    .value()
                })
                .collect();
            let max = totals.iter().cloned().fold(f64::MIN, f64::max);
            let min = totals.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                (max - min) / max < 0.15,
                "{scaling}: PP varies too much with WDM: {totals:?}"
            );
        }
    }

    #[test]
    fn resonator_drive_dominates_nonoptimistic_paths() {
        // Figure 5: "most of the delay involves driving the resonators".
        for scaling in [Scaling::Average, Scaling::Pessimistic] {
            let bd = paper_design(scaling).critical_path(RouterOp::PacketPass);
            assert!(
                bd.drive_resonators.value() > bd.total().value() * 0.5,
                "{scaling}: drive {} not dominant of {}",
                bd.drive_resonators,
                bd.total()
            );
        }
    }

    #[test]
    fn interim_accept_slightly_slower_than_accept() {
        let d = paper_design(Scaling::Average);
        let pa = d.critical_path(RouterOp::PacketAccept).total();
        let pia = d.critical_path(RouterOp::PacketInterimAccept).total();
        assert!(pia > pa);
        assert!((pia - pa).value() <= 2.0);
    }

    #[test]
    fn transmission_delay_monotonic_in_hops() {
        let d = paper_design(Scaling::Average);
        let mut last = Picoseconds(0.0);
        for hops in 1..=10 {
            let t = d.transmission_delay(hops);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn max_hops_transmission_fits_in_cycle() {
        for scaling in Scaling::ALL {
            let d = paper_design(scaling);
            let h = d.max_hops_per_cycle();
            assert!(d.transmission_delay(h) <= CLOCK_PERIOD);
            assert!(d.transmission_delay(h + 1) > CLOCK_PERIOD);
        }
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hop_transmission_rejected() {
        let _ = paper_design(Scaling::Average).transmission_delay(0);
    }

    #[test]
    fn figure6_has_nine_rows() {
        let rows = figure6_series(TechNode::NM16);
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn op_abbreviations() {
        assert_eq!(RouterOp::PacketPass.abbrev(), "PP");
        assert_eq!(format!("{}", RouterOp::PacketInterimAccept), "PIA");
    }
}
