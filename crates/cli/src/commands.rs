//! Implementations of the `phastlane` subcommands.

use crate::args::{ArgError, Parsed};
use phastlane_netsim::fault::FaultPlan;
use phastlane_netsim::harness::{
    run_synthetic_observed, run_trace, run_trace_observed, SyntheticOptions, Trace, TraceOptions,
};
use phastlane_netsim::network::Network;
use phastlane_netsim::obs::json::JsonValue;
use phastlane_netsim::obs::{
    FlightRecorder, MetricsCollector, Phase, PhaseBreakdown, PhaseProfiler, RunReport, Severity,
    TraceBuffer,
};
use phastlane_netsim::Mesh;
use phastlane_photonics::delay::RouterDesign;
use phastlane_photonics::power::PowerPoint;
use phastlane_photonics::scaling::Scaling;
use phastlane_photonics::wdm::WdmConfig;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;
use phastlane_traffic::synthetic::BernoulliTraffic;
use phastlane_traffic::Pattern;

/// Builds a network from its `--net` name.
///
/// # Errors
///
/// Errors on an unknown name.
pub fn build_network(name: &str, mesh: Mesh) -> Result<Box<dyn Network>, ArgError> {
    build_network_with(name, mesh, None)
}

/// [`build_network`] with an optional retry-limit override (the fault
/// subsystem's livelock guard; only meaningful for the optical configs).
///
/// Delegates to the lab runner's builder — one network registry for the
/// whole workspace — and forgets the `Send` bound the lab's worker pool
/// needs but the CLI does not.
///
/// # Errors
///
/// Errors on an unknown name.
pub fn build_network_with(
    name: &str,
    mesh: Mesh,
    retry_limit: Option<u32>,
) -> Result<Box<dyn Network>, ArgError> {
    phastlane_lab::runner::build_network(name, mesh, retry_limit)
        .map(|n| n as Box<dyn Network>)
        .map_err(ArgError)
}

/// Parses `--mesh WxH` (default 8x8).
///
/// # Errors
///
/// Errors on malformed dimensions.
pub fn parse_mesh(p: &Parsed) -> Result<Mesh, ArgError> {
    match p.get("mesh") {
        None => Ok(Mesh::PAPER),
        Some(s) => {
            let (w, h) = s
                .split_once('x')
                .ok_or_else(|| ArgError(format!("--mesh expects WxH, got {s:?}")))?;
            let w: u16 = w
                .parse()
                .map_err(|_| ArgError(format!("bad mesh width {w:?}")))?;
            let h: u16 = h
                .parse()
                .map_err(|_| ArgError(format!("bad mesh height {h:?}")))?;
            if w == 0 || h == 0 {
                return Err(ArgError("mesh dimensions must be positive".into()));
            }
            Ok(Mesh::new(w, h))
        }
    }
}

/// Observability options shared by `simulate` and `sweep`: where to
/// export the event trace, metrics series, and run report, plus the
/// sampling interval and trace bounds.
struct ObsArgs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    report_out: Option<String>,
    sample_interval: u64,
    ring: Option<usize>,
    severity: Severity,
    flight_out: Option<String>,
    flight_sample: u64,
    profile: bool,
    profile_sample: u32,
}

fn parse_obs(p: &Parsed) -> Result<ObsArgs, ArgError> {
    let severity = match p.get("severity") {
        None => Severity::Debug,
        Some(s) => Severity::from_name(s)
            .ok_or_else(|| ArgError(format!("unknown severity {s:?}; try debug, info, warn")))?,
    };
    let ring = match p.get("ring") {
        None => None,
        Some(_) => {
            let n: usize = p.get_parsed("ring", 0)?;
            if n == 0 {
                return Err(ArgError("--ring requires a positive capacity".into()));
            }
            Some(n)
        }
    };
    let sample_interval: u64 = p.get_parsed("sample-interval", 100)?;
    if sample_interval == 0 {
        return Err(ArgError("--sample-interval must be positive".into()));
    }
    let flight_sample: u64 = p.get_parsed("flight-sample", 64)?;
    if flight_sample == 0 {
        return Err(ArgError("--flight-sample must be positive".into()));
    }
    let profile_sample: u32 =
        p.get_parsed("profile-sample", PhaseProfiler::DEFAULT_SAMPLE_EVERY)?;
    if profile_sample == 0 {
        return Err(ArgError("--profile-sample must be positive".into()));
    }
    Ok(ObsArgs {
        trace_out: p.get("trace-out").map(str::to_string),
        metrics_out: p.get("metrics-out").map(str::to_string),
        report_out: p.get("report-out").map(str::to_string),
        sample_interval,
        ring,
        severity,
        flight_out: p.get("flight-recorder").map(str::to_string),
        flight_sample,
        profile: p.flag("profile"),
        profile_sample,
    })
}

impl ObsArgs {
    fn make_buffer(&self) -> TraceBuffer {
        let b = match self.ring {
            Some(n) => TraceBuffer::ring(n),
            None => TraceBuffer::new(),
        };
        b.with_min_severity(self.severity)
    }

    fn make_metrics(&self, nodes: usize) -> Option<MetricsCollector> {
        self.metrics_out
            .as_ref()
            .map(|_| MetricsCollector::new(self.sample_interval, nodes))
    }

    /// Attaches the profiler and (seeded) flight recorder to a freshly
    /// built network, per the parsed flags.
    fn instrument(&self, net: &mut dyn Network, seed: u64) {
        if self.profile {
            net.set_phase_profiler(PhaseProfiler::enabled(self.profile_sample));
        }
        if self.flight_out.is_some() {
            net.set_flight_recorder(FlightRecorder::new(seed, self.flight_sample));
        }
    }
}

/// Human-readable per-phase table for `--profile` output.
fn phase_table(b: &PhaseBreakdown) -> String {
    let mut out = format!(
        "phase breakdown ({} cycles, {} wall-sampled):\n",
        b.cycles, b.sampled_cycles
    );
    for ph in Phase::ALL {
        out.push_str(&format!(
            "  {:>9} {:>6.1}%  work {}\n",
            ph.name(),
            b.share(ph) * 100.0,
            b.work[ph.index()]
        ));
    }
    out
}

/// Writes a flight-recorder dump as pretty JSON and returns the summary
/// line for the console.
fn write_flight(path: &str, fr: &FlightRecorder) -> Result<String, ArgError> {
    let json = fr.to_json();
    let mut body = json.to_string_pretty();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    std::fs::write(path, body).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    let stat = |k: &str| json.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    Ok(format!(
        "flight recorder: {} journeys of {} packets seen -> {path}\n",
        fr.pinned(),
        stat("packets_seen"),
    ))
}

/// Fault-injection options shared by `simulate`, `sweep`, and `chaos`:
/// the plan itself plus the seed for fault-path randomness.
struct FaultArgs {
    plan: FaultPlan,
    seed: u64,
    retry_limit: Option<u32>,
}

/// Parses `--fault-plan FILE` / `--fault-rate R` / `--fault-seed S` /
/// `--retry-limit L`. Returns `None` when no fault source was given (the
/// network then runs with the guaranteed-zero-effect empty plan).
fn parse_fault(p: &Parsed, mesh: Mesh) -> Result<Option<FaultArgs>, ArgError> {
    let seed: u64 = p.get_parsed("fault-seed", 1)?;
    let retry_limit = match p.get("retry-limit") {
        None => None,
        Some(_) => Some(p.get_parsed("retry-limit", 0u32)?),
    };
    let plan = match (p.get("fault-plan"), p.get("fault-rate")) {
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--fault-plan and --fault-rate are mutually exclusive".into(),
            ))
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            FaultPlan::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))?
        }
        (None, Some(_)) => {
            let rate: f64 = p.get_parsed("fault-rate", 0.0)?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(ArgError("--fault-rate must be in [0, 1]".into()));
            }
            FaultPlan::random(mesh, seed, rate)
        }
        (None, None) => {
            return Ok(retry_limit.map(|_| FaultArgs {
                plan: FaultPlan::new(),
                seed,
                retry_limit,
            }))
        }
    };
    Ok(Some(FaultArgs {
        plan,
        seed,
        retry_limit,
    }))
}

/// Writes a JSON or CSV export, picked by the `.csv` extension.
fn write_export(
    path: &str,
    json: &JsonValue,
    csv: impl FnOnce() -> String,
) -> Result<(), ArgError> {
    let body = if path.ends_with(".csv") {
        csv()
    } else {
        let mut s = json.to_string_pretty();
        if !s.ends_with('\n') {
            s.push('\n');
        }
        s
    };
    std::fs::write(path, body).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// Derives a per-rate output path when a sweep covers several rates
/// (so exports do not overwrite each other).
fn rate_path(path: &str, rate: f64, multi: bool) -> String {
    if !multi {
        return path.to_string();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-r{rate}.{ext}"),
        None => format!("{path}-r{rate}"),
    }
}

fn load_benchmark_trace(p: &Parsed, mesh: Mesh) -> Result<(String, Trace), ArgError> {
    let name = p.get("benchmark").unwrap_or("FFT");
    let scale: f64 = p.get_parsed("scale", 0.25)?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err(ArgError(format!(
            "--scale must be a positive finite number, got {scale}"
        )));
    }
    let mut profile = splash2::benchmark(name)
        .ok_or_else(|| ArgError(format!("unknown benchmark {name:?} (see Table 3)")))?;
    profile.misses_per_core = ((profile.misses_per_core as f64 * scale).round() as usize).max(2);
    if mesh != Mesh::PAPER {
        profile.active_cores = profile.active_cores.min(mesh.nodes());
    }
    Ok((profile.name.to_string(), generate_trace(mesh, &profile)))
}

/// `phastlane simulate`: replay a benchmark trace on one network.
///
/// # Errors
///
/// Propagates argument errors.
pub fn cmd_simulate(p: &Parsed) -> Result<String, ArgError> {
    let mesh = parse_mesh(p)?;
    let obs = parse_obs(p)?;
    let fault = parse_fault(p, mesh)?;
    let (name, trace) = load_benchmark_trace(p, mesh)?;
    let retry_limit = fault.as_ref().and_then(|f| f.retry_limit);
    let mut net = build_network_with(p.get("net").unwrap_or("optical4"), mesh, retry_limit)?;
    if let Some(f) = &fault {
        net.set_fault_plan(f.plan.clone(), f.seed);
    }
    let max_cycles: u64 = p.get_parsed("max-cycles", 10_000_000)?;
    if obs.trace_out.is_some() {
        net.set_trace(obs.make_buffer());
    }
    // The trace itself is deterministic, so the flight recorder's
    // sampling seed is the only knob --seed turns here.
    let seed: u64 = p.get_parsed("seed", 7)?;
    obs.instrument(net.as_mut(), seed);
    let mut metrics = obs.make_metrics(mesh.nodes());
    let r = run_trace_observed(
        &mut net,
        &trace,
        TraceOptions { max_cycles },
        metrics.as_mut(),
    );
    let stats = net.stats();
    let mut out = String::new();
    out.push_str(&format!(
        "{} on {}: {} messages\n",
        name,
        net.name(),
        trace.len()
    ));
    if r.timed_out {
        out.push_str(&format!("TIMED OUT after {max_cycles} cycles\n"));
    }
    out.push_str(&format!(
        "completion: {} cycles  latency[{}]\n",
        r.completion_cycle, r.latency
    ));
    out.push_str(&format!(
        "drops: {}  retransmits: {}\n",
        stats.dropped, stats.retransmitted
    ));
    if let Some(f) = &fault {
        out.push_str(&format!(
            "faults: {}  rerouted: {}  undeliverable: {} (retry cap hit {} times)\n",
            f.plan.len(),
            stats.rerouted,
            stats.undeliverable,
            stats.retry_exhausted,
        ));
        if stats.ecc_corrected + stats.ecc_uncorrectable > 0 {
            out.push_str(&format!(
                "ecc: {} corrected, {} uncorrectable\n",
                stats.ecc_corrected, stats.ecc_uncorrectable
            ));
        }
    }
    out.push_str(&format!(
        "power: {:.0} mW ({:.0} pJ dynamic, {:.0} pJ laser, {:.0} pJ link, {:.0} pJ leakage)\n",
        r.energy.average_power_mw(r.completion_cycle.max(1), 4.0),
        r.energy.dynamic_pj,
        r.energy.laser_pj,
        r.energy.link_pj,
        r.energy.leakage_pj,
    ));
    out.push_str(&format!(
        "sim speed: {:.0} cycles/s ({:.3} s wall)\n",
        r.perf.cycles_per_sec(),
        r.perf.wall_seconds
    ));
    if let Some(b) = &r.perf.phases {
        out.push_str(&phase_table(b));
    }
    if let (Some(path), Some(fr)) = (&obs.flight_out, net.take_flight_recorder()) {
        out.push_str(&write_flight(path, &fr)?);
    }
    if let Some(path) = &obs.trace_out {
        let tb = net.take_trace().unwrap_or_default();
        write_export(path, &tb.to_json(), || tb.to_csv())?;
        out.push_str(&format!(
            "trace: {} events ({} evicted, {} filtered) -> {path}\n",
            tb.len(),
            tb.evicted(),
            tb.filtered()
        ));
    }
    if let (Some(path), Some(m)) = (&obs.metrics_out, metrics) {
        let series = m.into_series();
        write_export(path, &series.to_json(), || series.to_csv())?;
        out.push_str(&format!(
            "metrics: {} samples -> {path}\n",
            series.samples.len()
        ));
    }
    if let Some(path) = &obs.report_out {
        let report = RunReport {
            network: net.name(),
            width: mesh.width(),
            height: mesh.height(),
            seed: None,
            cycles: r.completion_cycle,
            stats,
            energy: r.energy,
            perf: r.perf,
            extra: {
                let mut extra = vec![
                    ("benchmark".into(), JsonValue::Str(name)),
                    ("messages".into(), JsonValue::Uint(trace.len() as u64)),
                ];
                if let Some(f) = &fault {
                    extra.push(("faults".into(), JsonValue::Uint(f.plan.len() as u64)));
                    extra.push(("fault_seed".into(), JsonValue::Uint(f.seed)));
                }
                extra
            },
        };
        write_export(path, &report.to_json(), || report.to_csv())?;
        out.push_str(&format!("report -> {path}\n"));
    }
    Ok(out)
}

/// `phastlane compare`: the same trace on two networks, with speedup.
///
/// # Errors
///
/// Propagates argument errors.
pub fn cmd_compare(p: &Parsed) -> Result<String, ArgError> {
    let mesh = parse_mesh(p)?;
    let (name, trace) = load_benchmark_trace(p, mesh)?;
    let mut out = format!("{name}: {} messages\n", trace.len());
    let mut base: Option<u64> = None;
    for net_name in ["electrical3", p.get("net").unwrap_or("optical4")] {
        let mut net = build_network(net_name, mesh)?;
        let r = run_trace(&mut net, &trace, TraceOptions::default());
        out.push_str(&format!(
            "{:12} {:>9} cycles  {:>8.0} mW\n",
            net.name(),
            r.completion_cycle,
            r.energy.average_power_mw(r.completion_cycle.max(1), 4.0)
        ));
        match base {
            None => base = Some(r.completion_cycle),
            Some(b) => out.push_str(&format!(
                "network speedup: {:.2}x\n",
                b as f64 / r.completion_cycle.max(1) as f64
            )),
        }
    }
    Ok(out)
}

/// `phastlane sweep`: latency at one injection rate for a pattern.
///
/// # Errors
///
/// Propagates argument errors.
pub fn cmd_sweep(p: &Parsed) -> Result<String, ArgError> {
    let mesh = parse_mesh(p)?;
    let pattern_name = p.get("pattern").unwrap_or("uniform");
    let pattern = Pattern::from_name(pattern_name)
        .ok_or_else(|| ArgError(format!("unknown pattern {pattern_name:?}")))?;
    let rates: Vec<f64> = match p.get("rates") {
        None => vec![p.get_parsed("rate", 0.05)?],
        Some(list) => list
            .split(',')
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| ArgError(format!("bad rate {s:?}")))
            })
            .collect::<Result<_, _>>()?,
    };
    if let Some(bad) = rates
        .iter()
        .find(|r| !r.is_finite() || !(0.0..=1.0).contains(*r))
    {
        return Err(ArgError(format!(
            "injection rates must be finite and in [0, 1], got {bad}"
        )));
    }
    let net_name = p.get("net").unwrap_or("optical4");
    let obs = parse_obs(p)?;
    let fault = parse_fault(p, mesh)?;
    let seed: u64 = p.get_parsed("seed", 7)?;
    let multi = rates.len() > 1;
    let mut out = format!(
        "{} on {net_name} ({}x{})\n",
        pattern.label(),
        mesh.width(),
        mesh.height()
    );
    out.push_str(&format!(
        "{:>8} {:>10} {:>8} {:>10}\n",
        "rate", "latency", "p99", "delivered"
    ));
    for rate in rates {
        let mut net =
            build_network_with(net_name, mesh, fault.as_ref().and_then(|f| f.retry_limit))?;
        if let Some(f) = &fault {
            net.set_fault_plan(f.plan.clone(), f.seed);
        }
        if obs.trace_out.is_some() {
            net.set_trace(obs.make_buffer());
        }
        obs.instrument(net.as_mut(), seed);
        let mut metrics = obs.make_metrics(mesh.nodes());
        let mut w = BernoulliTraffic::new(mesh, pattern, rate, seed);
        let r = run_synthetic_observed(
            &mut net,
            &mut w,
            SyntheticOptions {
                warmup: 500,
                measure: 2_000,
                drain: 6_000,
            },
            metrics.as_mut(),
        );
        out.push_str(&format!(
            "{rate:>8.3} {:>10.2} {:>8} {:>10.3}\n",
            r.latency.mean().unwrap_or(f64::NAN),
            r.latency
                .percentile(99.0)
                .map_or("-".into(), |v| v.to_string()),
            r.delivered_rate
        ));
        if r.undeliverable > 0 {
            out.push_str(&format!(
                "  undeliverable: {} (rerouted {})\n",
                r.undeliverable,
                net.stats().rerouted
            ));
        }
        if let Some(b) = &r.perf.phases {
            out.push_str(&phase_table(b));
        }
        if let (Some(path), Some(fr)) = (&obs.flight_out, net.take_flight_recorder()) {
            let path = rate_path(path, rate, multi);
            out.push_str("  ");
            out.push_str(&write_flight(&path, &fr)?);
        }
        if let Some(path) = &obs.trace_out {
            let path = rate_path(path, rate, multi);
            let tb = net.take_trace().unwrap_or_default();
            write_export(&path, &tb.to_json(), || tb.to_csv())?;
            out.push_str(&format!("  trace: {} events -> {path}\n", tb.len()));
        }
        if let (Some(path), Some(m)) = (&obs.metrics_out, metrics) {
            let path = rate_path(path, rate, multi);
            let series = m.into_series();
            write_export(&path, &series.to_json(), || series.to_csv())?;
            out.push_str(&format!(
                "  metrics: {} samples -> {path}\n",
                series.samples.len()
            ));
        }
        if let Some(path) = &obs.report_out {
            let path = rate_path(path, rate, multi);
            let report = RunReport {
                network: net.name(),
                width: mesh.width(),
                height: mesh.height(),
                seed: Some(seed),
                cycles: r.perf.cycles,
                stats: net.stats(),
                energy: r.energy,
                perf: r.perf,
                extra: vec![
                    (
                        "pattern".into(),
                        JsonValue::Str(pattern.label().to_string()),
                    ),
                    ("offered_rate".into(), JsonValue::Num(rate)),
                    ("delivered_rate".into(), JsonValue::Num(r.delivered_rate)),
                ],
            };
            write_export(&path, &report.to_json(), || report.to_csv())?;
            out.push_str(&format!("  report -> {path}\n"));
        }
    }
    Ok(out)
}

/// `phastlane trace gen|info|replay`: trace-file workflows using the
/// text codec.
///
/// # Errors
///
/// Propagates argument and I/O errors.
pub fn cmd_trace(p: &Parsed) -> Result<String, ArgError> {
    let io_err = |e: std::io::Error| ArgError(format!("i/o error: {e}"));
    match p.positional(1) {
        Some("gen") => {
            let mesh = parse_mesh(p)?;
            let (name, trace) = load_benchmark_trace(p, mesh)?;
            let out_path = p.get("out").unwrap_or("trace.txt").to_string();
            std::fs::write(&out_path, phastlane_traffic::codec::encode(&trace)).map_err(io_err)?;
            Ok(format!(
                "{name}: wrote {} messages to {out_path}\n",
                trace.len()
            ))
        }
        Some("info") => {
            let path = p
                .positional(2)
                .ok_or_else(|| ArgError("trace info <file>".into()))?;
            let text = std::fs::read_to_string(path).map_err(io_err)?;
            let trace =
                phastlane_traffic::codec::decode(&text).map_err(|e| ArgError(e.to_string()))?;
            let mix = phastlane_traffic::coherence::summarize(&trace);
            Ok(format!(
                "{path}: {} messages ({} requests, {} responses, {} writebacks, {} barrier)\n",
                trace.len(),
                mix.requests,
                mix.responses,
                mix.writebacks,
                mix.barrier_msgs
            ))
        }
        Some("replay") => {
            let path = p
                .positional(2)
                .ok_or_else(|| ArgError("trace replay <file> [--net N]".into()))?;
            let text = std::fs::read_to_string(path).map_err(io_err)?;
            let trace =
                phastlane_traffic::codec::decode(&text).map_err(|e| ArgError(e.to_string()))?;
            let mesh = parse_mesh(p)?;
            let mut net = build_network(p.get("net").unwrap_or("optical4"), mesh)?;
            let r = run_trace(&mut net, &trace, TraceOptions::default());
            Ok(format!(
                "{path} on {}: {} cycles, latency[{}]\n",
                net.name(),
                r.completion_cycle,
                r.latency
            ))
        }
        other => Err(ArgError(format!(
            "trace subcommand must be gen|info|replay, got {other:?}"
        ))),
    }
}

/// `phastlane trace-dump`: inspect a JSON event trace written by
/// `--trace-out` — per-kind histogram plus (optionally filtered) event
/// listing.
///
/// # Errors
///
/// Propagates argument, I/O, and parse errors.
pub fn cmd_trace_dump(p: &Parsed) -> Result<String, ArgError> {
    let path = p.positional(1).ok_or_else(|| {
        ArgError("trace-dump <file.json> [--kind K] [--node N] [--limit L] [--counts]".into())
    })?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let json =
        phastlane_netsim::obs::json::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let events = json
        .get("events")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| ArgError(format!("{path}: not a trace export (no \"events\" array)")))?;

    let kind_filter = match p.get("kind") {
        None => None,
        Some(k) => Some(
            phastlane_netsim::obs::EventKind::from_name(k)
                .ok_or_else(|| ArgError(format!("unknown event kind {k:?}")))?
                .name(),
        ),
    };
    let node_filter: Option<u64> = match p.get("node") {
        None => None,
        Some(_) => Some(p.get_parsed("node", 0)?),
    };
    let limit: usize = p.get_parsed("limit", 40)?;

    let mut out = String::new();
    let stat = |k: &str| json.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "{path}: {} events retained ({} recorded, {} evicted, {} filtered)\n",
        events.len(),
        stat("recorded"),
        stat("evicted"),
        stat("filtered"),
    ));

    // Per-kind histogram over the retained events.
    let mut counts: Vec<(String, u64)> = Vec::new();
    for e in events {
        let kind = e.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
        match counts.iter_mut().find(|(k, _)| k == kind) {
            Some((_, c)) => *c += 1,
            None => counts.push((kind.to_string(), 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (kind, c) in &counts {
        out.push_str(&format!("{kind:>20} {c:>8}\n"));
    }
    if p.flag("counts") {
        return Ok(out);
    }

    out.push_str(&format!(
        "\n{:>10} {:>20} {:>5} {:>6} {:>8}\n",
        "cycle", "kind", "node", "port", "packet"
    ));
    let mut shown = 0usize;
    for e in events {
        let kind = e.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
        if kind_filter.is_some_and(|k| k != kind) {
            continue;
        }
        let node = e.get("node").and_then(JsonValue::as_u64);
        if node_filter.is_some() && node != node_filter {
            continue;
        }
        if shown == limit {
            out.push_str("... (raise --limit for more)\n");
            break;
        }
        shown += 1;
        let opt_u = |k: &str| {
            e.get(k)
                .and_then(JsonValue::as_u64)
                .map_or("-".to_string(), |v| v.to_string())
        };
        out.push_str(&format!(
            "{:>10} {kind:>20} {:>5} {:>6} {:>8}\n",
            opt_u("cycle"),
            opt_u("node"),
            e.get("port").and_then(JsonValue::as_str).unwrap_or("-"),
            opt_u("packet"),
        ));
    }
    Ok(out)
}

/// `phastlane design`: the §3 analytic models from the command line.
///
/// # Errors
///
/// Propagates argument errors.
pub fn cmd_design(p: &Parsed) -> Result<String, ArgError> {
    let wavelengths: u32 = p.get_parsed("wavelengths", 64)?;
    let wdm = WdmConfig::new(wavelengths);
    let hops: u32 = p.get_parsed("hops", 4)?;
    let eff: f64 = p.get_parsed("efficiency", 0.98)?;
    let mut out = String::new();
    out.push_str(&format!(
        "wavelengths: {wavelengths}, waveguides: {}\n",
        wdm.total_waveguides()
    ));
    for s in Scaling::ALL {
        let d = RouterDesign {
            wdm,
            scaling: s,
            node: phastlane_photonics::units::TechNode::NM16,
        };
        out.push_str(&format!(
            "{s:12}: {} hops per 4 GHz cycle\n",
            d.max_hops_per_cycle()
        ));
    }
    let power = PowerPoint::new(wdm, hops, eff).peak_optical_power();
    out.push_str(&format!(
        "peak optical power at {hops} hops, {:.1}% crossings: {:.1} W\n",
        eff * 100.0,
        power.as_watts()
    ));
    let area = phastlane_photonics::area::RouterArea::for_wdm(wdm);
    out.push_str(&format!("router area: {:.2} mm^2\n", area.total().value()));
    Ok(out)
}

/// `phastlane chaos`: a soak sweep across fault intensities. For each
/// intensity a seeded random fault plan is generated and a synthetic
/// uniform-traffic run executes on a fresh network; the table reports the
/// delivered fraction, p99 latency inflation over the fault-free
/// baseline, and undeliverable counts. Every accepted packet must end
/// delivered or explicitly undeliverable — leftover in-flight packets
/// are flagged as UNRESOLVED.
///
/// # Errors
///
/// Propagates argument errors.
pub fn cmd_chaos(p: &Parsed) -> Result<String, ArgError> {
    let mesh = parse_mesh(p)?;
    let net_name = p.get("net").unwrap_or("optical4");
    let rate: f64 = p.get_parsed("rate", 0.05)?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(ArgError(format!(
            "injection rates must be finite and in [0, 1], got {rate}"
        )));
    }
    let seed: u64 = p.get_parsed("seed", 7)?;
    let fault_seed: u64 = p.get_parsed("fault-seed", 1)?;
    // A tight retry cap keeps the soak's drain phase short; override with
    // --retry-limit for longer-suffering sources.
    let retry_limit: u32 = p.get_parsed("retry-limit", 50)?;
    let intensities: Vec<f64> = match p.get("intensities") {
        None => vec![0.0, 0.1, 0.25, 0.5],
        Some(list) => list
            .split(',')
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| ArgError(format!("bad intensity {s:?}")))
            })
            .collect::<Result<_, _>>()?,
    };
    if intensities.iter().any(|i| !(0.0..=1.0).contains(i)) {
        return Err(ArgError("intensities must be in [0, 1]".into()));
    }
    let obs = parse_obs(p)?;
    // The drain window is generous: under heavy fault intensities every
    // stranded packet must walk to its retry cap (head-of-line, one queue
    // entry at a time) before the run can account for it.
    let opts = SyntheticOptions {
        warmup: 500,
        measure: 2_000,
        drain: 60_000,
    };

    let mut out = format!(
        "chaos soak: {net_name} ({}x{}), uniform rate {rate}, fault seed {fault_seed}\n",
        mesh.width(),
        mesh.height()
    );
    out.push_str(&format!(
        "{:>9} {:>7} {:>10} {:>8} {:>6} {:>8} {:>9}\n",
        "intensity", "faults", "delivered", "p99", "p99x", "undeliv", "rerouted"
    ));
    let mut baseline_p99: Option<u64> = None;
    for &intensity in &intensities {
        let plan = FaultPlan::random(mesh, fault_seed, intensity);
        let mut net = build_network_with(net_name, mesh, Some(retry_limit))?;
        if !plan.is_empty() {
            net.set_fault_plan(plan.clone(), fault_seed);
        }
        if obs.trace_out.is_some() {
            net.set_trace(obs.make_buffer());
        }
        obs.instrument(net.as_mut(), seed);
        let mut metrics = obs.make_metrics(mesh.nodes());
        let mut w = BernoulliTraffic::new(mesh, Pattern::Uniform, rate, seed);
        let r = run_synthetic_observed(&mut net, &mut w, opts, metrics.as_mut());
        let stats = net.stats();
        let resolved = stats.delivered + stats.undeliverable;
        let delivered_frac = if resolved > 0 {
            stats.delivered as f64 / resolved as f64
        } else {
            1.0
        };
        let p99 = r.latency.percentile(99.0);
        if intensity == 0.0 && baseline_p99.is_none() {
            baseline_p99 = p99;
        }
        let inflation = match (baseline_p99, p99) {
            (Some(b), Some(v)) if b > 0 => format!("{:.2}", v as f64 / b as f64),
            _ => "-".into(),
        };
        out.push_str(&format!(
            "{intensity:>9.2} {:>7} {:>9.1}% {:>8} {:>6} {:>8} {:>9}\n",
            plan.len(),
            delivered_frac * 100.0,
            p99.map_or("-".into(), |v| v.to_string()),
            inflation,
            stats.undeliverable,
            stats.rerouted,
        ));
        if r.unfinished > 0 {
            out.push_str(&format!(
                "  UNRESOLVED: {} accepted packets neither delivered nor undeliverable\n",
                r.unfinished
            ));
        }
        if let Some(b) = &r.perf.phases {
            out.push_str(&phase_table(b));
        }
        if let (Some(path), Some(fr)) = (&obs.flight_out, net.take_flight_recorder()) {
            let path = rate_path(path, intensity, intensities.len() > 1);
            out.push_str("  ");
            out.push_str(&write_flight(&path, &fr)?);
        }
        if let Some(path) = &obs.trace_out {
            let path = rate_path(path, intensity, intensities.len() > 1);
            let tb = net.take_trace().unwrap_or_default();
            write_export(&path, &tb.to_json(), || tb.to_csv())?;
            out.push_str(&format!("  trace: {} events -> {path}\n", tb.len()));
        }
        if let (Some(path), Some(m)) = (&obs.metrics_out, metrics) {
            let path = rate_path(path, intensity, intensities.len() > 1);
            let series = m.into_series();
            write_export(&path, &series.to_json(), || series.to_csv())?;
            out.push_str(&format!(
                "  metrics: {} samples -> {path}\n",
                series.samples.len()
            ));
        }
        if let Some(path) = &obs.report_out {
            let path = rate_path(path, intensity, intensities.len() > 1);
            let report = RunReport {
                network: net.name(),
                width: mesh.width(),
                height: mesh.height(),
                seed: Some(seed),
                cycles: r.perf.cycles,
                stats,
                energy: r.energy,
                perf: r.perf,
                extra: vec![
                    ("intensity".into(), JsonValue::Num(intensity)),
                    ("faults".into(), JsonValue::Uint(plan.len() as u64)),
                    ("fault_seed".into(), JsonValue::Uint(fault_seed)),
                    ("fault_plan".into(), JsonValue::Str(plan.encode())),
                    ("delivered_fraction".into(), JsonValue::Num(delivered_frac)),
                    ("unresolved".into(), JsonValue::Uint(r.unfinished)),
                ],
            };
            write_export(&path, &report.to_json(), || report.to_csv())?;
            out.push_str(&format!("  report -> {path}\n"));
        }
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> &'static str {
    "phastlane — Phastlane (ISCA 2009) reproduction CLI

USAGE:
  phastlane simulate [--net N] [--benchmark B] [--scale S] [--mesh WxH]
  phastlane compare  [--net N] [--benchmark B] [--scale S]
  phastlane sweep    [--net N] [--pattern P] [--rate R | --rates R1,R2,..]
  phastlane chaos    [--net N] [--rate R] [--intensities I1,I2,..]
                     [--fault-seed S] [--retry-limit L]
  phastlane lab run     SPEC [--workers N] [--batch K] [--report-out F]
                     [--perf-out F] [--progress[=FILE]] [--profile]
                     [--profile-sample C] [--journal F] [--resume F]
                     [--preflight]
  phastlane lab record  SPEC [--name NAME] [--baseline-dir DIR] [--workers N]
                     [--batch K] [--bench-out F]
  phastlane lab compare SPEC [--name NAME] [--baseline-dir DIR] [--workers N]
                     [--batch K] [--tol-mean T] [--tol-p99 T]
                     [--tol-saturation T] [--tol-throughput T]
  phastlane serve    [--addr A] [--workers N] [--queue-depth D]
                     [--state-dir DIR] [--baseline-dir DIR] [--allow-shutdown]
  phastlane client submit SPEC [--addr A] [--workers N] [--wait]
                     [--report-out F]
  phastlane client status ID [--addr A]
  phastlane client watch  ID [--addr A]
  phastlane client shutdown  [--addr A]
  phastlane analyze  [--net N] [--mesh WxH] [--fault-plan F | --fault-rate R]
                     [--fault-seed S] [--json] [--out FILE]
  phastlane analyze  --ring LEN | --spec FILE [--json]
  phastlane analyze  --src [--root DIR] [--allow FILE] [--emit-allow FILE]
  phastlane trace gen    [--benchmark B] [--scale S] [--out FILE]
  phastlane trace info   FILE
  phastlane trace replay FILE [--net N]
  phastlane trace-dump FILE.json [--kind K] [--node N] [--limit L] [--counts]
  phastlane design   [--wavelengths W] [--hops H] [--efficiency E]

observability (simulate, sweep, chaos):
  --trace-out FILE      export the cycle-accurate event trace (.json or .csv)
  --metrics-out FILE    export interval-sampled time-series metrics
  --report-out FILE     export the structured run report
  --sample-interval C   metrics window in cycles (default 100)
  --ring N              keep only the latest N trace events
  --severity S          trace floor: debug (default), info, warn
  --profile             per-phase hot-loop breakdown (table + report/BENCH)
  --profile-sample C    time one cycle in C under --profile (default 32)
  --flight-recorder F   dump per-packet journeys (every 1-in-N sampled
                        packet plus every undeliverable one) to F as JSON
  --flight-sample N     flight-recorder sampling interval (default 64)

lab progress (lab run):
  --progress[=FILE]     stream NDJSON job lifecycle events (queued, started,
                        finished with rolling cycles/s + ETA) to stderr or
                        FILE; purely observational, canonical report is
                        byte-identical

serving (serve, client):
  --addr A              bind/target address (default 127.0.0.1:7690)
  --queue-depth D       queued jobs beyond D are rejected with HTTP 429
  --state-dir DIR       persist job specs/status/reports/journals so a
                        restarted server recovers finished results and
                        resumes interrupted runs from their journals
  --allow-shutdown      honour POST /shutdown (otherwise signals only)
  --wait                client submit: poll until the job is terminal
  --report-out F        client submit: fetch the canonical report and
                        write it verbatim (byte-identical to `lab run`)

crash safety (lab run):
  --journal FILE        checkpoint every finished job to an append-only
                        NDJSON journal (one CRC-protected line per job)
  --resume FILE         replay a killed run's journal: finished jobs are
                        restored, only the remainder re-runs, and the
                        canonical report is byte-identical to an
                        uninterrupted run (requires the same spec + flags)

fault injection (simulate, sweep, chaos):
  --fault-plan FILE     scheduled faults (link nX DIR / router nX / droop F /
                        biterr R lines, each with optional @start +duration)
  --fault-rate R        seeded random permanent faults of intensity R in [0,1]
  --fault-seed S        seed for the random plan and fault-path RNG (default 1)
  --retry-limit L       retries before a message is declared undeliverable

static verification (analyze; no cycles simulated):
  default mode          channel-dependency-graph deadlock check (minimal
                        witness cycle when cyclic), residual connectivity
                        under the fault plan's worst-case view (predicted
                        undeliverable pairs), optical loss-budget envelope
                        (effective hops under laser droop)
  --ring LEN            known-deadlocking reference: naive DOR on a
                        unidirectional torus ring, always yields a witness
  --spec FILE           lint a lab spec; statically doomed matrices exit
                        non-zero (same gate as `lab run --preflight`)
  --src                 scan crates/*/src for determinism hazards
                        (wall-clock, hash-iteration, ambient-env) against
                        an allowlist of audited exceptions

lab spec keys (one `key value...` per line, # comments):
  name mesh seed nets patterns rates intensities replicas
  warmup measure drain retry-limit benchmarks scale max-cycles batch
  profile cycle-budget livelock-window wall-budget retries
  retry-backoff-ms sabotage
  (batch K advances up to K same-cell replicas in lockstep; profile C
  attaches the phase profiler timing one cycle in C; like --workers
  neither ever changes a canonical-report bit)
  (supervision: cycle-budget / livelock-window end runaway jobs with a
  terminal timed_out outcome; wall-budget S caps wall seconds; retries N
  re-runs panicked or wall-timed jobs with seeded backoff; sabotage
  panic@I livelock@J deliberately breaks jobs I and J to exercise the
  harness)

networks: optical4 optical5 optical8 optical4b32 optical4b64 optical4ib
          optical4sp50 electrical2 electrical3
benchmarks: Barnes Cholesky FFT LU Ocean Radix Raytrace
            Water-NSquared Water-Spatial FMM
patterns: uniform bitcomp bitrev shuffle transpose neighbor hotspot
event kinds: inject nic_retry optical_transit link_traversal
             electrical_fallback buffer_overflow drop_return retransmit eject
             fault_injected fault_cleared fault_reroute fault_stall
             ecc_corrected ecc_uncorrectable undeliverable
"
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Propagates errors from the subcommands.
pub fn dispatch(p: &Parsed) -> Result<String, ArgError> {
    match p.positional(0) {
        Some("simulate") => cmd_simulate(p),
        Some("compare") => cmd_compare(p),
        Some("sweep") => cmd_sweep(p),
        Some("chaos") => cmd_chaos(p),
        Some("lab") => crate::lab::cmd_lab(p),
        Some("serve") => crate::serve_cmd::cmd_serve(p),
        Some("client") => crate::serve_cmd::cmd_client(p),
        Some("analyze") => crate::analyze::cmd_analyze(p),
        Some("trace") => cmd_trace(p),
        Some("trace-dump") => cmd_trace_dump(p),
        Some("design") => cmd_design(p),
        Some("help") | None => Ok(usage().to_string()),
        Some(other) => Err(ArgError(format!(
            "unknown command {other:?}; try `phastlane help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(words: &[&str]) -> Parsed {
        Parsed::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn unknown_network_is_an_error() {
        match build_network("warp-drive", Mesh::PAPER) {
            Err(e) => assert!(e.to_string().contains("unknown network")),
            Ok(_) => panic!("bogus network accepted"),
        }
    }

    #[test]
    fn every_advertised_network_builds() {
        for n in [
            "optical4",
            "optical5",
            "optical8",
            "optical4b32",
            "optical4b64",
            "optical4ib",
            "optical4sp50",
            "electrical2",
            "electrical3",
        ] {
            assert!(build_network(n, Mesh::PAPER).is_ok(), "{n}");
        }
    }

    #[test]
    fn mesh_parsing() {
        assert_eq!(parse_mesh(&parsed(&[])).unwrap(), Mesh::PAPER);
        assert_eq!(
            parse_mesh(&parsed(&["--mesh", "4x6"])).unwrap(),
            Mesh::new(4, 6)
        );
        assert!(parse_mesh(&parsed(&["--mesh", "nope"])).is_err());
        assert!(parse_mesh(&parsed(&["--mesh", "0x4"])).is_err());
    }

    #[test]
    fn simulate_small_benchmark_runs() {
        let p = parsed(&[
            "simulate",
            "--benchmark",
            "LU",
            "--scale",
            "0.02",
            "--net",
            "optical4",
        ]);
        let out = dispatch(&p).expect("runs");
        assert!(out.contains("LU on Optical4"));
        assert!(out.contains("completion:"));
    }

    #[test]
    fn compare_reports_speedup() {
        let p = parsed(&["compare", "--benchmark", "Water-Spatial", "--scale", "0.02"]);
        let out = dispatch(&p).expect("runs");
        assert!(out.contains("network speedup:"));
    }

    #[test]
    fn sweep_runs_one_rate() {
        let p = parsed(&["sweep", "--pattern", "shuffle", "--rate", "0.02"]);
        let out = dispatch(&p).expect("runs");
        assert!(out.contains("Shuffle"));
    }

    #[test]
    fn design_prints_hop_counts() {
        let p = parsed(&["design"]);
        let out = dispatch(&p).expect("runs");
        assert!(out.contains("optimistic  : 8 hops") || out.contains("8 hops"));
        assert!(out.contains("peak optical power"));
    }

    #[test]
    fn trace_gen_info_replay_roundtrip() {
        let dir = std::env::temp_dir().join("phastlane_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.trace");
        let gen = parsed(&[
            "trace",
            "gen",
            "--benchmark",
            "FFT",
            "--scale",
            "0.02",
            "--out",
            file.to_str().unwrap(),
        ]);
        dispatch(&gen).expect("gen");
        let info = parsed(&["trace", "info", file.to_str().unwrap()]);
        let out = dispatch(&info).expect("info");
        assert!(out.contains("messages"));
        let replay = parsed(&[
            "trace",
            "replay",
            file.to_str().unwrap(),
            "--net",
            "optical4",
        ]);
        let out = dispatch(&replay).expect("replay");
        assert!(out.contains("cycles"));
    }

    #[test]
    fn chaos_accounts_every_packet() {
        // Both network families have their own give-up machinery (retry
        // cap vs stall-abandon + NIC age-out); neither may leak packets.
        for net in ["optical4", "electrical2"] {
            let p = parsed(&[
                "chaos",
                "--net",
                net,
                "--mesh",
                "4x4",
                "--intensities",
                "0.0,0.25",
                "--fault-seed",
                "1",
            ]);
            let out = dispatch(&p).expect("runs");
            assert!(out.contains("chaos soak"));
            assert!(out.contains("intensity"), "table header present");
            assert!(
                !out.contains("UNRESOLVED"),
                "{net}: every packet delivered or undeliverable:\n{out}"
            );
        }
    }

    #[test]
    fn fault_plan_and_rate_are_mutually_exclusive() {
        let p = parsed(&[
            "simulate",
            "--benchmark",
            "LU",
            "--scale",
            "0.02",
            "--fault-plan",
            "x.plan",
            "--fault-rate",
            "0.1",
        ]);
        let e = dispatch(&p).expect_err("conflicting fault sources");
        assert!(e.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn simulate_with_faults_reports_degradation() {
        let p = parsed(&[
            "simulate",
            "--benchmark",
            "LU",
            "--scale",
            "0.02",
            "--net",
            "optical4",
            "--fault-rate",
            "0.2",
            "--fault-seed",
            "3",
            "--retry-limit",
            "10",
        ]);
        let out = dispatch(&p).expect("runs");
        assert!(out.contains("faults:"), "fault summary line present: {out}");
    }

    #[test]
    fn hostile_numeric_arguments_are_rejected_not_panicked() {
        // Negative, NaN, and out-of-range rates.
        for bad in ["-0.5", "NaN", "1.5", "inf"] {
            let e = dispatch(&parsed(&["sweep", "--rate", bad]))
                .expect_err(&format!("rate {bad} accepted"));
            assert!(
                e.to_string().contains("[0, 1]") || e.to_string().contains("bad rate"),
                "{bad}: {e}"
            );
            let e = dispatch(&parsed(&["chaos", "--mesh", "4x4", "--rate", bad]))
                .expect_err(&format!("chaos rate {bad} accepted"));
            assert!(!e.to_string().is_empty());
        }
        let e = dispatch(&parsed(&["sweep", "--rates", "0.02,-1"])).expect_err("negative rate");
        assert!(e.to_string().contains("[0, 1]"), "{e}");
        // Zero / NaN / negative --scale.
        for bad in ["0", "-1", "NaN"] {
            let e = dispatch(&parsed(&["simulate", "--benchmark", "LU", "--scale", bad]))
                .expect_err(&format!("scale {bad} accepted"));
            assert!(e.to_string().contains("positive finite"), "{bad}: {e}");
        }
        // Unparseable numeric values report their key.
        let e = dispatch(&parsed(&["sweep", "--rate", "abc"])).expect_err("non-number");
        assert!(e.to_string().contains("--rate"), "{e}");
    }

    #[test]
    fn usage_documents_crash_safety() {
        let u = usage();
        for key in ["--journal", "--resume", "cycle-budget", "sabotage"] {
            assert!(u.contains(key), "usage missing {key}");
        }
    }

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&parsed(&[])).unwrap().contains("USAGE"));
        assert!(dispatch(&parsed(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&parsed(&["frobnicate"])).is_err());
    }
}
