//! `phastlane` — command-line interface to the Phastlane (ISCA 2009)
//! reproduction: run simulations, sweeps, trace workflows, and the §3
//! design-space models without writing Rust.
//!
//! The binary in `main.rs` is a thin wrapper; everything lives here so
//! integration tests can drive the real command path in-process.

pub mod analyze;
pub mod args;
pub mod commands;
pub mod lab;
pub mod serve_cmd;
