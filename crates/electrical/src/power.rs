//! Energy model for the baseline electrical network.
//!
//! The paper uses CACTI for buffers and the Balfour–Dally component
//! models for everything else (§4). We use per-event energies at 16 nm
//! (*calibrated*, see `DESIGN.md` substitution #3): SRAM buffer
//! read/write, crossbar traversal, allocator events, full-swing repeated
//! links at the 1.87 mm node pitch, and per-router leakage dominated by
//! the 50 flit-slots of VC buffers and the allocator logic.

use phastlane_netsim::stats::EnergyReport;

/// Bits that move per flit event (640 payload + 70 header/control —
/// matched with the optical network for a fair comparison).
pub const FLIT_BITS: f64 = 710.0;

/// Buffer write energy per bit (pJ).
pub const E_BUF_WRITE_PJ_PER_BIT: f64 = 0.012;
/// Buffer read energy per bit (pJ).
pub const E_BUF_READ_PJ_PER_BIT: f64 = 0.010;
/// Crossbar traversal energy per bit (pJ).
pub const E_XBAR_PJ_PER_BIT: f64 = 0.008;
/// Link traversal energy per bit (pJ) for a 1.87 mm full-swing repeated
/// wire at 16 nm (~0.22 pJ/bit/mm).
pub const E_LINK_PJ_PER_BIT: f64 = 0.420;
/// Energy per allocator decision (VC or switch grant), pJ.
pub const E_ARB_PJ: f64 = 0.5;
/// Static leakage per router (mW): 50 eighty-byte VC slots, allocators,
/// crossbar drivers.
pub const LEAKAGE_MW_PER_ROUTER: f64 = 4.0;
/// Network clock period (ps) at 4 GHz.
pub const CLOCK_PS: f64 = 250.0;

/// Per-event energy ledger for the electrical network.
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    report: EnergyReport,
    leakage_pj_per_cycle: f64,
}

impl EnergyLedger {
    /// Creates a ledger for `routers` routers.
    pub fn new(routers: usize) -> Self {
        EnergyLedger {
            report: EnergyReport::default(),
            leakage_pj_per_cycle: LEAKAGE_MW_PER_ROUTER * routers as f64 * CLOCK_PS * 1e-3,
        }
    }

    /// A flit written into a VC buffer (arrival or injection).
    pub fn on_buffer_write(&mut self) {
        self.report.dynamic_pj += E_BUF_WRITE_PJ_PER_BIT * FLIT_BITS;
    }

    /// A flit read out of its VC for traversal or ejection.
    pub fn on_buffer_read(&mut self) {
        self.report.dynamic_pj += E_BUF_READ_PJ_PER_BIT * FLIT_BITS;
    }

    /// A flit crossing the switch.
    pub fn on_crossbar(&mut self) {
        self.report.dynamic_pj += E_XBAR_PJ_PER_BIT * FLIT_BITS;
    }

    /// A flit traversing an inter-router link.
    pub fn on_link(&mut self) {
        self.report.link_pj += E_LINK_PJ_PER_BIT * FLIT_BITS;
    }

    /// One allocator grant (VC or switch).
    pub fn on_allocation(&mut self) {
        self.report.dynamic_pj += E_ARB_PJ;
    }

    /// One cycle of leakage across the network.
    pub fn on_cycle(&mut self) {
        self.report.leakage_pj += self.leakage_pj_per_cycle;
    }

    /// The accumulated report.
    pub fn report(&self) -> EnergyReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_hop_energy_magnitude() {
        // One hop = write + read + xbar + link + ~2 allocations: ~230 pJ.
        let mut e = EnergyLedger::new(64);
        e.on_buffer_write();
        e.on_buffer_read();
        e.on_crossbar();
        e.on_link();
        e.on_allocation();
        e.on_allocation();
        let total = e.report().total_pj();
        assert!(total > 150.0 && total < 350.0, "per-hop energy {total} pJ");
    }

    #[test]
    fn leakage_dominates_idle_network() {
        let mut e = EnergyLedger::new(64);
        for _ in 0..1000 {
            e.on_cycle();
        }
        let r = e.report();
        assert_eq!(r.dynamic_pj, 0.0);
        // 4 mW x 64 routers = 256 mW -> 64 pJ/cycle.
        assert!((r.leakage_pj / 1000.0 - 64.0).abs() < 1.0);
    }

    #[test]
    fn electrical_leakage_exceeds_optical() {
        // The paper's optical network has far less electrical state.
        assert!(
            LEAKAGE_MW_PER_ROUTER > phastlane_core_leakage(),
            "baseline router must leak more than the Phastlane router"
        );
    }

    fn phastlane_core_leakage() -> f64 {
        // Mirrors phastlane_core::power::LEAKAGE_MW_PER_ROUTER without a
        // circular dev-dependency.
        0.5
    }
}
