//! # Phastlane: a rapid transit optical routing network
//!
//! A cycle-accurate simulator of the Phastlane hybrid electrical/optical
//! on-chip network (*Cianchetti, Kerekes, Albonesi — ISCA 2009*).
//!
//! Phastlane is a 2D mesh of optical crossbar switches for cache-coherent
//! multicores. Packets carry *predecoded source routing* bits optically
//! alongside the data (two control waveguides, 14 groups of five bits),
//! letting an unblocked packet transit up to 4–8 routers in a single
//! 4 GHz cycle. On contention, the loser is received into electrical
//! buffers; when those are full the packet is dropped and the source is
//! notified within one cycle over a dedicated optical return path, then
//! backs off and retransmits. Broadcasts decompose into up to 16
//! column-multicast messages whose en-route routers tap a fraction of the
//! optical power.
//!
//! Modules:
//!
//! * [`config`] — Table 1 configurations (`Optical4`, `Optical4B32`, …);
//! * [`control`] — the C0/C1 control-waveguide encoding (Figure 3);
//! * [`channels`] — bit-to-(waveguide, wavelength) assignment (Figure 2);
//! * [`plan`] — per-cycle flight plans (segments, taps, interim stops);
//! * [`multicast`] — broadcast decomposition into column messages;
//! * [`router`] — electrical buffers and the rotating-priority arbiter;
//! * [`network`] — the simulator, implementing
//!   [`phastlane_netsim::Network`];
//! * [`power`] — optical + electrical energy accounting.
//!
//! # Example
//!
//! Send one packet corner to corner and watch it arrive:
//!
//! ```
//! use phastlane_core::{PhastlaneConfig, PhastlaneNetwork};
//! use phastlane_netsim::{Network, NewPacket, NodeId};
//!
//! let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
//! net.inject(NewPacket::unicast(NodeId(0), NodeId(63))).unwrap();
//! while net.in_flight() > 0 {
//!     net.step();
//! }
//! let deliveries = net.drain_deliveries();
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].dest, NodeId(63));
//! // 14 hops at 4 hops/cycle: four launch cycles.
//! assert!(deliveries[0].latency() <= 8);
//! ```

#![warn(missing_docs)]

pub mod channels;
pub mod config;
pub mod control;
pub mod dropnet;
pub mod multicast;
pub mod network;
pub mod plan;
pub mod policies;
pub mod power;
pub mod router;

pub use config::{BackoffPolicy, BufferDepth, PhastlaneConfig};
pub use network::PhastlaneNetwork;
pub use policies::{ArbitrationPolicy, PathPriority};

/// Version tag for the hot-path data layout (flight arena, parked
/// launch entries, arbitrable bitmask). Recorded in `BENCH_*.json`
/// trajectory points so a perf number is attributable to the layout
/// that produced it; bump when the per-cycle memory layout changes.
pub const ARENA_LAYOUT: &str = "soa-v2";

// Compile-time `Send` guarantee: the `phastlane-lab` scheduler runs
// whole networks on `std::thread` workers. A future `Rc`/raw-pointer
// refactor must fail right here at build time, not in the scheduler.
fn _assert_send<T: Send>() {}
const _: fn() = _assert_send::<PhastlaneNetwork>;
const _: fn() = _assert_send::<PhastlaneConfig>;
