//! Packet and message types shared by both network implementations.
//!
//! Both the Phastlane network and the electrical baseline use single-flit,
//! 80-byte packets (Tables 1 and 2): a 64-byte cache line plus address,
//! operation type, source id, ECC, and routing control.

use crate::geometry::NodeId;
use std::fmt;

/// Total packet size in bytes (one flit).
pub const PACKET_BYTES: u32 = 80;
/// Total packet size in bits.
pub const PACKET_BITS: u32 = PACKET_BYTES * 8;

/// Unique identifier a network assigns to an injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The coherence-level operation a packet carries. Only used for
/// statistics and trace bookkeeping; the networks treat all kinds alike
/// except for multicast routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A read (GetS) coherence request — broadcast in a snoopy system.
    ReadRequest,
    /// A write/upgrade (GetX) coherence request — broadcast.
    WriteRequest,
    /// A data response (cache-to-cache or from a memory controller).
    DataResponse,
    /// An invalidate — broadcast.
    Invalidate,
    /// A writeback to a memory controller.
    Writeback,
    /// Generic point-to-point data (synthetic workloads).
    Data,
}

impl PacketKind {
    /// Every kind, in declaration order (dense-array indexing).
    pub const ALL: [PacketKind; 6] = [
        PacketKind::ReadRequest,
        PacketKind::WriteRequest,
        PacketKind::DataResponse,
        PacketKind::Invalidate,
        PacketKind::Writeback,
        PacketKind::Data,
    ];

    /// Dense index of this kind (position in [`PacketKind::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this kind is broadcast in a snoopy protocol.
    pub fn is_snoop_broadcast(self) -> bool {
        matches!(
            self,
            PacketKind::ReadRequest | PacketKind::WriteRequest | PacketKind::Invalidate
        )
    }
}

/// Destination set of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DestSet {
    /// A single destination.
    Unicast(NodeId),
    /// An explicit list of destinations (deduplicated, excludes source).
    Multicast(Vec<NodeId>),
    /// Every node except the source.
    Broadcast,
}

impl DestSet {
    /// Expands to the concrete destination list for a given source and
    /// node count. Destinations equal to `src` are dropped; duplicates in
    /// a multicast list are dropped.
    pub fn expand(&self, src: NodeId, nodes: usize) -> Vec<NodeId> {
        match self {
            DestSet::Unicast(d) => {
                if *d == src {
                    Vec::new()
                } else {
                    vec![*d]
                }
            }
            DestSet::Multicast(list) => {
                let mut out: Vec<NodeId> = Vec::with_capacity(list.len());
                for &d in list {
                    if d != src && !out.contains(&d) {
                        out.push(d);
                    }
                }
                out
            }
            DestSet::Broadcast => (0..nodes as u16)
                .map(NodeId)
                .filter(|&n| n != src)
                .collect(),
        }
    }

    /// Whether this is a multi-destination set.
    pub fn is_multi(&self) -> bool {
        match self {
            DestSet::Unicast(_) => false,
            DestSet::Multicast(list) => list.len() > 1,
            DestSet::Broadcast => true,
        }
    }
}

/// Destinations a message still has to reach, stored inline when short.
///
/// The Phastlane hot path clones and shrinks these lists on every launch
/// and delivery; a heap list would make that a malloc per event. Up to
/// [`TargetList::INLINE`] targets live directly in the structure — which
/// covers every per-column message an 8x8 broadcast produces — and only
/// longer lists (large-mesh broadcasts) spill to the heap. Order is
/// preserved; the list dereferences to a `[NodeId]` slice.
#[derive(Clone)]
pub struct TargetList(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [NodeId; TargetList::INLINE],
    },
    Spill(Vec<NodeId>),
}

impl TargetList {
    /// Number of targets stored without heap allocation.
    pub const INLINE: usize = 8;

    /// Creates an empty list.
    pub fn new() -> Self {
        TargetList(Repr::Inline {
            len: 0,
            buf: [NodeId(0); Self::INLINE],
        })
    }

    /// Appends a target, preserving order.
    pub fn push(&mut self, node: NodeId) {
        match &mut self.0 {
            Repr::Inline { len, buf } if (*len as usize) < Self::INLINE => {
                buf[*len as usize] = node;
                *len += 1;
            }
            Repr::Inline { len, buf } => {
                let mut v = Vec::with_capacity(Self::INLINE * 2);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(node);
                self.0 = Repr::Spill(v);
            }
            Repr::Spill(v) => v.push(node),
        }
    }

    /// Keeps only targets for which `f` returns true, preserving order.
    pub fn retain(&mut self, mut f: impl FnMut(&NodeId) -> bool) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let mut kept = 0usize;
                for i in 0..*len as usize {
                    if f(&buf[i]) {
                        buf[kept] = buf[i];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            Repr::Spill(v) => v.retain(f),
        }
    }

    /// Removes all targets.
    pub fn clear(&mut self) {
        match &mut self.0 {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Spill(v) => v.clear(),
        }
    }

    /// The targets as a slice, in insertion order.
    pub fn as_slice(&self) -> &[NodeId] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spill(v) => v,
        }
    }

    /// The first target, if any.
    pub fn first(&self) -> Option<&NodeId> {
        self.as_slice().first()
    }

    /// Copies the current contents of `other` into `self`, reusing any
    /// spill capacity `self` already owns (the flight-pool reset path).
    pub fn clone_from_list(&mut self, other: &TargetList) {
        match (&mut self.0, &other.0) {
            (Repr::Spill(dst), Repr::Spill(src)) => {
                dst.clear();
                dst.extend_from_slice(src);
            }
            (Repr::Spill(dst), Repr::Inline { len, buf }) => {
                dst.clear();
                dst.extend_from_slice(&buf[..*len as usize]);
            }
            (dst, _) => *dst = other.0.clone(),
        }
    }
}

impl Default for TargetList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for TargetList {
    type Target = [NodeId];
    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl PartialEq for TargetList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TargetList {}

impl fmt::Debug for TargetList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[NodeId]> for TargetList {
    fn from(nodes: &[NodeId]) -> Self {
        nodes.iter().copied().collect()
    }
}

impl FromIterator<NodeId> for TargetList {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut out = TargetList::new();
        for n in iter {
            out.push(n);
        }
        out
    }
}

impl<'a> IntoIterator for &'a TargetList {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A request to inject one packet, handed to [`crate::network::Network::inject`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NewPacket {
    /// Source node.
    pub src: NodeId,
    /// Destination(s).
    pub dests: DestSet,
    /// Operation kind (statistics / multicast handling).
    pub kind: PacketKind,
}

impl NewPacket {
    /// Convenience constructor for a unicast data packet.
    pub fn unicast(src: NodeId, dst: NodeId) -> Self {
        NewPacket {
            src,
            dests: DestSet::Unicast(dst),
            kind: PacketKind::Data,
        }
    }

    /// Convenience constructor for a broadcast packet.
    pub fn broadcast(src: NodeId, kind: PacketKind) -> Self {
        NewPacket {
            src,
            dests: DestSet::Broadcast,
            kind,
        }
    }
}

/// Record of one packet copy arriving at one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Delivery {
    /// The packet.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// The destination this copy arrived at.
    pub dest: NodeId,
    /// Cycle the packet entered the source NIC.
    pub injected_cycle: u64,
    /// Cycle this copy was delivered.
    pub delivered_cycle: u64,
}

impl Delivery {
    /// Latency from NIC entry to delivery at this destination.
    pub fn latency(&self) -> u64 {
        self.delivered_cycle.saturating_sub(self.injected_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_unicast() {
        let d = DestSet::Unicast(NodeId(5));
        assert_eq!(d.expand(NodeId(0), 64), vec![NodeId(5)]);
        // Self-send collapses to nothing.
        assert!(d.expand(NodeId(5), 64).is_empty());
    }

    #[test]
    fn expand_broadcast_excludes_source() {
        let d = DestSet::Broadcast.expand(NodeId(3), 8);
        assert_eq!(d.len(), 7);
        assert!(!d.contains(&NodeId(3)));
    }

    #[test]
    fn expand_multicast_dedups() {
        let d = DestSet::Multicast(vec![NodeId(1), NodeId(2), NodeId(1), NodeId(0)]);
        assert_eq!(d.expand(NodeId(0), 8), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn is_multi() {
        assert!(!DestSet::Unicast(NodeId(1)).is_multi());
        assert!(DestSet::Broadcast.is_multi());
        assert!(DestSet::Multicast(vec![NodeId(1), NodeId(2)]).is_multi());
        assert!(!DestSet::Multicast(vec![NodeId(1)]).is_multi());
    }

    #[test]
    fn snoop_broadcast_kinds() {
        assert!(PacketKind::ReadRequest.is_snoop_broadcast());
        assert!(PacketKind::Invalidate.is_snoop_broadcast());
        assert!(!PacketKind::DataResponse.is_snoop_broadcast());
        assert!(!PacketKind::Data.is_snoop_broadcast());
    }

    #[test]
    fn delivery_latency() {
        let d = Delivery {
            packet: PacketId(1),
            src: NodeId(0),
            dest: NodeId(1),
            injected_cycle: 10,
            delivered_cycle: 14,
        };
        assert_eq!(d.latency(), 4);
    }

    #[test]
    fn packet_size_is_80_bytes() {
        assert_eq!(PACKET_BITS, 640);
    }

    #[test]
    fn target_list_inline_then_spills() {
        let mut t = TargetList::new();
        assert!(t.is_empty());
        for i in 0..TargetList::INLINE as u16 {
            t.push(NodeId(i));
        }
        assert_eq!(t.len(), TargetList::INLINE);
        // One more forces the spill; order must be preserved across it.
        t.push(NodeId(100));
        assert_eq!(t.len(), TargetList::INLINE + 1);
        let expect: Vec<NodeId> = (0..TargetList::INLINE as u16)
            .map(NodeId)
            .chain([NodeId(100)])
            .collect();
        assert_eq!(t.as_slice(), expect.as_slice());
    }

    #[test]
    fn target_list_retain_preserves_order() {
        let mut t: TargetList = [1u16, 2, 3, 4, 5].into_iter().map(NodeId).collect();
        t.retain(|n| n.0 % 2 == 1);
        assert_eq!(t.as_slice(), &[NodeId(1), NodeId(3), NodeId(5)]);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn target_list_equality_ignores_representation() {
        let inline: TargetList = (0..4u16).map(NodeId).collect();
        let mut spilled: TargetList = (0..12u16).map(NodeId).collect();
        spilled.retain(|n| n.0 < 4);
        assert_eq!(inline, spilled);
        assert_eq!(spilled.first(), Some(&NodeId(0)));
    }

    #[test]
    fn target_list_clone_from_list_matches_clone() {
        let src: TargetList = (0..12u16).map(NodeId).collect();
        let mut dst = TargetList::new();
        dst.clone_from_list(&src);
        assert_eq!(dst, src);
        let short: TargetList = [NodeId(9)].as_slice().into();
        dst.clone_from_list(&short);
        assert_eq!(dst, short);
    }
}
