//! Minimal ASCII chart rendering for the figure binaries: log-scale
//! scatter/line plots that make the latency-vs-load knees visible in a
//! terminal.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Marker character used for this series.
    pub marker: char,
    /// Data points; non-finite y values are skipped.
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a fixed-size ASCII grid with a log-scaled y axis.
///
/// Returns the chart as a string (one trailing newline). X is scaled
/// linearly across the data range; points map to the nearest cell, later
/// series overwrite earlier ones on collisions.
pub fn render_log_y(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite() && *y > 0.0)
        .collect();
    if pts.is_empty() {
        return String::from("(no finite data)\n");
    }
    let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    let (ly_min, mut ly_max) = (y_min.ln(), y_max.ln());
    if (ly_max - ly_min).abs() < f64::EPSILON {
        ly_max = ly_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            if !(x.is_finite() && y.is_finite() && y > 0.0) {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y.ln() - ly_min) / (ly_max - ly_min) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = s.marker;
        }
    }

    let mut out = String::new();
    for (row_idx, row) in grid.iter().enumerate() {
        // Y tick label at top, middle, bottom.
        let frac = 1.0 - row_idx as f64 / (height - 1) as f64;
        let y_val = (ly_min + frac * (ly_max - ly_min)).exp();
        let label = if row_idx == 0 || row_idx == height - 1 || row_idx == height / 2 {
            format!("{y_val:>8.1} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>10}{:<.3}{:>width$.3}\n",
        "",
        "-".repeat(width),
        "",
        x_min,
        x_max,
        width = width - 5
    ));
    for s in series {
        out.push_str(&format!("{:>10} {} = {}\n", "", s.marker, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: Vec<(f64, f64)>) -> Series {
        Series {
            label: "test".into(),
            marker: '*',
            points,
        }
    }

    #[test]
    fn renders_expected_shape() {
        let s = series(vec![(0.0, 1.0), (1.0, 10.0), (2.0, 100.0)]);
        let chart = render_log_y(&[s], 20, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // 8 grid rows + axis + x labels + legend.
        assert_eq!(lines.len(), 8 + 2 + 1);
        assert_eq!(
            chart.matches('*').count(),
            3 + 1,
            "3 points + legend marker"
        );
    }

    #[test]
    fn extremes_hit_corners() {
        let s = series(vec![(0.0, 1.0), (10.0, 1000.0)]);
        let chart = render_log_y(&[s], 30, 6);
        let lines: Vec<&str> = chart.lines().collect();
        // Lowest-left point on the bottom grid row, highest-right on top.
        assert!(lines[0].ends_with('*'), "max point at top right: {chart}");
        assert!(lines[5].contains('*'), "min point on bottom row");
    }

    #[test]
    fn skips_non_finite_points() {
        let s = series(vec![(0.0, f64::INFINITY), (1.0, 5.0), (2.0, f64::NAN)]);
        let chart = render_log_y(&[s], 20, 5);
        assert_eq!(chart.matches('*').count(), 1 + 1);
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render_log_y(&[], 20, 5), "(no finite data)\n");
        let s = series(vec![]);
        assert_eq!(render_log_y(&[s], 20, 5), "(no finite data)\n");
    }

    #[test]
    fn multiple_series_use_their_markers() {
        let a = Series {
            label: "a".into(),
            marker: 'o',
            points: vec![(0.0, 1.0)],
        };
        let b = Series {
            label: "b".into(),
            marker: 'x',
            points: vec![(1.0, 2.0)],
        };
        let chart = render_log_y(&[a, b], 20, 5);
        assert!(chart.contains('o'));
        assert!(chart.contains('x'));
        assert!(chart.contains("o = a"));
        assert!(chart.contains("x = b"));
    }
}
