//! Multicast message construction (§2.1.4).
//!
//! In a snoopy system, broadcasts are realised as up to 16 multicast
//! packets: for each mesh column, one message covers the targets at or
//! above the source's row (routing along the row, then north) and one
//! covers the targets below (row, then south). A source on the top or
//! bottom row needs only one message per column — 8 total — because the
//! single entry-row target folds into the message covering the rest of
//! the column.

use phastlane_netsim::geometry::{Coord, Mesh, NodeId};
use phastlane_netsim::packet::TargetList;

/// Splits a set of delivery targets into dimension-order multicast
/// messages. Each returned list is ordered along the message's path
/// (row first, then monotonically along the column), which is the order
/// [`crate::plan::Plan::build`] requires.
///
/// Targets equal to `src` are ignored.
pub fn split_multicast(mesh: Mesh, src: NodeId, targets: &[NodeId]) -> Vec<TargetList> {
    let s = mesh.coord(src);
    let width = usize::from(mesh.width());
    // Partition targets by column.
    let mut columns: Vec<Vec<Coord>> = vec![Vec::new(); width];
    for &t in targets {
        if t == src {
            continue;
        }
        let c = mesh.coord(t);
        columns[usize::from(c.x)].push(c);
    }

    let mut messages = Vec::new();
    for col in columns.iter_mut() {
        if col.is_empty() {
            continue;
        }
        col.sort_by_key(|c| c.y);
        // Up part: targets at or above the source row, ordered
        // entry-row-first (descending y). Down part: strictly below,
        // ascending.
        let mut up: Vec<Coord> = col.iter().filter(|c| c.y <= s.y).copied().collect();
        up.reverse();
        let down: Vec<Coord> = col.iter().filter(|c| c.y > s.y).copied().collect();

        // If the up part is exactly the entry-row node, the down message
        // passes through it anyway — fold it in (this is what makes a
        // top-row source need only 8 messages for a broadcast).
        if up.len() == 1 && up[0].y == s.y && !down.is_empty() {
            let mut merged = up.clone();
            merged.extend(&down);
            messages.push(to_list(mesh, &merged));
            continue;
        }
        if !up.is_empty() {
            messages.push(to_list(mesh, &up));
        }
        if !down.is_empty() {
            messages.push(to_list(mesh, &down));
        }
    }
    messages
}

fn to_list(mesh: Mesh, coords: &[Coord]) -> TargetList {
    coords.iter().map(|&c| mesh.node_at(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broadcast_targets(mesh: Mesh, src: NodeId) -> Vec<NodeId> {
        mesh.iter_nodes().filter(|&n| n != src).collect()
    }

    fn all_covered(messages: &[TargetList], targets: &[NodeId]) {
        let mut seen = std::collections::HashSet::new();
        for m in messages {
            for &t in m {
                assert!(seen.insert(t), "target {t} covered twice");
            }
        }
        for &t in targets {
            assert!(seen.contains(&t), "target {t} not covered");
        }
        assert_eq!(seen.len(), targets.len());
    }

    #[test]
    fn interior_broadcast_uses_16_messages() {
        let mesh = Mesh::PAPER;
        let src = mesh.node_at(Coord { x: 3, y: 3 });
        let targets = broadcast_targets(mesh, src);
        let msgs = split_multicast(mesh, src, &targets);
        assert_eq!(msgs.len(), 16, "paper: up to 16 multicast messages");
        all_covered(&msgs, &targets);
    }

    #[test]
    fn top_row_broadcast_uses_8_messages() {
        let mesh = Mesh::PAPER;
        let src = mesh.node_at(Coord { x: 3, y: 0 });
        let targets = broadcast_targets(mesh, src);
        let msgs = split_multicast(mesh, src, &targets);
        assert_eq!(msgs.len(), 8, "paper: eight if on the top row");
        all_covered(&msgs, &targets);
    }

    #[test]
    fn bottom_row_broadcast_uses_8_messages() {
        let mesh = Mesh::PAPER;
        let src = mesh.node_at(Coord { x: 5, y: 7 });
        let targets = broadcast_targets(mesh, src);
        let msgs = split_multicast(mesh, src, &targets);
        assert_eq!(msgs.len(), 8);
        all_covered(&msgs, &targets);
    }

    #[test]
    fn corner_broadcast_uses_8_messages() {
        let mesh = Mesh::PAPER;
        let src = NodeId(0);
        let targets = broadcast_targets(mesh, src);
        let msgs = split_multicast(mesh, src, &targets);
        assert_eq!(msgs.len(), 8);
        all_covered(&msgs, &targets);
    }

    #[test]
    fn message_order_is_monotone_along_column() {
        let mesh = Mesh::PAPER;
        let src = mesh.node_at(Coord { x: 3, y: 3 });
        for msg in split_multicast(mesh, src, &broadcast_targets(mesh, src)) {
            let ys: Vec<u16> = msg.iter().map(|&n| mesh.coord(n).y).collect();
            let ascending = ys.windows(2).all(|w| w[0] <= w[1]);
            let descending = ys.windows(2).all(|w| w[0] >= w[1]);
            assert!(ascending || descending, "non-monotone column order {ys:?}");
            // All in one column.
            let xs: Vec<u16> = msg.iter().map(|&n| mesh.coord(n).x).collect();
            assert!(xs.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn subset_multicast_only_covers_requested() {
        let mesh = Mesh::PAPER;
        let src = NodeId(0);
        let targets = vec![NodeId(1), NodeId(9), NodeId(57)];
        let msgs = split_multicast(mesh, src, &targets);
        all_covered(&msgs, &targets);
        assert!(msgs.len() <= 3);
    }

    #[test]
    fn source_excluded() {
        let mesh = Mesh::PAPER;
        let msgs = split_multicast(mesh, NodeId(5), &[NodeId(5)]);
        assert!(msgs.is_empty());
    }

    #[test]
    fn plans_build_from_every_broadcast_message() {
        // The ordering contract: every message must build a valid plan
        // (no U-turns) from the source.
        let mesh = Mesh::PAPER;
        for src in mesh.iter_nodes() {
            let targets = broadcast_targets(mesh, src);
            for msg in split_multicast(mesh, src, &targets) {
                let plan = crate::plan::Plan::build(mesh, src, &msg, true, 14);
                // Covered targets within one segment == message targets
                // when the segment is long enough.
                if plan.hops() <= 14 && !plan.ends_at_interim() {
                    assert_eq!(plan.deliveries().len(), msg.len());
                }
            }
        }
    }
}
