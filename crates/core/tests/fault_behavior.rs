//! Behavioural tests of the fault-injection subsystem: detours around
//! dead links, terminal give-up at stuck routers, transient recovery,
//! ECC on corrupted deliveries, laser droop, and the guarantee that an
//! empty fault plan has zero effect.

use phastlane_core::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_netsim::fault::FaultPlan;
use phastlane_netsim::geometry::Coord;
use phastlane_netsim::harness::{run_trace, Dep, MsgId, Trace, TraceMessage, TraceOptions};
use phastlane_netsim::packet::PacketKind;
use phastlane_netsim::{DestSet, Mesh, Network, NewPacket, NodeId};

fn run_until_idle(net: &mut PhastlaneNetwork, max_cycles: u64) {
    let start = net.cycle();
    while net.in_flight() > 0 {
        assert!(
            net.cycle() - start < max_cycles,
            "network did not drain within {max_cycles} cycles"
        );
        net.step();
    }
}

fn plan(text: &str) -> FaultPlan {
    FaultPlan::parse(text).expect("valid fault plan")
}

#[test]
fn detour_around_dead_link_delivers() {
    // XY routing from (0,0) to (2,2) wants to leave n0 eastward; that
    // link is dead, so the router detours through the Y dimension (which
    // still makes progress) and the packet arrives anyway.
    let mesh = Mesh::PAPER;
    let at = |x, y| mesh.node_at(Coord { x, y });
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.set_fault_plan(plan("link n0 east"), 1);
    net.inject(NewPacket::unicast(at(0, 0), at(2, 2))).unwrap();
    run_until_idle(&mut net, 100);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 1, "the detour still delivers");
    assert_eq!(d[0].dest, at(2, 2));
    let stats = net.stats();
    assert!(stats.rerouted >= 1, "the dead link forced a reroute");
    assert_eq!(stats.undeliverable, 0);
}

#[test]
fn stuck_destination_router_becomes_undeliverable() {
    // The destination router is stuck and sits in the same row as the
    // source, so no detour makes progress: the launcher backs off until
    // the retry cap declares the packet undeliverable. The network must
    // reach quiescence rather than spin forever.
    let mesh = Mesh::PAPER;
    let at = |x, y| mesh.node_at(Coord { x, y });
    let mut cfg = PhastlaneConfig::optical4();
    cfg.retry_limit = 3;
    let mut net = PhastlaneNetwork::new(cfg);
    let dest = at(1, 1);
    net.set_fault_plan(plan(&format!("router n{}", dest.0)), 1);
    let id = net.inject(NewPacket::unicast(at(0, 1), dest)).unwrap();
    run_until_idle(&mut net, 1_000);
    assert_eq!(net.drain_deliveries().len(), 0);
    let failures = net.drain_failures();
    assert_eq!(failures.len(), 1, "exactly one terminal failure");
    assert_eq!(failures[0].packet, id);
    assert_eq!(failures[0].dest, dest);
    let stats = net.stats();
    assert_eq!(stats.undeliverable, 1);
    assert!(stats.retry_exhausted >= 1);
}

#[test]
fn transient_fault_clears_and_delivery_resumes() {
    // A same-row link fault leaves no productive detour, so the packet
    // stalls in place — but the fault is transient, and once it clears
    // the packet goes through on the original route.
    let mesh = Mesh::PAPER;
    let at = |x, y| mesh.node_at(Coord { x, y });
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.set_fault_plan(plan("link n0 east @0 +60"), 1);
    net.inject(NewPacket::unicast(at(0, 0), at(4, 0))).unwrap();
    run_until_idle(&mut net, 2_000);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 1, "delivery resumes after the fault clears");
    assert!(
        d[0].latency() >= 60,
        "the packet waited out the fault window (latency {})",
        d[0].latency()
    );
    assert_eq!(net.stats().undeliverable, 0);
}

#[test]
fn empty_plan_is_zero_effect() {
    // Installing an empty fault plan (with a fault seed) must not change
    // a single delivery or statistic relative to a plain run.
    let run = |fault: bool| {
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        if fault {
            net.set_fault_plan(FaultPlan::new(), 12345);
        }
        for i in 0..64u16 {
            let dst = NodeId((i * 23 + 7) % 64);
            if NodeId(i) != dst {
                net.inject(NewPacket::unicast(NodeId(i), dst)).unwrap();
            }
        }
        run_until_idle(&mut net, 2_000);
        let d: Vec<(u64, u16, u64)> = net
            .drain_deliveries()
            .iter()
            .map(|x| (x.packet.0, x.dest.0, x.delivered_cycle))
            .collect();
        (d, net.cycle(), net.stats().dropped, net.stats().delivered)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn bit_errors_exercise_ecc_and_still_deliver() {
    // Every optical delivery rolls a bit error at rate 1.0. Single upsets
    // are corrected in place; double upsets reject the delivery and fall
    // back to a buffered electrical copy — either way nothing is lost.
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.set_fault_plan(plan("biterr 1.0"), 42);
    let mut injected = 0;
    for i in 0..64u16 {
        let dst = NodeId((i * 23 + 7) % 64);
        if NodeId(i) != dst && net.inject(NewPacket::unicast(NodeId(i), dst)).is_some() {
            injected += 1;
        }
    }
    run_until_idle(&mut net, 5_000);
    assert_eq!(net.drain_deliveries().len(), injected);
    let stats = net.stats();
    assert!(stats.ecc_corrected > 0, "single upsets were corrected");
    assert!(
        stats.ecc_uncorrectable > 0,
        "some double upsets forced electrical redelivery"
    );
    assert_eq!(stats.undeliverable, 0);
}

#[test]
fn laser_droop_shrinks_optical_reach() {
    // Halving the per-router crossing efficiency blows the optical loss
    // budget at four hops, so the wavefront covers fewer routers per
    // cycle and the corner-to-corner trip needs more segments.
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.set_fault_plan(plan("droop 0.5"), 1);
    net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
        .unwrap();
    run_until_idle(&mut net, 100);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 1);
    assert!(
        d[0].latency() > 4,
        "degraded reach needs more segments than the nominal 4 (got {})",
        d[0].latency()
    );
    assert_eq!(net.stats().undeliverable, 0);
}

#[test]
fn saturated_replay_with_stuck_router_terminates() {
    // A dependency chain funnelled into a permanently stuck router can
    // never deliver — the replay must terminate through the retry cap
    // (failures resolve the dependencies waiting on them) instead of
    // spinning to the cycle limit.
    let mut cfg = PhastlaneConfig::optical4();
    cfg.retry_limit = 3;
    let mut net = PhastlaneNetwork::new(cfg);
    net.set_fault_plan(plan("router n0"), 1);
    let msg = |id: u32, src: u16, deps: Vec<Dep>| TraceMessage {
        id: MsgId(id),
        src: NodeId(src),
        dests: DestSet::Unicast(NodeId(0)),
        kind: PacketKind::ReadRequest,
        earliest: 0,
        deps,
        think: 0,
    };
    let trace = Trace {
        messages: vec![
            msg(0, 5, vec![]),
            msg(1, 9, vec![Dep::full(MsgId(0))]),
            msg(2, 13, vec![Dep::at(MsgId(1), NodeId(0))]),
        ],
    };
    let r = run_trace(
        &mut net,
        &trace,
        TraceOptions {
            max_cycles: 100_000,
        },
    );
    assert!(!r.timed_out, "the retry cap must end the replay");
    assert_eq!(r.completed, 3, "every message resolved");
    assert_eq!(r.undeliverable, 3, "all terminally failed");
    assert_eq!(net.in_flight(), 0, "network reached quiescence");
}
