//! Figure 6: maximum number of hops a packet can travel in a single
//! 4 GHz cycle, for each number of wavelengths and scaling assumption.

use phastlane_bench::print_row;
use phastlane_photonics::delay::figure6_series;
use phastlane_photonics::units::TechNode;

fn main() {
    println!("Figure 6: max hops per 4GHz cycle at 16nm\n");
    let widths = [6, 14, 6];
    print_row(&["wdm".into(), "scaling".into(), "hops".into()], &widths);
    for (wdm, scaling, hops) in figure6_series(TechNode::NM16) {
        print_row(
            &[
                wdm.payload_wdm.to_string(),
                scaling.to_string(),
                hops.to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper: 8 / 5 / 4 hops for optimistic / average / pessimistic,");
    println!("independent of the number of wavelengths.");
}
