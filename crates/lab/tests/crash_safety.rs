//! End-to-end crash-safety gates: a lab must survive panicking jobs,
//! livelocked networks, and being killed mid-run — and a resumed run
//! must reproduce the uninterrupted canonical report byte-for-byte.

use phastlane_lab::journal::{self, Journal};
use phastlane_lab::report::JobOutcome;
use phastlane_lab::scheduler::{run_lab_opts, run_lab_with, RunOptions};
use phastlane_lab::{run_lab, LabSpec};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phastlane-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const SPEC: &str = "name crash-it\nmesh 4x4\nseed 11\nnets optical4 electrical2\n\
                    patterns uniform transpose\nrates 0.02 0.04\n\
                    warmup 100\nmeasure 300\ndrain 1000\n";

#[test]
fn interrupted_run_resumes_to_a_byte_identical_report() {
    let dir = scratch("resume");
    let spec = LabSpec::parse(SPEC).unwrap();
    let reference = run_lab(&spec, 2)
        .unwrap()
        .canonical_json()
        .to_string_pretty();

    // Full journaled run stands in for the pre-crash process; we then
    // replay truncated prefixes of its journal — every possible "the
    // process died after N jobs" point, including torn mid-line tails.
    let jpath = dir.join("run.ndjson");
    let journal = Journal::create(&jpath, &spec).unwrap();
    run_lab_opts(
        &spec,
        RunOptions {
            workers: 2,
            journal: Some(&journal),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(journal.write_errors(), 0);
    drop(journal);

    let full = std::fs::read_to_string(&jpath).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 9, "header + 8 records: {full}");

    for keep in [0usize, 1, 4, 8] {
        let mut partial: String = lines[..=keep].join("\n");
        partial.push('\n');
        if keep < 8 {
            // And a torn tail: half of the next record.
            partial.push_str(&lines[keep + 1][..lines[keep + 1].len() / 2]);
        }
        let ppath = dir.join(format!("partial-{keep}.ndjson"));
        std::fs::write(&ppath, &partial).unwrap();

        let recovered = journal::load(&ppath).unwrap();
        assert_eq!(recovered.spec, spec.encode());
        assert_eq!(recovered.records.len(), keep, "kept {keep}");
        let resumed = run_lab_opts(
            &spec,
            RunOptions {
                workers: 2,
                resumed: recovered.records,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            resumed.canonical_json().to_string_pretty(),
            reference,
            "resume after {keep} finished jobs must be byte-identical"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sabotaged_jobs_end_terminal_and_leave_the_rest_untouched() {
    // 4 jobs; job 1 panics, job 2 livelocks. The run must complete with
    // terminal outcomes for both and healthy records for the others.
    let healthy = LabSpec::parse(SPEC).unwrap();
    let mut spec = healthy.clone();
    spec.retry_backoff_ms = 1;
    spec.sabotage = vec![
        phastlane_lab::spec::Sabotage::parse("panic@1").unwrap(),
        phastlane_lab::spec::Sabotage::parse("livelock@2").unwrap(),
    ];

    let report = run_lab_with(&spec, 2, None).expect("sabotaged lab completes");
    assert_eq!(report.jobs.len(), 8);
    match &report.jobs[1].outcome {
        JobOutcome::Panicked { message } => assert!(message.contains("job 1"), "{message}"),
        other => panic!("job 1 should be Panicked, got {other:?}"),
    }
    match &report.jobs[2].outcome {
        JobOutcome::TimedOut { reason } => assert!(reason.starts_with("livelock"), "{reason}"),
        other => panic!("job 2 should be TimedOut, got {other:?}"),
    }

    // Every non-sabotaged record matches the healthy run bit-for-bit.
    let clean = run_lab(&healthy, 1).unwrap();
    for i in [0usize, 3, 4, 5, 6, 7] {
        assert!(report.jobs[i].outcome.is_completed(), "job {i}");
        assert_eq!(
            report.jobs[i].latency, clean.jobs[i].latency,
            "sabotage of jobs 1/2 must not perturb job {i}"
        );
        assert_eq!(report.jobs[i].energy_pj, clean.jobs[i].energy_pj);
    }

    // And the sabotaged run itself is reproducible: same spec, same
    // outcomes, same canonical bytes.
    let again = run_lab_with(&spec, 1, None).unwrap();
    assert_eq!(
        report.canonical_json().to_string_pretty(),
        again.canonical_json().to_string_pretty(),
        "terminal outcomes are part of the deterministic record"
    );
}

#[test]
fn cycle_budget_interrupts_are_deterministic_terminal_outcomes() {
    let mut spec = LabSpec::parse(SPEC).unwrap();
    // Tighter than warmup+measure+drain: every job is interrupted.
    spec.cycle_budget = Some(200);
    let a = run_lab_with(&spec, 2, None).unwrap();
    let b = run_lab_with(&spec, 1, None).unwrap();
    for j in &a.jobs {
        match &j.outcome {
            JobOutcome::TimedOut { reason } => {
                assert!(reason.contains("cycle budget"), "{reason}");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(j.timed_out);
        assert_eq!(j.stable, None, "interrupted jobs abstain from stability");
    }
    assert_eq!(
        a.canonical_json().to_string_pretty(),
        b.canonical_json().to_string_pretty(),
        "cycle-budget interrupts land on the same cycle regardless of workers"
    );
}

#[test]
fn resumed_records_with_bogus_indices_are_rejected() {
    let spec = LabSpec::parse(SPEC).unwrap();
    let report = run_lab(&spec, 1).unwrap();
    let mut bad = report.jobs[0].clone();
    bad.index = 99;
    let err = run_lab_opts(
        &spec,
        RunOptions {
            workers: 1,
            resumed: vec![bad],
            ..RunOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("job 99"), "{err}");
}
