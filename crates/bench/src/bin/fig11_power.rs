//! Figure 11: average network power for every configuration over the
//! SPLASH2 benchmarks.
//!
//! Usage: `cargo run --release -p phastlane-bench --bin fig11_power
//! [--quick]`

use phastlane_bench::{print_row, quick_flag, run_on, scaled_profile, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    let scale = if quick_flag() { 0.1 } else { 1.0 };
    let configs = Config::FIGURE10;
    let widths: Vec<usize> = std::iter::once(14)
        .chain(configs.iter().map(|c| c.label().len().max(8)))
        .collect();

    println!("Figure 11: average network power in mW (lower is better; scale = {scale})\n");
    let mut header = vec!["benchmark".to_string()];
    header.extend(configs.iter().map(|c| c.label().to_string()));
    print_row(&header, &widths);

    let mut sums = vec![0.0f64; configs.len()];
    let mut count = 0usize;
    for profile in splash2::all_benchmarks() {
        let profile = scaled_profile(&profile, scale);
        let trace = generate_trace(Mesh::PAPER, &profile);
        let mut cells = vec![profile.name.to_string()];
        let mut electrical3_mw = None;
        let mut optical4_mw = None;
        for (i, &cfg) in configs.iter().enumerate() {
            let out = run_on(cfg, &trace);
            let mw = out.average_power_mw();
            sums[i] += mw;
            if cfg == Config::Electrical3 {
                electrical3_mw = Some(mw);
            }
            if cfg == Config::Optical4 {
                optical4_mw = Some(mw);
            }
            cells.push(format!("{mw:.1}"));
        }
        count += 1;
        print_row(&cells, &widths);
        if let (Some(e), Some(o)) = (electrical3_mw, optical4_mw) {
            let saving = 100.0 * (1.0 - o / e);
            println!("    -> Optical4 uses {saving:.0}% less power than Electrical3");
        }
    }

    let mut cells = vec!["mean".to_string()];
    for s in &sums {
        cells.push(format!("{:.1}", s / count as f64));
    }
    println!();
    print_row(&cells, &widths);
}
