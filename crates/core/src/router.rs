//! Per-router electrical state: the five buffer queues (four input ports
//! plus the local node) and the rotating-priority arbiter (§2.1.1).

use crate::config::BufferDepth;
use phastlane_netsim::geometry::{Direction, Port};
use phastlane_netsim::packet::{PacketId, PacketKind};
use phastlane_netsim::NodeId;
use std::collections::VecDeque;

/// Immutable identity of a packet message as it moves through the
/// network. A multi-destination packet becomes several messages (one per
/// multicast column message), all sharing the same [`PacketId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCore {
    /// The network-assigned packet id.
    pub id: PacketId,
    /// Originating node.
    pub src: NodeId,
    /// Operation kind.
    pub kind: PacketKind,
    /// Whether this message taps en-route targets (multicast).
    pub multicast: bool,
    /// Cycle the packet entered the source NIC.
    pub injected_cycle: u64,
}

/// One electrically-buffered message awaiting (re)launch.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Unique id for matching launches to drop signals.
    pub uid: u64,
    /// Packet identity.
    pub core: PacketCore,
    /// Remaining delivery targets, in path order.
    pub targets: VecDeque<NodeId>,
    /// Earliest cycle this entry may launch (backoff after drops).
    pub ready_at: u64,
    /// Consecutive drops suffered by this entry (drives backoff).
    pub attempts: u32,
}

/// The electrical side of one Phastlane router.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Waiting entries per port (N, S, E, W, Local order per
    /// [`Port::index`]).
    queues: [VecDeque<Entry>; 5],
    /// Entries launched this cycle, awaiting the (absence of a) drop
    /// signal; they still occupy their queue's buffer space.
    launched: Vec<(usize, Entry)>,
    /// Rotating-priority pointer over the five queues.
    rr: usize,
    depth: BufferDepth,
}

impl RouterState {
    /// Creates an empty router with the given buffer depth.
    pub fn new(depth: BufferDepth) -> Self {
        RouterState {
            queues: Default::default(),
            launched: Vec::new(),
            rr: 0,
            depth,
        }
    }

    /// Occupancy of one queue, counting launched-but-unconfirmed entries.
    pub fn occupancy(&self, queue: usize) -> usize {
        self.queues[queue].len() + self.launched.iter().filter(|(q, _)| *q == queue).count()
    }

    /// Total occupancy across all queues, counting launched entries.
    pub fn total_occupancy(&self) -> usize {
        self.waiting() + self.launched.len()
    }

    /// Whether `queue` can take another entry (per-queue depth for the
    /// paper's static partition, router total for a shared pool).
    pub fn has_room(&self, queue: usize) -> bool {
        self.depth
            .has_room_with_total(self.occupancy(queue), self.total_occupancy())
    }

    /// Queue index for a packet arriving from `entry` (the input-port
    /// buffer it is received into).
    pub fn input_queue(entry: Direction) -> usize {
        Port::Dir(entry).index()
    }

    /// Queue index of the local-node buffer.
    pub fn local_queue() -> usize {
        Port::Local.index()
    }

    /// Pushes an entry onto a queue. The caller must have checked
    /// [`has_room`](Self::has_room) (infinite depths always have room).
    pub fn push(&mut self, queue: usize, entry: Entry) {
        self.queues[queue].push_back(entry);
    }

    /// Head of a queue, if any.
    pub fn head(&self, queue: usize) -> Option<&Entry> {
        self.queues[queue].front()
    }

    /// Mutable head of a queue (used to back off an entry in place when
    /// every usable output is faulted).
    pub fn head_mut(&mut self, queue: usize) -> Option<&mut Entry> {
        self.queues[queue].front_mut()
    }

    /// Removes and returns the head of a queue *without* marking it
    /// launched (used when the network terminally gives up on an entry).
    pub fn pop_head(&mut self, queue: usize) -> Entry {
        self.queues[queue]
            .pop_front()
            .expect("pop_head on empty queue")
    }

    /// Removes and returns the head of a queue, marking it launched.
    pub fn launch_head(&mut self, queue: usize) -> &Entry {
        let e = self.queues[queue]
            .pop_front()
            .expect("launch_head on empty queue");
        self.launched.push((queue, e));
        &self.launched.last().expect("just pushed").1
    }

    /// Takes all launched entries (called at the start of the next cycle
    /// to confirm or revert them).
    pub fn take_launched(&mut self) -> Vec<(usize, Entry)> {
        std::mem::take(&mut self.launched)
    }

    /// The queue visit order for this cycle's rotating-priority
    /// arbitration, then advances the pointer.
    pub fn rotate(&mut self) -> [usize; 5] {
        let start = self.rr;
        self.rr = (self.rr + 1) % 5;
        let mut order = [0usize; 5];
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = (start + i) % 5;
        }
        order
    }

    /// Total waiting entries across all queues (excludes launched).
    pub fn waiting(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Iterates waiting entries of one queue.
    pub fn iter_queue(&self, queue: usize) -> impl Iterator<Item = &Entry> {
        self.queues[queue].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(uid: u64) -> Entry {
        Entry {
            uid,
            core: PacketCore {
                id: PacketId(uid),
                src: NodeId(0),
                kind: PacketKind::Data,
                multicast: false,
                injected_cycle: 0,
            },
            targets: [NodeId(1)].into_iter().collect(),
            ready_at: 0,
            attempts: 0,
        }
    }

    #[test]
    fn occupancy_counts_launched() {
        let mut r = RouterState::new(BufferDepth::Finite(2));
        r.push(0, entry(1));
        r.push(0, entry(2));
        assert!(!r.has_room(0));
        r.launch_head(0);
        // Launched entry still occupies its slot.
        assert_eq!(r.occupancy(0), 2);
        assert!(!r.has_room(0));
        let launched = r.take_launched();
        assert_eq!(launched.len(), 1);
        assert_eq!(r.occupancy(0), 1);
        assert!(r.has_room(0));
    }

    #[test]
    fn rotation_cycles_through_all_queues() {
        let mut r = RouterState::new(BufferDepth::Infinite);
        assert_eq!(r.rotate(), [0, 1, 2, 3, 4]);
        assert_eq!(r.rotate(), [1, 2, 3, 4, 0]);
        for _ in 0..3 {
            r.rotate();
        }
        assert_eq!(r.rotate(), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_indices() {
        assert_eq!(RouterState::input_queue(Direction::North), 0);
        assert_eq!(RouterState::input_queue(Direction::West), 3);
        assert_eq!(RouterState::local_queue(), 4);
    }

    #[test]
    fn infinite_depth_never_full() {
        let mut r = RouterState::new(BufferDepth::Infinite);
        for i in 0..1000 {
            assert!(r.has_room(2));
            r.push(2, entry(i));
        }
        assert_eq!(r.waiting(), 1000);
    }

    #[test]
    #[should_panic(expected = "empty queue")]
    fn launch_from_empty_panics() {
        let mut r = RouterState::new(BufferDepth::Infinite);
        r.launch_head(1);
    }
}
