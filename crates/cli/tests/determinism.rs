//! End-to-end determinism: the same seeded sweep, run twice through the
//! real CLI command path, must export byte-identical trace and metrics
//! files. This is the contract that makes `--trace-out` diffs usable
//! for regression hunting — any wall-clock or iteration-order leak
//! into the exports breaks it.

use phastlane_cli::args::Parsed;
use phastlane_cli::commands::dispatch;

fn parse(words: &[String]) -> Parsed {
    Parsed::parse(words.iter().cloned()).expect("args parse")
}

/// Runs a 4x4 sweep exporting trace + metrics into `dir`, returning the
/// raw bytes of both files.
fn run_sweep_once(dir: &std::path::Path, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let trace = dir.join(format!("trace-{seed}.json"));
    let metrics = dir.join(format!("metrics-{seed}.json"));
    let args: Vec<String> = [
        "sweep",
        "--mesh",
        "4x4",
        "--net",
        "optical4",
        "--pattern",
        "transpose",
        "--rate",
        "0.08",
        "--seed",
        &seed.to_string(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--sample-interval",
        "64",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = dispatch(&parse(&args)).expect("sweep runs");
    assert!(out.contains("trace:"), "sweep output mentions trace: {out}");
    let t = std::fs::read(&trace).expect("trace file written");
    let m = std::fs::read(&metrics).expect("metrics file written");
    (t, m)
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("phastlane-determinism-{name}"));
    // Recreate from scratch so stale files from a prior run can't mask
    // a missing write.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn seeded_sweep_exports_are_byte_identical() {
    let dir = scratch_dir("repeat");
    let (t1, m1) = run_sweep_once(&dir, 42);
    // Overwrite with a second run of the identical command line.
    let (t2, m2) = run_sweep_once(&dir, 42);
    assert!(!t1.is_empty() && !m1.is_empty());
    assert_eq!(t1, t2, "trace export differs between identical runs");
    assert_eq!(m1, m2, "metrics export differs between identical runs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_seeds_diverge() {
    // Guards against the degenerate way to pass the test above: a seed
    // that is parsed but never actually fed to the traffic source.
    let dir = scratch_dir("diverge");
    let (t1, _) = run_sweep_once(&dir, 1);
    let (t2, _) = run_sweep_once(&dir, 2);
    assert_ne!(t1, t2, "trace export ignores the seed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs a faulted 4x4 sweep (random fault plan from `fault_seed`) and
/// returns the raw trace + metrics export bytes.
fn run_faulted_once(dir: &std::path::Path, tag: &str, fault_seed: u64) -> (Vec<u8>, Vec<u8>) {
    let trace = dir.join(format!("trace-{tag}.json"));
    let metrics = dir.join(format!("metrics-{tag}.json"));
    let args: Vec<String> = [
        "sweep",
        "--mesh",
        "4x4",
        "--net",
        "optical4",
        "--pattern",
        "uniform",
        "--rate",
        "0.05",
        "--seed",
        "7",
        "--fault-rate",
        "0.3",
        "--fault-seed",
        &fault_seed.to_string(),
        "--retry-limit",
        "20",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--sample-interval",
        "64",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    dispatch(&parse(&args)).expect("faulted sweep runs");
    let t = std::fs::read(&trace).expect("trace file written");
    let m = std::fs::read(&metrics).expect("metrics file written");
    (t, m)
}

#[test]
fn seeded_fault_runs_are_byte_identical() {
    // Fault injection adds its own RNG stream (random plan generation,
    // stall backoff, bit-error rolls); none of it may leak wall-clock or
    // ordering nondeterminism into the exports.
    let dir = scratch_dir("fault-repeat");
    let (t1, m1) = run_faulted_once(&dir, "a", 3);
    let (t2, m2) = run_faulted_once(&dir, "b", 3);
    assert!(!t1.is_empty() && !m1.is_empty());
    assert_eq!(
        t1, t2,
        "faulted trace export differs between identical runs"
    );
    assert_eq!(
        m1, m2,
        "faulted metrics export differs between identical runs"
    );

    // The fault machinery must actually have fired, and its new event
    // kinds must round-trip through the export.
    let text = String::from_utf8(t1.clone()).expect("trace export is utf-8");
    assert!(
        text.contains("fault_injected"),
        "faulted trace records fault injections"
    );
    assert!(
        text.contains("fault_reroute") || text.contains("fault_stall"),
        "faulted trace records degraded routing activity"
    );

    // And the fault seed must matter.
    let (t3, _) = run_faulted_once(&dir, "c", 4);
    assert_ne!(t1, t3, "trace export ignores the fault seed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `lab run` on `spec_path` with `workers` threads and returns the
/// raw bytes of the canonical report export.
fn run_lab_once(dir: &std::path::Path, spec_path: &str, workers: usize) -> Vec<u8> {
    let report = dir.join(format!("report-w{workers}.json"));
    let args: Vec<String> = [
        "lab",
        "run",
        spec_path,
        "--workers",
        &workers.to_string(),
        "--report-out",
        report.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = dispatch(&parse(&args)).expect("lab run succeeds");
    assert!(out.contains("speedup"), "lab output reports perf: {out}");
    std::fs::read(&report).expect("report file written")
}

/// Runs a chaos soak with the flight recorder attached and returns the
/// raw bytes of the per-intensity journey dump.
fn run_flight_once(dir: &std::path::Path, tag: &str, seed: u64) -> Vec<u8> {
    let flight = dir.join(format!("flight-{tag}.json"));
    let args: Vec<String> = [
        "chaos",
        "--mesh",
        "4x4",
        "--net",
        "optical4",
        "--intensities",
        "0.25",
        "--seed",
        &seed.to_string(),
        "--fault-seed",
        "3",
        "--flight-recorder",
        flight.to_str().unwrap(),
        "--flight-sample",
        "16",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = dispatch(&parse(&args)).expect("chaos runs");
    assert!(
        out.contains("flight recorder:"),
        "chaos output mentions the dump: {out}"
    );
    std::fs::read(&flight).expect("flight dump written")
}

#[test]
fn flight_recorder_dump_is_byte_identical_across_runs() {
    // The recorder samples by a pure hash of (seed, packet id) and dumps
    // journeys sorted by id — nothing about wall clock, HashMap ordering,
    // or eviction timing may leak into the export.
    let dir = scratch_dir("flight");
    let d1 = run_flight_once(&dir, "a", 7);
    let d2 = run_flight_once(&dir, "b", 7);
    assert!(!d1.is_empty());
    assert_eq!(d1, d2, "flight dump differs between identical runs");

    let text = String::from_utf8(d1.clone()).expect("dump is utf-8");
    assert!(text.contains("\"journeys\""), "{text}");
    assert!(
        text.contains("\"sampled\": true") || text.contains("\"undeliverable\": true"),
        "dump holds sampled or pinned-undeliverable journeys: {text}"
    );

    // The sampling seed must matter.
    let d3 = run_flight_once(&dir, "c", 8);
    assert_ne!(d1, d3, "flight dump ignores the sampling seed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lab_report_is_byte_identical_across_worker_counts() {
    // The lab's whole determinism contract: per-job seeds are derived
    // from the spec, never from thread scheduling, and the canonical
    // report contains no wall-clock data — so a parallel run must
    // export the very same bytes as a serial one. An 8-point spec over
    // two network families (with a faulted lane) gives the worker pool
    // real interleaving to get wrong.
    let dir = scratch_dir("lab-workers");
    let spec = dir.join("matrix.lab");
    std::fs::write(
        &spec,
        "name workers-test\nmesh 4x4\nseed 9\nnets optical4 electrical2\n\
         patterns uniform transpose\nrates 0.02 0.05\nintensities 0.0 0.2\n\
         warmup 100\nmeasure 300\ndrain 2000\n",
    )
    .expect("spec written");
    let spec_path = spec.to_str().unwrap();
    let serial = run_lab_once(&dir, spec_path, 1);
    let parallel = run_lab_once(&dir, spec_path, 8);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "canonical lab report differs between 1 and 8 workers"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
