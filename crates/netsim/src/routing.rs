//! Dimension-order (XY) routing, used by both networks (Tables 1 and 2).

use crate::geometry::{Direction, Mesh, NodeId};

/// Returns the XY dimension-order direction sequence from `src` to `dst`:
/// all X (east/west) hops first, then all Y (north/south) hops.
///
/// The result is empty when `src == dst`.
///
/// # Panics
///
/// Panics if either node is outside the mesh.
pub fn xy_route(mesh: Mesh, src: NodeId, dst: NodeId) -> Vec<Direction> {
    let mut dirs = Vec::with_capacity(mesh.distance(src, dst) as usize);
    xy_route_into(mesh, src, dst, &mut dirs);
    dirs
}

/// Appends the XY route from `src` to `dst` onto `dirs` without
/// allocating (the hot path reuses one scratch buffer across legs and
/// cycles).
///
/// # Panics
///
/// Panics if either node is outside the mesh.
pub fn xy_route_into(mesh: Mesh, src: NodeId, dst: NodeId, dirs: &mut Vec<Direction>) {
    let (a, b) = (mesh.coord(src), mesh.coord(dst));
    let (dx, dy) = (
        i32::from(b.x) - i32::from(a.x),
        i32::from(b.y) - i32::from(a.y),
    );
    let x_dir = if dx > 0 {
        Direction::East
    } else {
        Direction::West
    };
    for _ in 0..dx.unsigned_abs() {
        dirs.push(x_dir);
    }
    let y_dir = if dy > 0 {
        Direction::South
    } else {
        Direction::North
    };
    for _ in 0..dy.unsigned_abs() {
        dirs.push(y_dir);
    }
}

/// The first hop direction under XY routing, or `None` if already at the
/// destination.
pub fn xy_first_hop(mesh: Mesh, src: NodeId, dst: NodeId) -> Option<Direction> {
    let (a, b) = (mesh.coord(src), mesh.coord(dst));
    if b.x > a.x {
        Some(Direction::East)
    } else if b.x < a.x {
        Some(Direction::West)
    } else if b.y > a.y {
        Some(Direction::South)
    } else if b.y < a.y {
        Some(Direction::North)
    } else {
        None
    }
}

/// The node sequence visited by the XY route, *excluding* `src` and
/// including `dst`.
pub fn xy_path_nodes(mesh: Mesh, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut nodes = Vec::new();
    let mut cur = src;
    for dir in xy_route(mesh, src, dst) {
        cur = mesh
            .neighbor(cur, dir)
            .expect("XY route stays inside the mesh");
        nodes.push(cur);
    }
    nodes
}

/// How a packet leaves a router relative to how it entered: the Phastlane
/// control fields (Straight / Left / Right / Local) are predecoded from
/// this classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Turn {
    /// Continue on the same dimension and sense.
    Straight,
    /// Turn left relative to travel direction.
    Left,
    /// Turn right relative to travel direction.
    Right,
}

/// Classifies the turn from incoming travel direction `from` to outgoing
/// direction `to`.
///
/// # Panics
///
/// Panics on a U-turn (`to == from.opposite()`), which dimension-order
/// routing never produces.
pub fn classify_turn(from: Direction, to: Direction) -> Turn {
    use Direction::*;
    if from == to {
        return Turn::Straight;
    }
    assert!(
        to != from.opposite(),
        "U-turn {from}->{to} is not a valid XY route step"
    );
    // `from` is the direction of travel. Facing that way, determine the
    // sense of the turn.
    match (from, to) {
        (North, East) | (East, South) | (South, West) | (West, North) => Turn::Right,
        (North, West) | (West, South) | (South, East) | (East, North) => Turn::Left,
        _ => unreachable!("all non-straight, non-uturn cases covered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    #[test]
    fn route_is_x_then_y() {
        let m = Mesh::PAPER;
        let src = m.node_at(Coord { x: 1, y: 1 });
        let dst = m.node_at(Coord { x: 4, y: 6 });
        let r = xy_route(m, src, dst);
        assert_eq!(
            r,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South,
                Direction::South,
                Direction::South,
                Direction::South,
            ]
        );
    }

    #[test]
    fn route_length_equals_distance() {
        let m = Mesh::PAPER;
        for src in m.iter_nodes() {
            for dst in m.iter_nodes() {
                assert_eq!(xy_route(m, src, dst).len() as u32, m.distance(src, dst));
            }
        }
    }

    #[test]
    fn route_into_appends() {
        let m = Mesh::PAPER;
        let mut dirs = vec![Direction::North];
        xy_route_into(m, NodeId(0), NodeId(2), &mut dirs);
        assert_eq!(
            dirs,
            vec![Direction::North, Direction::East, Direction::East]
        );
    }

    #[test]
    fn path_nodes_end_at_destination() {
        let m = Mesh::PAPER;
        let path = xy_path_nodes(m, NodeId(0), NodeId(63));
        assert_eq!(path.len(), 14);
        assert_eq!(*path.last().unwrap(), NodeId(63));
    }

    #[test]
    fn first_hop_matches_route() {
        let m = Mesh::PAPER;
        for src in m.iter_nodes() {
            for dst in m.iter_nodes() {
                let route = xy_route(m, src, dst);
                assert_eq!(xy_first_hop(m, src, dst), route.first().copied());
            }
        }
    }

    #[test]
    fn xy_makes_at_most_one_turn() {
        let m = Mesh::PAPER;
        for src in m.iter_nodes() {
            for dst in m.iter_nodes() {
                let r = xy_route(m, src, dst);
                let turns = r
                    .windows(2)
                    .filter(|w| classify_turn(w[0], w[1]) != Turn::Straight)
                    .count();
                assert!(turns <= 1, "{src}->{dst} had {turns} turns");
            }
        }
    }

    #[test]
    fn turn_classification() {
        use Direction::*;
        assert_eq!(classify_turn(North, North), Turn::Straight);
        assert_eq!(classify_turn(North, East), Turn::Right);
        assert_eq!(classify_turn(North, West), Turn::Left);
        assert_eq!(classify_turn(South, East), Turn::Left);
        assert_eq!(classify_turn(South, West), Turn::Right);
        assert_eq!(classify_turn(East, South), Turn::Right);
        assert_eq!(classify_turn(West, South), Turn::Left);
    }

    #[test]
    #[should_panic(expected = "U-turn")]
    fn uturn_panics() {
        let _ = classify_turn(Direction::North, Direction::South);
    }
}
