//! Diagnostic: primitive operation latencies on both networks.
use phastlane_bench::Config;
use phastlane_netsim::packet::PacketKind;
use phastlane_netsim::{Network, NewPacket, NodeId};

fn run_one(cfg: Config, p: NewPacket) -> (u64, u64) {
    let mut net = cfg.build();
    net.inject(p).unwrap();
    while net.in_flight() > 0 {
        net.step();
        assert!(net.cycle() < 10_000);
    }
    let d = net.drain_deliveries();
    let max = d.iter().map(|x| x.latency()).max().unwrap();
    let avg: u64 = d.iter().map(|x| x.latency()).sum::<u64>() / d.len() as u64;
    (avg, max)
}

fn main() {
    for cfg in [Config::Optical4, Config::Electrical3, Config::Electrical2] {
        let (ba, bm) = run_one(
            cfg,
            NewPacket::broadcast(NodeId(27), PacketKind::ReadRequest),
        );
        let (ua, um) = run_one(cfg, NewPacket::unicast(NodeId(27), NodeId(5)));
        let (ca, cm) = run_one(
            cfg,
            NewPacket::broadcast(NodeId(0), PacketKind::ReadRequest),
        );
        println!("{:12} bcast(center) avg={ba} max={bm}; bcast(corner) avg={ca} max={cm}; unicast avg={ua} max={um}", cfg.label());
    }
}
