//! Tables 1 and 2: the optical network configuration and the baseline
//! electrical router parameters, printed from the defaults the simulators
//! actually use.

use phastlane_core::PhastlaneConfig;
use phastlane_electrical::ElectricalConfig;
use phastlane_photonics::wdm::{CONTROL_BITS, CONTROL_WAVEGUIDES, CONTROL_WDM};

fn main() {
    let o = PhastlaneConfig::optical4();
    println!("Table 1: optical network configuration");
    println!("  Flits per packet            1 (80 bytes)");
    println!("  Packet payload WDM          {}", o.wdm.payload_wdm);
    println!(
        "  Packet payload waveguides   {}",
        o.wdm.payload_waveguides()
    );
    println!("  Routing function            Dimension-Order");
    println!("  Packet control bits         {CONTROL_BITS}");
    println!("  Packet control WDM          {CONTROL_WDM}");
    println!("  Packet control waveguides   {CONTROL_WAVEGUIDES}");
    println!("  Buffer entries in NIC       {}", o.nic_entries);
    println!("  Max hops per cycle          4, 5, or 8");
    println!("  Node transmit arbitration   Rotating Priority");
    println!("  Network path arbitration    Fixed Priority");
    println!();

    let e = ElectricalConfig::electrical3();
    println!("Table 2: baseline electrical router parameters");
    println!("  Flits per packet            1 (80 bytes)");
    println!("  Routing function            Dimension-Order");
    println!("  Number of VCs per port      {}", e.vcs_per_port);
    println!("  Number of entries per VC    {}", e.entries_per_vc);
    println!("  Wait for tail credit        YES");
    println!("  VC allocator                iSLIP");
    println!("  SW allocator                iSLIP");
    println!("  Total router delay          2 or 3 cycles");
    println!("  Input speedup               {}", e.input_speedup);
    println!("  Output speedup              {}", e.output_speedup);
    println!("  Buffer entries in NIC       {}", e.nic_entries);
}
