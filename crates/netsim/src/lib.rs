//! Shared cycle-accurate network-simulation substrate for the Phastlane
//! reproduction.
//!
//! This crate contains everything the optical (`phastlane-core`) and
//! electrical (`phastlane-electrical`) simulators have in common, so that
//! experiments can drive either through one interface:
//!
//! * [`geometry`] — 2D mesh, nodes, directions, ports;
//! * [`routing`] — dimension-order (XY) routing and turn classification;
//! * [`packet`] — single-flit 80-byte packets, destination sets,
//!   deliveries;
//! * [`nic`] — the 50-entry network-interface buffer;
//! * [`ecc`] — SECDED protection for the 64-byte payload;
//! * [`fastmap`] — the deterministic open-addressing map used on the
//!   simulator hot path;
//! * [`fault`] — deterministic fault injection (dead links, stuck
//!   routers, laser droop, bit errors) and terminal delivery failures;
//! * [`mask`] — 256-node bitsets for multicast target tracking;
//! * [`network`] — the [`network::Network`] trait;
//! * [`ideal`] — a contention-free reference network (lower bound and
//!   harness fixture);
//! * [`harness`] — open-loop synthetic runs and dependency-aware trace
//!   replay;
//! * [`sweep`] — injection-rate sweeps and saturation extraction;
//! * [`stats`] — latency/energy accounting;
//! * [`rng`] — the in-tree deterministic PRNG (no external crates);
//! * [`obs`] — the observability layer: event traces, time-series
//!   metrics, structured run reports.
//!
//! # Example
//!
//! Routing a packet across the paper's 8x8 mesh:
//!
//! ```
//! use phastlane_netsim::geometry::{Mesh, NodeId};
//! use phastlane_netsim::routing::xy_route;
//!
//! let mesh = Mesh::PAPER;
//! let route = xy_route(mesh, NodeId(0), NodeId(63));
//! assert_eq!(route.len(), 14); // corner to corner
//! ```

#![warn(missing_docs)]

pub mod ecc;
pub mod fastmap;
pub mod fault;
pub mod geometry;
pub mod harness;
pub mod ideal;
pub mod mask;
pub mod network;
pub mod nic;
pub mod obs;
pub mod packet;
pub mod rng;
pub mod routing;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod watchdog;

pub use fault::{FailedDelivery, Fault, FaultKind, FaultPlan};
pub use geometry::{Direction, Mesh, NodeId, Port};
pub use network::Network;
pub use packet::{Delivery, DestSet, NewPacket, PacketId, PacketKind};
pub use sweep::Saturation;
pub use watchdog::{CancelToken, Interrupt, Watchdog};

// Compile-time `Send` guarantees: everything the `phastlane-lab`
// worker-pool scheduler moves to (or builds on) worker threads must be
// `Send`, and a future `Rc`/raw-pointer refactor must fail right here
// at build time instead of breaking the scheduler. The two concrete
// `Network` impls assert the same in their own crates.
fn _assert_send<T: Send>() {}
const _: fn() = _assert_send::<ideal::IdealNetwork>;
const _: fn() = _assert_send::<fault::FaultPlan>;
const _: fn() = _assert_send::<harness::Trace>;
const _: fn() = _assert_send::<harness::SyntheticResult>;
const _: fn() = _assert_send::<harness::TraceResult>;
const _: fn() = _assert_send::<obs::TraceBuffer>;
const _: fn() = _assert_send::<obs::PhaseProfiler>;
const _: fn() = _assert_send::<obs::PhaseBreakdown>;
const _: fn() = _assert_send::<obs::FlightRecorder>;
const _: fn() = _assert_send::<rng::SimRng>;
const _: fn() = _assert_send::<watchdog::Watchdog>;
// The progress sink is *shared* across worker threads, so it must be
// `Sync` as well.
fn _assert_sync<T: Sync>() {}
const _: fn() = _assert_sync::<obs::EventSink>;
const _: fn() = _assert_send::<obs::EventSink>;
// The cancellation token is shared between the supervisor and every
// worker it guards.
const _: fn() = _assert_sync::<watchdog::CancelToken>;
const _: fn() = _assert_send::<watchdog::CancelToken>;
