//! Static verification of Phastlane network configurations.
//!
//! Everything in this crate runs *before* cycle 0: it reasons about the
//! topology, the routing function, the photonic loss budget, and a
//! fault plan without simulating a single packet. The point is to turn
//! slow dynamic failures (a deadlocked matrix cell, a job that retries
//! to its cap and reports `Undeliverable`, a laser that can no longer
//! close one hop) into fast static verdicts with concrete evidence —
//! a minimal channel-dependency cycle, an exact partitioned pair set,
//! an effective-hop count of zero.
//!
//! Modules:
//!
//! * [`cdg`] — channel-dependency-graph construction and the
//!   Dally–Seitz acyclicity check, with a minimal witness cycle when it
//!   fails.
//! * [`reach`] — per-pair reachability under worst-case faults and the
//!   optical envelope (effective hops under laser droop).
//! * [`lablint`] — `.lab` spec lint and the `lab run --preflight` gate.
//! * [`srclint`] — determinism-hygiene lint over the workspace sources.

#![warn(missing_docs)]

pub mod cdg;
pub mod lablint;
pub mod reach;
pub mod srclint;

pub use cdg::{Cdg, Channel, Walk};
pub use lablint::{lint_spec, preflight, Level, SpecFinding};
pub use reach::{optical_envelope, residual_connectivity, OpticalEnvelope, Residual};
pub use srclint::{scan_workspace, SrcFinding};
