//! Device-level models for the CMOS-compatible nanophotonic components the
//! Phastlane router is built from: waveguides, ring resonators, modulators,
//! and receivers.
//!
//! Parameters marked *calibrated* were chosen so that the paper's §3
//! analyses reproduce (see `DESIGN.md`); the rest are taken directly from
//! the paper or its cited sources.

use crate::scaling::{chain_delays, Scaling};
use crate::units::{Millimeters, Milliwatts, Picoseconds, TechNode};

/// Signal propagation delay in an on-chip silicon waveguide.
///
/// The paper assumes this stays constant at 10.45 ps/mm across technology
/// nodes (Kirman et al.).
pub const WAVEGUIDE_DELAY_PS_PER_MM: f64 = 10.45;

/// An on-chip silicon waveguide segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waveguide {
    /// Physical length of the segment.
    pub length: Millimeters,
}

impl Waveguide {
    /// Creates a waveguide of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is negative.
    pub fn new(length: Millimeters) -> Self {
        assert!(
            length.value() >= 0.0,
            "waveguide length must be non-negative"
        );
        Waveguide { length }
    }

    /// Light propagation delay along this segment.
    pub fn propagation_delay(&self) -> Picoseconds {
        Picoseconds(self.length.value() * WAVEGUIDE_DELAY_PS_PER_MM)
    }

    /// Power transmission through `crossings` perpendicular waveguide
    /// crossings, each with per-crossing efficiency `crossing_efficiency`
    /// (e.g. 0.98 for a 2 % loss per crossing).
    ///
    /// # Panics
    ///
    /// Panics if `crossing_efficiency` is not in `(0, 1]`.
    pub fn crossing_transmission(crossings: f64, crossing_efficiency: f64) -> f64 {
        assert!(
            crossing_efficiency > 0.0 && crossing_efficiency <= 1.0,
            "crossing efficiency must be in (0, 1], got {crossing_efficiency}"
        );
        crossing_efficiency.powf(crossings)
    }
}

/// A ring resonator used for turns, receive taps, and the drop-signal
/// return path.
///
/// Resonators are switched electrically; the paper's Figure 5 shows that
/// *driving* the resonators dominates the router's critical paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingResonator {
    /// Scaling scenario that sets the electrical drive delay.
    pub scaling: Scaling,
}

impl RingResonator {
    /// Creates a resonator under the given scaling scenario.
    pub fn new(scaling: Scaling) -> Self {
        RingResonator { scaling }
    }

    /// Electrical drive delay: the time from a control signal being valid
    /// to the resonator being on/off resonance.
    ///
    /// *Calibrated* per scenario so that the Figure 6 hops-per-cycle
    /// results (8/5/4) emerge from the critical-path model.
    pub fn drive_delay(&self) -> Picoseconds {
        Picoseconds(match self.scaling {
            Scaling::Optimistic => 1.4,
            Scaling::Average => 7.5,
            Scaling::Pessimistic => 11.0,
        })
    }

    /// Fraction of optical power extracted by a *broadcast* tap resonator
    /// (multicast reception couples only part of the power so the packet
    /// can continue to downstream routers, §2.1.4).
    pub const BROADCAST_TAP_FRACTION: f64 = 0.03;
}

/// The optical transmit chain: serializer, driver, and modulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Modulator {
    scaling: Scaling,
    node: TechNode,
}

impl Modulator {
    /// Creates a modulator model for `scaling` at `node`.
    pub fn new(scaling: Scaling, node: TechNode) -> Self {
        Modulator { scaling, node }
    }

    /// Aggregate transmit-chain delay (Figure 4).
    pub fn transmit_delay(&self) -> Picoseconds {
        chain_delays(self.scaling, self.node).transmit
    }
}

/// The optical receive chain: photodetector, TIA, and deserializer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalReceiver {
    scaling: Scaling,
    node: TechNode,
}

impl OpticalReceiver {
    /// Minimum optical power per wavelength channel for reliable detection.
    ///
    /// *Calibrated*: 10 µW, in the range of published CMOS receiver
    /// sensitivities at multi-Gb/s rates.
    pub const SENSITIVITY: Milliwatts = Milliwatts(0.01);

    /// Creates a receiver model for `scaling` at `node`.
    pub fn new(scaling: Scaling, node: TechNode) -> Self {
        OpticalReceiver { scaling, node }
    }

    /// Aggregate receive-chain delay (Figure 4).
    pub fn receive_delay(&self) -> Picoseconds {
        chain_delays(self.scaling, self.node).receive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveguide_delay_matches_constant() {
        let wg = Waveguide::new(Millimeters(2.0));
        assert!((wg.propagation_delay().value() - 20.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn waveguide_rejects_negative_length() {
        let _ = Waveguide::new(Millimeters(-1.0));
    }

    #[test]
    fn crossing_transmission_compounds() {
        let t = Waveguide::crossing_transmission(2.0, 0.5);
        assert!((t - 0.25).abs() < 1e-12);
        // Zero crossings: lossless.
        assert_eq!(Waveguide::crossing_transmission(0.0, 0.98), 1.0);
    }

    #[test]
    #[should_panic(expected = "crossing efficiency")]
    fn crossing_transmission_rejects_bad_efficiency() {
        let _ = Waveguide::crossing_transmission(1.0, 1.5);
    }

    #[test]
    fn resonator_drive_ordered_by_scenario() {
        let d = |s| RingResonator::new(s).drive_delay();
        assert!(d(Scaling::Optimistic) < d(Scaling::Average));
        assert!(d(Scaling::Average) < d(Scaling::Pessimistic));
    }

    #[test]
    fn modulator_and_receiver_track_scaling() {
        let m_opt = Modulator::new(Scaling::Optimistic, TechNode::NM16);
        let m_pes = Modulator::new(Scaling::Pessimistic, TechNode::NM16);
        assert!(m_opt.transmit_delay() < m_pes.transmit_delay());
        let r_opt = OpticalReceiver::new(Scaling::Optimistic, TechNode::NM16);
        let r_pes = OpticalReceiver::new(Scaling::Pessimistic, TechNode::NM16);
        assert!(r_opt.receive_delay() < r_pes.receive_delay());
    }
}
