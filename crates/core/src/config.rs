//! Phastlane network configuration (Table 1 plus the §5 variants).

use crate::policies::{ArbitrationPolicy, PathPriority};
use phastlane_netsim::geometry::Mesh;
use phastlane_photonics::wdm::WdmConfig;

/// Depth of the electrical buffers at each input port and the local node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferDepth {
    /// A finite number of entries statically partitioned per buffer
    /// (the paper's organization: "five sets of buffers").
    Finite(usize),
    /// A pool of entries shared dynamically by all five buffers, with one
    /// slot reserved per queue as an escape path (without the
    /// reservation, a hogged pool deadlocks the drop/retransmit loop) —
    /// one of the "more sophisticated buffer management schemes" the
    /// paper's §5 future work suggests for reducing buffering
    /// requirements. `SharedPool(50)` uses the same silicon as
    /// `Finite(10)` but multiplexes it across ports.
    SharedPool(usize),
    /// Unbounded buffering (the `Optical4IB` configuration).
    Infinite,
}

impl BufferDepth {
    /// Whether a buffer with `occupancy` entries (and `total` entries
    /// across the router's five buffers) can take another entry.
    pub fn has_room_with_total(self, occupancy: usize, total: usize) -> bool {
        match self {
            BufferDepth::Finite(cap) => occupancy < cap,
            BufferDepth::SharedPool(cap) => {
                // One slot per queue is reserved (escape path); the rest
                // is first-come shared. `shared_used` counts entries
                // beyond each queue's reserved slot, conservatively
                // assuming the other four queues hold their reservations.
                let reserved = 5usize;
                if occupancy == 0 {
                    total < cap.max(reserved) // the reserved slot
                } else {
                    let shared_used = total.saturating_sub(reserved);
                    occupancy - 1 < cap.saturating_sub(reserved)
                        && shared_used < cap.saturating_sub(reserved)
                        && total < cap
                }
            }
            BufferDepth::Infinite => true,
        }
    }

    /// Whether `occupancy` more entries would exceed a per-queue depth
    /// (shared pools are judged on the router total; see
    /// [`has_room_with_total`](Self::has_room_with_total)).
    pub fn has_room(self, occupancy: usize) -> bool {
        self.has_room_with_total(occupancy, occupancy)
    }
}

/// Source backoff policy after a Packet Dropped signal (§2.1.2: "backoff
/// and resend").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Minimum cycles to wait before the retransmission attempt.
    pub base: u64,
    /// Upper bound (exclusive) of the uniformly-random extra wait, which
    /// doubles with each consecutive drop of the same packet.
    pub jitter: u64,
    /// Cap on the exponent so the wait stays bounded.
    pub max_exponent: u32,
}

impl BackoffPolicy {
    /// Draws a backoff delay for the given retry attempt (0-based) using
    /// `roll`, a uniformly-random value the caller supplies.
    pub fn delay(&self, attempt: u32, roll: u64) -> u64 {
        let window = self.jitter << attempt.min(self.max_exponent);
        self.base + if window == 0 { 0 } else { roll % window }
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: 1,
            jitter: 4,
            max_exponent: 5,
        }
    }
}

/// Full configuration of a Phastlane network.
#[derive(Debug, Clone, PartialEq)]
pub struct PhastlaneConfig {
    /// Mesh dimensions (8x8 in the paper).
    pub mesh: Mesh,
    /// Maximum hops an unblocked packet traverses per cycle: 4, 5, or 8
    /// for pessimistic, average, and optimistic component scaling
    /// (Figure 6).
    pub max_hops: u32,
    /// Electrical buffer depth at each input port and the local node
    /// (10 baseline; 32/64/infinite variants in §5).
    pub buffers: BufferDepth,
    /// NIC injection-queue depth (50, Table 1).
    pub nic_entries: usize,
    /// WDM packaging (64-way, Table 1); sets the optical power model.
    pub wdm: WdmConfig,
    /// Waveguide-crossing efficiency assumed for laser provisioning
    /// (98 %, §3.2).
    pub crossing_efficiency: f64,
    /// Retransmission backoff policy.
    pub backoff: BackoffPolicy,
    /// Maximum retransmission attempts per message before its remaining
    /// destinations are declared terminally `Undeliverable` (the livelock
    /// guard). Generous enough that congestion alone never trips it; under
    /// fault plans it bounds retries toward dead destinations.
    pub retry_limit: u32,
    /// Buffered-packet arbitration policy (rotating priority in the
    /// paper; alternatives for the §7 ablation study).
    pub arbitration: ArbitrationPolicy,
    /// Optical-path contention policy (fixed straight-beats-turn in the
    /// paper; round-robin per footnote 3).
    pub path_priority: PathPriority,
    /// RNG seed for backoff jitter (the only nondeterminism source).
    pub seed: u64,
}

impl PhastlaneConfig {
    /// The baseline `Optical4` configuration: 4 hops/cycle, 10 buffers.
    pub fn optical4() -> Self {
        Self::with_hops_and_buffers(4, BufferDepth::Finite(10))
    }

    /// `Optical5`: 5 hops/cycle (average scaling).
    pub fn optical5() -> Self {
        Self::with_hops_and_buffers(5, BufferDepth::Finite(10))
    }

    /// `Optical8`: 8 hops/cycle (optimistic scaling). The optimistic
    /// component-scaling scenario also assumes better optics: laser
    /// provisioning at 98.5 % crossing efficiency rather than 98 %
    /// (without it, Figure 7's loss budget makes an eight-hop reach
    /// impractical; see §3.2).
    pub fn optical8() -> Self {
        let mut cfg = Self::with_hops_and_buffers(8, BufferDepth::Finite(10));
        cfg.crossing_efficiency = 0.985;
        cfg
    }

    /// `Optical4B32`: 4 hops, 32 buffer entries.
    pub fn optical4_b32() -> Self {
        Self::with_hops_and_buffers(4, BufferDepth::Finite(32))
    }

    /// `Optical4B64`: 4 hops, 64 buffer entries.
    pub fn optical4_b64() -> Self {
        Self::with_hops_and_buffers(4, BufferDepth::Finite(64))
    }

    /// `Optical4IB`: 4 hops, infinite buffering.
    pub fn optical4_ib() -> Self {
        Self::with_hops_and_buffers(4, BufferDepth::Infinite)
    }

    /// Builds a configuration with the given hop limit and buffer depth
    /// and paper defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `max_hops` is zero.
    pub fn with_hops_and_buffers(max_hops: u32, buffers: BufferDepth) -> Self {
        assert!(max_hops > 0, "max_hops must be positive");
        PhastlaneConfig {
            mesh: Mesh::PAPER,
            max_hops,
            buffers,
            nic_entries: phastlane_netsim::nic::NIC_ENTRIES,
            wdm: WdmConfig::PAPER,
            crossing_efficiency: 0.98,
            backoff: BackoffPolicy::default(),
            retry_limit: 1_000,
            arbitration: ArbitrationPolicy::default(),
            path_priority: PathPriority::default(),
            seed: 0xFA57_1A7E,
        }
    }

    /// Configuration label matching the paper's Figures 10 and 11
    /// (`Optical4`, `Optical4B32`, `Optical4IB`, ...).
    pub fn label(&self) -> String {
        match self.buffers {
            BufferDepth::Finite(10) => format!("Optical{}", self.max_hops),
            BufferDepth::Finite(n) => format!("Optical{}B{}", self.max_hops, n),
            BufferDepth::SharedPool(n) => format!("Optical{}SP{}", self.max_hops, n),
            BufferDepth::Infinite => format!("Optical{}IB", self.max_hops),
        }
    }

    /// `Optical4SP50`: 4 hops with a 50-entry shared pool per router —
    /// the same storage as the 10-entry-per-buffer baseline, dynamically
    /// shared (§5 future work).
    pub fn optical4_shared_pool() -> Self {
        Self::with_hops_and_buffers(4, BufferDepth::SharedPool(50))
    }
}

impl Default for PhastlaneConfig {
    fn default() -> Self {
        Self::optical4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(PhastlaneConfig::optical4().label(), "Optical4");
        assert_eq!(PhastlaneConfig::optical5().label(), "Optical5");
        assert_eq!(PhastlaneConfig::optical8().label(), "Optical8");
        assert_eq!(PhastlaneConfig::optical4_b32().label(), "Optical4B32");
        assert_eq!(PhastlaneConfig::optical4_b64().label(), "Optical4B64");
        assert_eq!(PhastlaneConfig::optical4_ib().label(), "Optical4IB");
    }

    #[test]
    fn defaults_match_table1() {
        let c = PhastlaneConfig::default();
        assert_eq!(c.mesh.nodes(), 64);
        assert_eq!(c.nic_entries, 50);
        assert_eq!(c.wdm.payload_wdm, 64);
        assert_eq!(c.buffers, BufferDepth::Finite(10));
        assert!((c.crossing_efficiency - 0.98).abs() < 1e-12);
    }

    #[test]
    fn buffer_depth_room() {
        assert!(BufferDepth::Finite(2).has_room(1));
        assert!(!BufferDepth::Finite(2).has_room(2));
        assert!(BufferDepth::Infinite.has_room(usize::MAX - 1));
        // Shared pools judge the router total, not the queue.
        assert!(BufferDepth::SharedPool(50).has_room_with_total(30, 49));
        assert!(!BufferDepth::SharedPool(50).has_room_with_total(10, 50));
        // The per-queue reserved slot is always available.
        assert!(BufferDepth::SharedPool(50).has_room_with_total(0, 49));
        // A single queue cannot hog the shared region past cap-5.
        assert!(!BufferDepth::SharedPool(50).has_room_with_total(46, 46));
    }

    #[test]
    fn shared_pool_label() {
        assert_eq!(
            PhastlaneConfig::optical4_shared_pool().label(),
            "Optical4SP50"
        );
    }

    #[test]
    fn backoff_grows_with_attempts() {
        let b = BackoffPolicy {
            base: 1,
            jitter: 4,
            max_exponent: 3,
        };
        // roll chosen as window-1 to see the maximum delay per attempt.
        let max_delay = |attempt: u32| {
            let window = 4u64 << attempt.min(3);
            b.delay(attempt, window - 1)
        };
        assert!(max_delay(0) < max_delay(1));
        assert!(max_delay(1) < max_delay(2));
        // Exponent caps.
        assert_eq!(max_delay(3), max_delay(9));
    }

    #[test]
    fn backoff_zero_jitter() {
        let b = BackoffPolicy {
            base: 3,
            jitter: 0,
            max_exponent: 2,
        };
        assert_eq!(b.delay(5, 12345), 3);
    }

    #[test]
    #[should_panic(expected = "max_hops")]
    fn zero_hops_rejected() {
        let _ = PhastlaneConfig::with_hops_and_buffers(0, BufferDepth::Infinite);
    }
}
