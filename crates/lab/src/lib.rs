//! Declarative experiment orchestration for the Phastlane reproduction.
//!
//! The paper's evaluation (§4, Figures 9–11) is a grid of runs: injection
//! -rate sweeps per pattern per network, SPLASH2 replays, fault ablations
//! — dozens of independent simulations. This crate turns that grid into a
//! first-class artifact:
//!
//! * [`spec`] — a hand-rolled, dependency-free scenario-spec format
//!   ([`LabSpec`]) describing a matrix of runs (networks × patterns ×
//!   injection rates × fault intensities × seed replicas, plus optional
//!   SPLASH2 replay jobs), expanded into an ordered job list;
//! * [`runner`] — builds a network by name and executes one job
//!   end-to-end on the current thread;
//! * [`scheduler`] — fans the job list out over a `std::thread` worker
//!   pool. Every job's RNG seed is derived from the spec seed and the
//!   job's matrix index via [`phastlane_netsim::rng::SimRng`], never
//!   from thread scheduling, and results are collected by job index, so
//!   a run with 8 workers is **byte-identical** to a serial run;
//! * [`report`] — aggregates per-job results into a [`LabReport`] whose
//!   canonical JSON contains no wall-clock data (diffable across
//!   machines), with the perf profile (total wall time, aggregate
//!   simulated cycles/sec, parallel speedup vs. one worker) exported
//!   separately;
//! * [`baseline`] — a named baseline store (`results/baselines/*.json`)
//!   and the regression gate: [`baseline::compare`] diffs a fresh run
//!   against a recorded baseline and reports regressions in mean/p99
//!   latency, saturation rate, and simulator throughput beyond
//!   configurable tolerances;
//! * [`supervise`] — panic isolation and bounded seeded retry around
//!   every job, so one crashing or livelocked simulation records a
//!   terminal outcome instead of killing the sweep;
//! * [`journal`] — an append-only NDJSON checkpoint of finished jobs;
//!   `lab run --resume` replays it and re-runs only the remainder,
//!   byte-identical to an uninterrupted run;
//! * [`store`] — atomic (temp+rename) writes and checksummed reads for
//!   durable artifacts, with quarantine for corrupt files.

#![warn(missing_docs)]

pub mod baseline;
pub mod journal;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod spec;
pub mod store;
pub mod supervise;

pub use baseline::Tolerances;
pub use report::{GroupSaturation, JobRecord, LabReport};
pub use scheduler::{run_lab, run_lab_with};
pub use spec::{derive_seed, JobSpec, LabSpec, Work};
