//! `phastlane-serve` — the simulator as a long-running job service.
//!
//! A `phastlane serve` process owns a supervised worker pool and
//! exposes the lab machinery over a deliberately small HTTP/1.1 +
//! NDJSON API (hand-rolled on `std::net`, because the workspace builds
//! offline with zero dependencies):
//!
//! | route                    | meaning                                   |
//! |--------------------------|-------------------------------------------|
//! | `POST /jobs`             | submit a lab spec (raw text or `{"spec", "workers"}`); preflighted, then queued. `400` malformed, `429` queue full, `503` shutting down |
//! | `GET /jobs`              | all jobs' status JSON                     |
//! | `GET /jobs/<id>`         | one job's status JSON                     |
//! | `GET /jobs/<id>/report`  | the canonical report, byte-identical to `lab run --report-out` |
//! | `GET /jobs/<id>/events`  | chunked NDJSON progress stream (replays buffered history, sheds per-subscriber) |
//! | `POST /jobs/<id>/cancel` | cooperative cancellation                  |
//! | `GET /baselines`         | recorded baseline names                   |
//! | `GET /baselines/<name>`  | one checksum-verified baseline payload    |
//! | `GET /healthz`           | liveness probe                            |
//! | `GET /statsz`            | queue/job/rejection/event counters        |
//! | `POST /shutdown`         | graceful stop (only with `--allow-shutdown`) |
//!
//! The acceptance bar for the whole crate is the **determinism
//! contract**: submitting a spec over the API yields a canonical
//! report byte-identical to running `phastlane lab run` on the same
//! spec, regardless of how many sessions are hitting the server
//! concurrently. Everything the server attaches to a run — event
//! fan-out, journal, cancel token, supervision — is harness plumbing
//! that cannot change a canonical bit.
//!
//! Module map: [`http`] is the wire codec, [`client`] the matching
//! client used by the CLI and CI, [`registry`] the job table with
//! crash-safe persistence, and [`server`] the accept loop, worker
//! pool, and route table.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod registry;
pub mod server;

pub use registry::{JobStatus, Registry};
pub use server::{start, ServeSummary, ServerConfig, ServerHandle};
