//! The job registry: every submitted lab, its lifecycle state, its
//! event fan-out, and — when a state directory is configured — its
//! on-disk persistence, so a restarted server still answers for jobs
//! it ran before the restart.
//!
//! Persistence layout under the state directory (all writes go through
//! [`store::write_atomic`], so readers racing a transition see the old
//! or the new file, never a torn one):
//!
//! | file                  | contents                                  |
//! |-----------------------|-------------------------------------------|
//! | `job-<id>.spec`       | the spec exactly as `LabSpec::encode`s it |
//! | `job-<id>.status.json`| the same status JSON `GET /jobs/<id>` serves |
//! | `job-<id>.report.json`| the canonical report, byte-identical to `lab run` |
//! | `job-<id>.journal`    | the run journal (written by the worker)   |
//!
//! On [`Registry::open`] the directory is scanned: finished jobs come
//! back queryable, and jobs that were queued or running when the
//! process died are re-enqueued with their journal records pre-filled,
//! so already-finished cycles are not re-simulated.

use phastlane_lab::journal;
use phastlane_lab::report::JobRecord;
use phastlane_lab::spec::LabSpec;
use phastlane_lab::store;
use phastlane_netsim::obs::json::JsonValue;
use phastlane_netsim::obs::{EventFanout, FanoutSubscriber, EVENT_SCHEMA_VERSION};
use phastlane_netsim::watchdog::CancelToken;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Lifecycle state of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a pool worker.
    Queued,
    /// A pool worker is simulating it.
    Running,
    /// Finished; the canonical report is available.
    Done,
    /// The run errored (structural failure, not a lost race).
    Failed,
    /// Cancelled before or during the run.
    Cancelled,
}

impl JobStatus {
    /// Wire label used in status JSON and persisted status files.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    fn parse(label: &str) -> Option<JobStatus> {
        Some(match label {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed,
            "cancelled" => JobStatus::Cancelled,
            _ => return None,
        })
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// One registered job (registry-internal).
struct Job {
    id: u64,
    spec: LabSpec,
    spec_text: String,
    workers: usize,
    status: JobStatus,
    error: Option<String>,
    /// Canonical report bytes, exactly what `lab run --report-out`
    /// writes.
    report: Option<Arc<String>>,
    /// Journal records recovered from a previous process, pre-filled
    /// into the run so finished jobs are not re-simulated.
    resumed: Vec<JobRecord>,
    cancel: CancelToken,
    events: Arc<EventFanout>,
}

/// Everything a pool worker needs to run one job, cloned out of the
/// registry so the lock is never held across a simulation.
pub struct WorkItem {
    /// Job id.
    pub id: u64,
    /// Parsed spec.
    pub spec: LabSpec,
    /// Worker threads for `run_lab_opts`.
    pub workers: usize,
    /// Journal records recovered from a previous process.
    pub resumed: Vec<JobRecord>,
    /// Cooperative cancellation handle (also held by the registry).
    pub cancel: CancelToken,
    /// Event fan-out this job publishes progress to.
    pub events: Arc<EventFanout>,
    /// Where the worker should journal finished jobs, if persistence
    /// is on.
    pub journal_path: Option<PathBuf>,
}

/// Thread-safe registry of all jobs this server knows about.
pub struct Registry {
    state_dir: Option<PathBuf>,
    jobs: Mutex<Vec<Job>>,
    next_id: Mutex<u64>,
}

impl Registry {
    /// Opens a registry, recovering persisted jobs from `state_dir`
    /// when one is given. Returns the registry plus the ids of jobs
    /// that were queued or running when the previous process died and
    /// must be re-enqueued.
    ///
    /// # Errors
    ///
    /// If the state directory cannot be created or scanned. Individual
    /// unreadable job files degrade to a fresh re-run, not an error.
    pub fn open(state_dir: Option<&Path>) -> Result<(Registry, Vec<u64>), String> {
        let reg = Registry {
            state_dir: state_dir.map(Path::to_path_buf),
            jobs: Mutex::new(Vec::new()),
            next_id: Mutex::new(1),
        };
        let Some(dir) = state_dir else {
            return Ok((reg, Vec::new()));
        };
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("job-")
                .and_then(|s| s.strip_suffix(".spec"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut requeue = Vec::new();
        for id in ids {
            match recover_job(dir, id) {
                Some(job) => {
                    if job.status == JobStatus::Queued {
                        requeue.push(id);
                    }
                    reg.jobs.lock().expect("registry lock").push(job);
                    let mut next = reg.next_id.lock().expect("id lock");
                    *next = (*next).max(id + 1);
                }
                None => continue,
            }
        }
        Ok((reg, requeue))
    }

    /// Registers a new job as queued, persisting its spec and status.
    /// Returns the assigned id.
    pub fn submit(&self, spec: LabSpec, workers: usize) -> u64 {
        let id = {
            let mut next = self.next_id.lock().expect("id lock");
            let id = *next;
            *next += 1;
            id
        };
        let job = Job {
            id,
            spec_text: spec.encode(),
            spec,
            workers,
            status: JobStatus::Queued,
            error: None,
            report: None,
            resumed: Vec::new(),
            cancel: CancelToken::new(),
            events: EventFanout::with_defaults(),
        };
        self.persist_spec(&job);
        self.persist_status(&job);
        self.jobs.lock().expect("registry lock").push(job);
        id
    }

    /// Marks a queued job running and clones out what the worker
    /// needs. Returns `None` if the job is gone or no longer queued
    /// (e.g. cancelled while waiting).
    pub fn start(&self, id: u64) -> Option<WorkItem> {
        let mut jobs = self.jobs.lock().expect("registry lock");
        let job = jobs.iter_mut().find(|j| j.id == id)?;
        if job.status != JobStatus::Queued {
            return None;
        }
        job.status = JobStatus::Running;
        let item = WorkItem {
            id,
            spec: job.spec.clone(),
            workers: job.workers,
            resumed: std::mem::take(&mut job.resumed),
            cancel: job.cancel.clone(),
            events: Arc::clone(&job.events),
            journal_path: self.journal_path(id),
        };
        let status = status_json_of(job);
        let path = self.status_path(id);
        drop(jobs);
        persist_json(path, &status);
        Some(item)
    }

    /// Records the outcome of a run. On success the canonical report
    /// bytes are persisted *before* the status flips to done, so a
    /// crash between the two writes re-runs the job instead of serving
    /// a missing report.
    pub fn finish(&self, id: u64, outcome: Result<String, String>, cancelled: bool) {
        let report_path = self.report_path(id);
        let mut jobs = self.jobs.lock().expect("registry lock");
        let Some(job) = jobs.iter_mut().find(|j| j.id == id) else {
            return;
        };
        match outcome {
            Ok(canonical) => {
                if let Some(path) = &report_path {
                    let _ = store::write_atomic(path, canonical.as_bytes());
                }
                job.report = Some(Arc::new(canonical));
                job.status = if cancelled {
                    JobStatus::Cancelled
                } else {
                    JobStatus::Done
                };
            }
            Err(e) => {
                job.status = if cancelled {
                    JobStatus::Cancelled
                } else {
                    JobStatus::Failed
                };
                job.error = Some(e);
            }
        }
        job.events.close();
        let status = status_json_of(job);
        let path = self.status_path(id);
        drop(jobs);
        persist_json(path, &status);
    }

    /// Requests cancellation. A queued job flips straight to
    /// cancelled; a running one gets its token cancelled and lands as
    /// cancelled when the worker reaches the next watchdog gate.
    /// Returns the job's status after the request, or `None` for an
    /// unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut jobs = self.jobs.lock().expect("registry lock");
        let job = jobs.iter_mut().find(|j| j.id == id)?;
        job.cancel.cancel();
        if job.status == JobStatus::Queued {
            job.status = JobStatus::Cancelled;
            job.events.close();
            let status = status_json_of(job);
            let after = job.status;
            let path = self.status_path(id);
            drop(jobs);
            persist_json(path, &status);
            return Some(after);
        }
        Some(job.status)
    }

    /// Cancels every job that is not yet terminal (shutdown path).
    /// Returns the ids that were still live.
    pub fn cancel_all(&self) -> Vec<u64> {
        let live: Vec<u64> = {
            let jobs = self.jobs.lock().expect("registry lock");
            jobs.iter()
                .filter(|j| !j.status.is_terminal())
                .map(|j| j.id)
                .collect()
        };
        for &id in &live {
            self.cancel(id);
        }
        live
    }

    /// Status JSON for one job — the same shape that gets persisted.
    pub fn status_json(&self, id: u64) -> Option<JsonValue> {
        let jobs = self.jobs.lock().expect("registry lock");
        jobs.iter().find(|j| j.id == id).map(status_json_of)
    }

    /// Status JSON for every job, ascending id.
    pub fn list_json(&self) -> JsonValue {
        let jobs = self.jobs.lock().expect("registry lock");
        JsonValue::Obj(vec![
            (
                "schema_version".into(),
                JsonValue::Uint(EVENT_SCHEMA_VERSION),
            ),
            (
                "jobs".into(),
                JsonValue::Arr(jobs.iter().map(status_json_of).collect()),
            ),
        ])
    }

    /// The finished job's canonical report bytes, if it has one.
    pub fn report(&self, id: u64) -> Option<Arc<String>> {
        let jobs = self.jobs.lock().expect("registry lock");
        jobs.iter()
            .find(|j| j.id == id)
            .and_then(|j| j.report.clone())
    }

    /// Subscribes to a job's event stream (replays buffered history).
    /// Returns `None` for an unknown id.
    pub fn subscribe(&self, id: u64) -> Option<FanoutSubscriber> {
        let jobs = self.jobs.lock().expect("registry lock");
        jobs.iter()
            .find(|j| j.id == id)
            .map(|j| j.events.subscribe())
    }

    /// Jobs currently waiting for a worker (the bounded-queue measure
    /// behind 429 rejections).
    pub fn queued_count(&self) -> usize {
        let jobs = self.jobs.lock().expect("registry lock");
        jobs.iter()
            .filter(|j| j.status == JobStatus::Queued)
            .count()
    }

    /// Whether any job is not yet terminal.
    pub fn has_live_jobs(&self) -> bool {
        let jobs = self.jobs.lock().expect("registry lock");
        jobs.iter().any(|j| !j.status.is_terminal())
    }

    /// `(total, queued, running, done, failed, cancelled)` counts.
    pub fn counts(&self) -> [u64; 6] {
        let jobs = self.jobs.lock().expect("registry lock");
        let mut out = [jobs.len() as u64, 0, 0, 0, 0, 0];
        for j in jobs.iter() {
            let slot = match j.status {
                JobStatus::Queued => 1,
                JobStatus::Running => 2,
                JobStatus::Done => 3,
                JobStatus::Failed => 4,
                JobStatus::Cancelled => 5,
            };
            out[slot] += 1;
        }
        out
    }

    /// `(published, dropped)` event totals across every job's fan-out.
    pub fn event_totals(&self) -> (u64, u64) {
        let jobs = self.jobs.lock().expect("registry lock");
        jobs.iter().fold((0, 0), |(p, d), j| {
            (p + j.events.published(), d + j.events.dropped())
        })
    }

    fn state_file(&self, id: u64, suffix: &str) -> Option<PathBuf> {
        self.state_dir
            .as_ref()
            .map(|d| d.join(format!("job-{id}.{suffix}")))
    }

    fn status_path(&self, id: u64) -> Option<PathBuf> {
        self.state_file(id, "status.json")
    }

    fn report_path(&self, id: u64) -> Option<PathBuf> {
        self.state_file(id, "report.json")
    }

    /// Journal path for a job (where the worker appends records).
    pub fn journal_path(&self, id: u64) -> Option<PathBuf> {
        self.state_file(id, "journal")
    }

    fn persist_spec(&self, job: &Job) {
        if let Some(path) = self.state_file(job.id, "spec") {
            let _ = store::write_atomic(&path, job.spec_text.as_bytes());
        }
    }

    fn persist_status(&self, job: &Job) {
        persist_json(self.status_path(job.id), &status_json_of(job));
    }
}

fn persist_json(path: Option<PathBuf>, json: &JsonValue) {
    if let Some(path) = path {
        let _ = store::write_atomic(&path, json.to_string_pretty().as_bytes());
    }
}

fn status_json_of(job: &Job) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "schema_version".into(),
            JsonValue::Uint(EVENT_SCHEMA_VERSION),
        ),
        ("id".into(), JsonValue::Uint(job.id)),
        ("name".into(), JsonValue::Str(job.spec.name.clone())),
        ("status".into(), JsonValue::Str(job.status.label().into())),
        ("workers".into(), JsonValue::Uint(job.workers as u64)),
        (
            "error".into(),
            match &job.error {
                Some(e) => JsonValue::Str(e.clone()),
                None => JsonValue::Null,
            },
        ),
        ("has_report".into(), JsonValue::Bool(job.report.is_some())),
    ])
}

/// Rebuilds one job from its persisted files. Unreadable or
/// inconsistent files degrade toward "run it again": a job claimed
/// done without a readable report is re-queued, and a journal that no
/// longer matches the spec is ignored.
fn recover_job(dir: &Path, id: u64) -> Option<Job> {
    let spec_text = std::fs::read_to_string(dir.join(format!("job-{id}.spec"))).ok()?;
    let spec = LabSpec::parse(&spec_text).ok()?;
    let status_path = dir.join(format!("job-{id}.status.json"));
    let persisted = std::fs::read_to_string(&status_path)
        .ok()
        .and_then(|text| phastlane_netsim::obs::json::parse(&text).ok());
    let status = persisted
        .as_ref()
        .and_then(|v| v.get("status"))
        .and_then(JsonValue::as_str)
        .and_then(JobStatus::parse)
        .unwrap_or(JobStatus::Queued);
    let workers = persisted
        .as_ref()
        .and_then(|v| v.get("workers"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(1) as usize;
    let error = persisted
        .as_ref()
        .and_then(|v| v.get("error"))
        .and_then(JsonValue::as_str)
        .map(str::to_string);

    let mut job = Job {
        id,
        spec,
        spec_text,
        workers: workers.max(1),
        status,
        error,
        report: None,
        resumed: Vec::new(),
        cancel: CancelToken::new(),
        events: EventFanout::with_defaults(),
    };

    match job.status {
        JobStatus::Done => {
            match std::fs::read_to_string(dir.join(format!("job-{id}.report.json"))) {
                Ok(report) => job.report = Some(Arc::new(report)),
                // Status says done but the report is gone: re-run.
                Err(_) => job.status = JobStatus::Queued,
            }
        }
        JobStatus::Failed | JobStatus::Cancelled => {}
        JobStatus::Queued | JobStatus::Running => {
            // Interrupted mid-flight: resume from the journal if it is
            // intact and still matches the spec.
            job.status = JobStatus::Queued;
            let journal_path = dir.join(format!("job-{id}.journal"));
            if journal_path.exists() {
                if let Ok(rec) = journal::load(&journal_path) {
                    if rec.spec == job.spec_text {
                        job.resumed = rec.records;
                    }
                }
            }
        }
    }
    // A terminal job closed its stream; reopen-as-closed so event
    // subscribers get an immediate, clean end-of-stream.
    if job.status.is_terminal() {
        job.events.close();
    }
    Some(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LabSpec {
        LabSpec::parse(
            "name reg-test\nmesh 4x4\nseed 7\nnets optical4\npatterns uniform\n\
             rates 0.02\nwarmup 50\nmeasure 100\ndrain 500\n",
        )
        .unwrap()
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let (reg, requeue) = Registry::open(None).unwrap();
        assert!(requeue.is_empty());
        let id = reg.submit(spec(), 2);
        assert_eq!(reg.queued_count(), 1);
        let item = reg.start(id).expect("queued job starts");
        assert_eq!(item.workers, 2);
        assert_eq!(reg.queued_count(), 0);
        assert!(reg.start(id).is_none(), "running job cannot start twice");
        reg.finish(id, Ok("{\"x\": 1}\n".into()), false);
        let status = reg.status_json(id).unwrap();
        assert_eq!(status.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(
            status.get("schema_version").unwrap().as_u64(),
            Some(EVENT_SCHEMA_VERSION)
        );
        assert_eq!(reg.report(id).unwrap().as_str(), "{\"x\": 1}\n");
    }

    #[test]
    fn cancelling_a_queued_job_is_immediate() {
        let (reg, _) = Registry::open(None).unwrap();
        let id = reg.submit(spec(), 1);
        assert_eq!(reg.cancel(id), Some(JobStatus::Cancelled));
        assert!(reg.start(id).is_none(), "cancelled job never starts");
        assert!(reg.cancel(999).is_none(), "unknown id");
    }

    #[test]
    fn cancelling_a_running_job_trips_the_token() {
        let (reg, _) = Registry::open(None).unwrap();
        let id = reg.submit(spec(), 1);
        let item = reg.start(id).unwrap();
        assert!(!item.cancel.is_cancelled());
        assert_eq!(reg.cancel(id), Some(JobStatus::Running));
        assert!(item.cancel.is_cancelled(), "worker sees the request");
        reg.finish(id, Err("cancelled".into()), true);
        let status = reg.status_json(id).unwrap();
        assert_eq!(status.get("status").unwrap().as_str(), Some("cancelled"));
    }

    #[test]
    fn persisted_done_job_survives_restart() {
        let dir =
            std::env::temp_dir().join(format!("phastlane-reg-{}-{}", std::process::id(), "done"));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (reg, _) = Registry::open(Some(&dir)).unwrap();
            let id = reg.submit(spec(), 2);
            reg.start(id).unwrap();
            reg.finish(id, Ok("canonical-bytes\n".into()), false);
        }
        let (reg, requeue) = Registry::open(Some(&dir)).unwrap();
        assert!(requeue.is_empty(), "done jobs are not re-enqueued");
        assert_eq!(reg.report(1).unwrap().as_str(), "canonical-bytes\n");
        let status = reg.status_json(1).unwrap();
        assert_eq!(status.get("status").unwrap().as_str(), Some("done"));
        // New submissions continue the id sequence.
        assert_eq!(reg.submit(spec(), 1), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_job_is_requeued_on_restart() {
        let dir = std::env::temp_dir().join(format!(
            "phastlane-reg-{}-{}",
            std::process::id(),
            "requeue"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (reg, _) = Registry::open(Some(&dir)).unwrap();
            let id = reg.submit(spec(), 1);
            reg.start(id).unwrap();
            // Process dies here: status file says "running".
        }
        let (reg, requeue) = Registry::open(Some(&dir)).unwrap();
        assert_eq!(requeue, vec![1], "interrupted job comes back queued");
        let status = reg.status_json(1).unwrap();
        assert_eq!(status.get("status").unwrap().as_str(), Some("queued"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
