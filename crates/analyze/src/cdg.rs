//! Channel-dependency-graph (CDG) deadlock analysis (Dally–Seitz).
//!
//! A *channel* is one directed mesh link — the pair `(upstream node,
//! direction)`. The routing function induces *dependencies* between
//! channels: if some packet can occupy channel `a` while waiting for
//! channel `b` at the router between them, the CDG has an edge `a -> b`.
//! Dally & Seitz: a routing function is deadlock-free on a network iff
//! its CDG is acyclic. When it is not, the analyzer produces a concrete
//! **minimal witness cycle** — the shortest channel loop a blocked-packet
//! chain could close — rather than a bare boolean, so a broken routing
//! policy is debuggable from the report alone.
//!
//! Two builders cover the repo's routing functions:
//!
//! * [`Cdg::of_mesh_xy`] — dimension-order (XY) routing on a
//!   [`Mesh`], including the fault-rerouting detours of
//!   [`phastlane_netsim::fault::productive_detour`] (which route the
//!   *other* dimension first and therefore add YX turns to the turn
//!   set). With an empty fault plan this is the paper's baseline and is
//!   provably acyclic (the XY turn model); under fault plans the mixed
//!   XY/YX turn set can close cycles, which the analyzer reports.
//! * [`Cdg::of_ring_dor`] — naive dimension-order routing on a 1-D
//!   **torus** (a wraparound ring): every packet keeps moving "east"
//!   until it arrives. The wraparound channel closes the classic ring
//!   cycle, the textbook deadlocking configuration; this is the
//!   analyzer's known-answer seed for a failing verdict.
//!
//! The walk model treats every scheduled fault as worst-case permanent
//! (see [`ever_blocked`]): a static verdict must hold at every cycle the
//! fault could be active.

use phastlane_netsim::fault::FaultPlan;
use phastlane_netsim::geometry::{Coord, Direction, Mesh, NodeId};
use phastlane_netsim::routing::xy_first_hop;
use std::fmt;

/// One directed mesh link: the channel leaving `node` toward `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Upstream endpoint.
    pub node: NodeId,
    /// Link direction out of `node`.
    pub dir: Direction,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.node, self.dir)
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::North => 0,
        Direction::South => 1,
        Direction::East => 2,
        Direction::West => 3,
    }
}

/// The channel-dependency graph over a fixed node count.
///
/// Channels are densely indexed as `node * 4 + direction`; edges are
/// deduplicated and kept sorted, so every query below is deterministic.
#[derive(Debug, Clone)]
pub struct Cdg {
    nodes: usize,
    edges: Vec<Vec<usize>>,
}

impl Cdg {
    /// An empty CDG over `nodes` mesh nodes.
    pub fn new(nodes: usize) -> Cdg {
        Cdg {
            nodes,
            edges: vec![Vec::new(); nodes * 4],
        }
    }

    fn index(&self, c: Channel) -> usize {
        c.node.index() * 4 + dir_index(c.dir)
    }

    fn channel(&self, index: usize) -> Channel {
        Channel {
            node: NodeId((index / 4) as u16),
            dir: Direction::ALL[index % 4],
        }
    }

    /// Records that a packet occupying `from` can wait for `to`.
    pub fn add_dependency(&mut self, from: Channel, to: Channel) {
        let (f, t) = (self.index(from), self.index(to));
        let row = &mut self.edges[f];
        if let Err(pos) = row.binary_search(&t) {
            row.insert(pos, t);
        }
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Number of channels that appear in at least one dependency.
    pub fn active_channels(&self) -> usize {
        let mut used = vec![false; self.edges.len()];
        for (i, row) in self.edges.iter().enumerate() {
            if !row.is_empty() {
                used[i] = true;
            }
            for &t in row {
                used[t] = true;
            }
        }
        used.iter().filter(|&&u| u).count()
    }

    /// Total node count the graph was built over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The shortest dependency cycle, as the channel sequence
    /// `c0 -> c1 -> ... -> c0` (first channel not repeated), or `None`
    /// when the CDG is acyclic — i.e. the routing function is
    /// deadlock-free on this topology (Dally–Seitz).
    ///
    /// Minimality: a BFS from every channel back to itself finds the
    /// globally shortest cycle; ties break toward the lowest starting
    /// channel index, so the witness is deterministic.
    pub fn shortest_cycle(&self) -> Option<Vec<Channel>> {
        let n = self.edges.len();
        let mut best: Option<Vec<usize>> = None;
        let mut parent = vec![usize::MAX; n];
        let mut dist = vec![u32::MAX; n];
        for start in 0..n {
            if self.edges[start].is_empty() {
                continue;
            }
            if let Some(b) = &best {
                if b.len() == 1 {
                    break; // a self-loop can't be beaten
                }
            }
            // BFS from the successors of `start` back to `start`.
            parent.fill(usize::MAX);
            dist.fill(u32::MAX);
            let mut queue = std::collections::VecDeque::new();
            dist[start] = 0;
            queue.push_back(start);
            'bfs: while let Some(u) = queue.pop_front() {
                for &v in &self.edges[u] {
                    if v == start {
                        // Closed a cycle of length dist[u] + 1.
                        let mut cycle = Vec::with_capacity(dist[u] as usize + 1);
                        let mut cur = u;
                        while cur != usize::MAX {
                            cycle.push(cur);
                            cur = parent[cur];
                        }
                        cycle.reverse(); // start .. u in walk order
                        if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                            best = Some(cycle);
                        }
                        break 'bfs;
                    }
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        parent[v] = u;
                        // Prune paths already no shorter than the best.
                        if best.as_ref().is_none_or(|b| (dist[v] as usize) < b.len()) {
                            queue.push_back(v);
                        }
                    }
                }
            }
        }
        best.map(|cycle| cycle.into_iter().map(|i| self.channel(i)).collect())
    }

    /// Builds the CDG of XY dimension-order routing (plus the
    /// fault-plan's productive detours) on `mesh`: every (src, dst)
    /// pair's static walk contributes one dependency per consecutive
    /// channel pair. Unreachable pairs contribute the prefix walked
    /// before the partition — those channels can still hold waiting
    /// packets.
    pub fn of_mesh_xy(mesh: Mesh, plan: &FaultPlan) -> Cdg {
        let mut cdg = Cdg::new(mesh.nodes());
        for src in mesh.iter_nodes() {
            for dst in mesh.iter_nodes() {
                if src == dst {
                    continue;
                }
                let channels = match route_walk(mesh, plan, src, dst) {
                    Walk::Reached(c) => c,
                    Walk::Partitioned { walked, .. } => walked,
                };
                for pair in channels.windows(2) {
                    cdg.add_dependency(pair[0], pair[1]);
                }
            }
        }
        cdg
    }

    /// Builds the CDG of naive dimension-order routing on a 1-D torus
    /// (unidirectional wraparound ring of `len` nodes): every packet
    /// moves "east", wrapping from the last node back to node 0, until
    /// it reaches its destination.
    ///
    /// This is the textbook deadlocking configuration — the wraparound
    /// link closes a dependency cycle through every ring channel — and
    /// serves as the analyzer's known-answer failing input. (The
    /// workspace [`Mesh`] is deliberately torus-free; this synthetic
    /// view exists so the failing verdict stays testable.)
    ///
    /// # Panics
    ///
    /// Panics if `len < 2` (a ring needs at least two nodes).
    pub fn of_ring_dor(len: u16) -> Cdg {
        assert!(len >= 2, "a ring needs at least two nodes");
        let mut cdg = Cdg::new(usize::from(len));
        let east = |i: u16| Channel {
            node: NodeId(i),
            dir: Direction::East,
        };
        for src in 0..len {
            for dst in 0..len {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                while cur != dst {
                    let next = (cur + 1) % len;
                    if next != dst {
                        cdg.add_dependency(east(cur), east(next));
                    }
                    cur = next;
                }
            }
        }
        cdg
    }
}

/// Whether the hop `from -> dir` is unusable under the **worst-case**
/// static view of `plan`: every scheduled fault is treated as permanent
/// (a static verdict must hold at every cycle the fault could be
/// active). Off-mesh hops are always blocked.
pub fn ever_blocked(plan: &FaultPlan, mesh: Mesh, from: NodeId, dir: Direction) -> bool {
    use phastlane_netsim::fault::FaultKind;
    let Some(next) = mesh.neighbor(from, dir) else {
        return true;
    };
    plan.faults().iter().any(|f| match f.kind {
        FaultKind::LinkDown { node, dir: d } => node == from && d == dir,
        FaultKind::RouterStuck { node } => node == from || node == next,
        FaultKind::LaserDroop { .. } | FaultKind::BitError { .. } => false,
    })
}

/// The outcome of one static route walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Walk {
    /// The destination is reachable; the channel sequence traversed.
    Reached(Vec<Channel>),
    /// The walk wedged before the destination.
    Partitioned {
        /// The node where no productive live hop remained.
        at: NodeId,
        /// The channels traversed up to the wedge.
        walked: Vec<Channel>,
    },
}

/// Statically walks the routing function from `src` to `dst` under the
/// worst-case fault view: at each node take the XY first hop if live,
/// otherwise the productive other-dimension detour (the static mirror of
/// [`phastlane_netsim::fault::productive_detour`] — route toward the
/// corner `(x, dst.y)` when both dimensions are productive), otherwise
/// report the pair partitioned at that node.
///
/// Every step strictly decreases the Manhattan distance to `dst`, so the
/// walk always terminates in at most `distance(src, dst)` hops.
pub fn route_walk(mesh: Mesh, plan: &FaultPlan, src: NodeId, dst: NodeId) -> Walk {
    let mut walked = Vec::new();
    let mut cur = src;
    while cur != dst {
        let Some(xy) = xy_first_hop(mesh, cur, dst) else {
            break;
        };
        let dir = if !ever_blocked(plan, mesh, cur, xy) {
            xy
        } else {
            match static_detour(plan, mesh, cur, dst) {
                Some(d) => d,
                None => return Walk::Partitioned { at: cur, walked },
            }
        };
        walked.push(Channel { node: cur, dir });
        cur = mesh
            .neighbor(cur, dir)
            .expect("live hops stay inside the mesh");
    }
    Walk::Reached(walked)
}

/// The static worst-case mirror of
/// [`phastlane_netsim::fault::productive_detour`]: when both dimensions
/// are productive, try the Y hop toward the corner `(x, dst.y)` first.
/// Returns the detour direction when that hop is live.
fn static_detour(plan: &FaultPlan, mesh: Mesh, from: NodeId, to: NodeId) -> Option<Direction> {
    let (a, b): (Coord, Coord) = (mesh.coord(from), mesh.coord(to));
    if a.x == b.x || a.y == b.y {
        return None;
    }
    let dir = if b.y > a.y {
        Direction::South
    } else {
        Direction::North
    };
    (!ever_blocked(plan, mesh, from, dir)).then_some(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phastlane_netsim::fault::{Fault, FaultKind};

    #[test]
    fn paper_mesh_xy_is_deadlock_free() {
        // Known answer: the 8x8 mesh under fault-free dimension-order
        // routing obeys the XY turn model, so its CDG must be acyclic.
        let cdg = Cdg::of_mesh_xy(Mesh::PAPER, &FaultPlan::new());
        assert!(cdg.edge_count() > 0, "the CDG is non-trivial");
        assert_eq!(cdg.shortest_cycle(), None);
    }

    #[test]
    fn all_mesh_sizes_stay_acyclic_without_faults() {
        for (w, h) in [(2, 2), (4, 4), (8, 2), (3, 5)] {
            let cdg = Cdg::of_mesh_xy(Mesh::new(w, h), &FaultPlan::new());
            assert_eq!(cdg.shortest_cycle(), None, "{w}x{h}");
        }
    }

    #[test]
    fn torus_ring_dor_yields_the_full_ring_witness() {
        // Known answer: naive DOR on a wraparound ring closes the
        // textbook channel cycle through every ring link — the witness
        // is the whole ring, every hop eastward.
        let cdg = Cdg::of_ring_dor(4);
        let witness = cdg.shortest_cycle().expect("ring DOR deadlocks");
        assert_eq!(witness.len(), 4);
        for (i, c) in witness.iter().enumerate() {
            assert_eq!(c.dir, Direction::East);
            // Consecutive witness channels chain around the ring.
            let next = &witness[(i + 1) % witness.len()];
            assert_eq!((c.node.0 + 1) % 4, next.node.0);
        }
    }

    #[test]
    fn witness_is_minimal() {
        // A hand-built CDG with a 5-cycle and a 2-cycle: the witness
        // must be the 2-cycle.
        let mut cdg = Cdg::new(4);
        let c = |node: u16, dir| Channel {
            node: NodeId(node),
            dir,
        };
        let five = [
            c(0, Direction::East),
            c(1, Direction::East),
            c(2, Direction::East),
            c(3, Direction::West),
            c(2, Direction::West),
        ];
        for i in 0..five.len() {
            cdg.add_dependency(five[i], five[(i + 1) % five.len()]);
        }
        cdg.add_dependency(c(1, Direction::North), c(1, Direction::South));
        cdg.add_dependency(c(1, Direction::South), c(1, Direction::North));
        let witness = cdg.shortest_cycle().expect("cycles exist");
        assert_eq!(witness.len(), 2, "{witness:?}");
    }

    #[test]
    fn route_walk_matches_xy_when_fault_free() {
        let mesh = Mesh::new(4, 4);
        let plan = FaultPlan::new();
        for src in mesh.iter_nodes() {
            for dst in mesh.iter_nodes() {
                match route_walk(mesh, &plan, src, dst) {
                    Walk::Reached(channels) => {
                        assert_eq!(channels.len() as u32, mesh.distance(src, dst));
                    }
                    Walk::Partitioned { .. } => panic!("{src}->{dst} partitioned without faults"),
                }
            }
        }
    }

    #[test]
    fn route_walk_detours_around_a_dead_link() {
        // 0 -> 5 on a 4x4 mesh with the east link out of 0 dead: the
        // static walk must mirror productive_detour and go south first.
        let mesh = Mesh::new(4, 4);
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LinkDown {
            node: NodeId(0),
            dir: Direction::East,
        }));
        match route_walk(mesh, &plan, NodeId(0), NodeId(5)) {
            Walk::Reached(channels) => {
                assert_eq!(channels[0].dir, Direction::South);
                assert_eq!(channels.len(), 2);
            }
            w => panic!("expected a detour, got {w:?}"),
        }
        // 0 -> 1 shares the row: no productive alternative.
        assert_eq!(
            route_walk(mesh, &plan, NodeId(0), NodeId(1)),
            Walk::Partitioned {
                at: NodeId(0),
                walked: vec![]
            }
        );
    }

    #[test]
    fn transient_faults_count_as_worst_case() {
        let mesh = Mesh::new(4, 4);
        let mut plan = FaultPlan::new();
        plan.push(Fault::transient(
            FaultKind::LinkDown {
                node: NodeId(0),
                dir: Direction::East,
            },
            100,
            10,
        ));
        assert!(ever_blocked(&plan, mesh, NodeId(0), Direction::East));
        assert!(!ever_blocked(&plan, mesh, NodeId(1), Direction::East));
    }

    #[test]
    fn channel_display_and_index_roundtrip() {
        let cdg = Cdg::new(16);
        for node in 0..16u16 {
            for dir in Direction::ALL {
                let c = Channel {
                    node: NodeId(node),
                    dir,
                };
                assert_eq!(cdg.channel(cdg.index(c)), c);
            }
        }
        let c = Channel {
            node: NodeId(3),
            dir: Direction::East,
        };
        assert_eq!(c.to_string(), "n3->E");
    }
}
