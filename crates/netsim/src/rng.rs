//! A small, deterministic, in-tree pseudo-random number generator.
//!
//! The workspace must build and test with **zero external crates** (the
//! crates-io registry is unreachable in the offline environments this
//! reproduction targets), so the simulators seed their stochastic choices
//! — Bernoulli injection, uniform destinations, backoff jitter — from this
//! xoshiro256++ generator instead of the `rand` crate.
//!
//! xoshiro256++ (Blackman & Vigna, 2019) passes BigCrush, has a 2^256-1
//! period, and needs four words of state. Seeding expands a single `u64`
//! through SplitMix64, the recommended companion seeder, so nearby seeds
//! still produce uncorrelated streams.
//!
//! The API mirrors the subset of `rand` the workspace used (`gen_bool`,
//! `gen_range`, raw words), which keeps call sites unchanged:
//!
//! ```
//! use phastlane_netsim::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(7);
//! let coin = rng.gen_bool(0.5);
//! let lane = rng.gen_range(0..64usize);
//! assert!(lane < 64);
//! let _ = coin;
//! ```

/// The golden-ratio increment of SplitMix64, shared by every seed mixer
/// in the workspace.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One step of SplitMix64: the standard 64-bit seed expander.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 finalizer over `seed ^ (stream * golden-gamma)`: a pure
/// stateless hash of a `(seed, stream)` pair.
///
/// This is the workspace's one sampling hash — the flight recorder's
/// packet-pinning decision (`mix64(seed, packet_id) % interval == 0`)
/// is built on it. The output stream is **pinned by unit tests**:
/// changing it silently reshuffles every committed flight-recorder dump.
#[inline]
#[must_use]
pub fn mix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for stream `stream` of a master seed:
/// seed a [`SimRng`] from `base ^ ((stream + 1) * golden-gamma)` and
/// take its first word. A pure function of its arguments — thread
/// scheduling can never influence it.
///
/// This is the workspace's one per-job seed derivation — the lab's
/// matrix expansion (`JobSpec::seed`, `JobSpec::fault_seed`) is built
/// on it. The output stream is **pinned by unit tests**: changing it
/// silently reshuffles every committed lab baseline.
#[must_use]
pub fn derive_stream(base: u64, stream: u64) -> u64 {
    let mut rng = SimRng::seed_from_u64(base ^ (stream.wrapping_add(1)).wrapping_mul(GOLDEN_GAMMA));
    rng.next_u64()
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator from a single word via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// A uniformly-random `u64` (alias of [`next_u64`](Self::next_u64),
    /// matching the old `rng.gen::<u64>()` call sites).
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Unbiased uniform integer in `[0, bound)` by rejection sampling
    /// (Lemire's method without the multiply-shift shortcut: plain
    /// threshold rejection, branch taken ~never for small bounds).
    #[inline]
    fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Largest multiple of `bound` that fits in a u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types [`SimRng::gen_range`] can sample uniformly.
pub trait UniformSample: Sized {
    /// Draws a uniform sample from `range`.
    fn sample(rng: &mut SimRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample(rng: &mut SimRng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + rng.uniform_u64(span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    #[inline]
    fn sample(rng: &mut SimRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference value: seeding state with SplitMix64(0) and stepping
        // xoshiro256++ must be stable forever — a change here silently
        // reshuffles every seeded experiment in the repo.
        let mut r = SimRng::seed_from_u64(0);
        let first = r.next_u64();
        let mut r2 = SimRng::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
        // State is not all-zero (xoshiro's one forbidden state).
        assert_ne!(r.s, [0; 4]);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut r = SimRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.gen_range(0..8usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 reachable");
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..12);
            assert!((10..12).contains(&v));
        }
        for _ in 0..1_000 {
            let v = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = SimRng::seed_from_u64(4);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn mix64_stream_is_pinned() {
        // These exact values back the flight recorder's seeded sampling:
        // every committed flight dump assumes them. Never "improve" this
        // hash — add a new function instead.
        assert_eq!(mix64(0, 0), 0x0000_0000_0000_0000);
        assert_eq!(mix64(7, 1), 0xF75F_04CB_B5A1_A1DD);
        assert_eq!(mix64(7, 64), 0x66CD_2581_3E9B_65B8);
        assert_eq!(mix64(42, 12345), 0x05E1_36A1_322B_B773);
    }

    #[test]
    fn derive_stream_is_pinned() {
        // These exact values back every lab job seed (`JobSpec::seed`,
        // `JobSpec::fault_seed`): every committed lab baseline assumes
        // them. Never reseed differently — add a new function instead.
        assert_eq!(derive_stream(7, 0), 0x88F1_F658_4401_C8CC);
        assert_eq!(derive_stream(7, 1), 0x8BD8_A0BC_D470_C2B0);
        assert_eq!(derive_stream(11, 3), 0x583A_6E92_4C7D_553F);
        assert_eq!(derive_stream(7, 0xFA17_0000), 0x2F50_39A6_9C0E_5E2E);
    }

    #[test]
    fn mix64_and_derive_stream_are_distinct_streams() {
        // The two mixers deliberately differ (stateless finalizer vs.
        // xoshiro first word): collapsing them would alias the flight
        // recorder's sampling onto the lab's seed schedule.
        for (seed, stream) in [(0, 0), (7, 1), (42, 12345)] {
            assert_ne!(mix64(seed, stream), derive_stream(seed, stream));
        }
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 16];
        let n = 64_000;
        for _ in 0..n {
            counts[r.gen_range(0..16usize)] += 1;
        }
        let expect = (n / 16) as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.10, "bucket {i} off by {:.1}%", dev * 100.0);
        }
    }
}
