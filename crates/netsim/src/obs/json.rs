//! A dependency-free JSON document model: serializer and (small)
//! parser.
//!
//! The crates-io registry is unreachable in the environments this
//! reproduction targets, so exports cannot lean on `serde`. This module
//! implements the subset the observability layer needs:
//!
//! * objects keep **insertion order** (a `Vec` of pairs, not a map), so
//!   serialization is deterministic — two identical runs produce
//!   byte-identical files, which is what makes traces diffable;
//! * floats serialize via Rust's shortest-roundtrip `Display`, and
//!   non-finite floats become `null`;
//! * the parser accepts exactly the documents the serializer writes
//!   (plus arbitrary whitespace), enough for `phastlane trace-dump` to
//!   re-read its own traces.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters/cycles).
    Uint(u64),
    /// A signed integer.
    Int(i64),
    /// A float (serialized shortest-roundtrip; non-finite → `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(n) => out.push_str(&n.to_string()),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Num(x) => write_f64(*x, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(n) => Some(*n),
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Uint(n) => Some(*n as f64),
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats readable and stable: `3` not `3.0`... but
        // JSON-distinguishable from our Uint path is unnecessary; emit
        // with a trailing `.0` so the type survives a roundtrip.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("bad escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| self.err("bad number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(JsonValue::Int)
                .ok_or_else(|| self.err("bad integer"))
        } else {
            text.parse::<u64>()
                .map(JsonValue::Uint)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let doc = JsonValue::Obj(vec![
            ("n".into(), JsonValue::Uint(42)),
            ("neg".into(), JsonValue::Int(-7)),
            ("f".into(), JsonValue::Num(1.5)),
            ("s".into(), JsonValue::Str("hi \"there\"\n".into())),
            (
                "a".into(),
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
            ("o".into(), JsonValue::Obj(vec![])),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn pretty_roundtrip() {
        let doc = JsonValue::Arr(vec![
            JsonValue::Obj(vec![("k".into(), JsonValue::Uint(1))]),
            JsonValue::Arr(vec![]),
        ]);
        assert_eq!(parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn insertion_order_preserved() {
        let doc = JsonValue::Obj(vec![
            ("z".into(), JsonValue::Uint(1)),
            ("a".into(), JsonValue::Uint(2)),
        ]);
        assert_eq!(doc.to_string_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn floats_stable() {
        assert_eq!(JsonValue::Num(3.0).to_string_compact(), "3.0");
        assert_eq!(JsonValue::Num(0.25).to_string_compact(), "0.25");
        assert_eq!(JsonValue::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": [1, 2.5, "x"], "b": -3}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(-3.0));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unicode_and_escapes() {
        let doc = JsonValue::Str("héllo → ω \u{1}".into());
        assert_eq!(parse(&doc.to_string_compact()).unwrap(), doc);
        assert_eq!(parse(r#""A""#).unwrap(), JsonValue::Str("A".into()));
    }

    #[test]
    fn malformed_rejected() {
        for bad in ["", "{", "[1,", "{\"k\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn large_u64_roundtrip() {
        let doc = JsonValue::Uint(u64::MAX);
        assert_eq!(
            parse(&doc.to_string_compact()).unwrap().as_u64(),
            Some(u64::MAX)
        );
    }
}
