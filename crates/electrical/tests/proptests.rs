//! Property-based tests of the electrical baseline's allocator and
//! multicast tree.

use phastlane_electrical::islip::Islip;
use phastlane_electrical::vctm::{mask_contains, mask_len, mask_of, tree_fork};
use phastlane_netsim::geometry::{Mesh, NodeId};
use proptest::prelude::*;

fn arb_requests() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..4, 0..4), 5)
}

proptest! {
    /// iSLIP matches are conflict-free: each output granted at most once,
    /// each input within its capacity, and every match was requested.
    #[test]
    fn islip_matches_are_valid(
        reqs in arb_requests(),
        capacity in 1usize..5,
        iterations in 1usize..4,
        rounds in 1usize..6,
    ) {
        let mut alloc = Islip::new(5, 4);
        for _ in 0..rounds {
            let matches = alloc.allocate(&reqs, capacity, iterations);
            let mut out_seen = [false; 4];
            let mut in_count = [0usize; 5];
            for &(i, o) in &matches {
                prop_assert!(reqs[i].contains(&o), "unrequested match ({i},{o})");
                prop_assert!(!out_seen[o], "output {o} matched twice");
                out_seen[o] = true;
                in_count[i] += 1;
            }
            for (i, &c) in in_count.iter().enumerate() {
                prop_assert!(c <= capacity, "input {i} over capacity");
            }
        }
    }

    /// iSLIP is work-conserving for single requests: a lone
    /// (input, output) request is always granted.
    #[test]
    fn islip_grants_lone_request(inp in 0usize..5, out in 0usize..4, rounds in 1usize..8) {
        let mut alloc = Islip::new(5, 4);
        let mut reqs: Vec<Vec<usize>> = vec![Vec::new(); 5];
        reqs[inp].push(out);
        for _ in 0..rounds {
            let matches = alloc.allocate(&reqs, 4, 2);
            prop_assert_eq!(&matches, &vec![(inp, out)]);
        }
    }

    /// The VCTM tree partitions any target mask: walking the whole tree
    /// delivers each masked node exactly once and nothing else.
    #[test]
    fn vctm_tree_partitions_any_mask(
        src in 0u16..64,
        nodes in proptest::collection::hash_set(0u16..64, 0..30),
    ) {
        let mesh = Mesh::PAPER;
        let src = NodeId(src);
        let targets: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
        let mask = mask_of(&targets);
        let mut delivered = Vec::new();
        let mut frontier = vec![(src, mask)];
        let mut steps = 0;
        while let Some((at, m)) = frontier.pop() {
            steps += 1;
            prop_assert!(steps < 1000, "tree walk diverged");
            let (branches, deliver) = tree_fork(mesh, src, at, m);
            if deliver {
                delivered.push(at);
            }
            let mut seen = if deliver {
                phastlane_netsim::mask::NodeMask::from_nodes([at])
            } else {
                phastlane_netsim::mask::NodeMask::EMPTY
            };
            for b in &branches {
                prop_assert!(!seen.intersects(&b.submask), "overlapping branches");
                seen = seen.or(&b.submask);
                let next = mesh.neighbor(at, b.out).expect("stays in mesh");
                frontier.push((next, b.submask));
            }
            prop_assert_eq!(seen, m, "branches + local must cover the mask");
        }
        delivered.sort_unstable();
        let mut expect: Vec<NodeId> = targets.clone();
        expect.sort_unstable();
        prop_assert_eq!(delivered, expect);
    }

    /// Mask helpers agree with each other.
    #[test]
    fn mask_helpers_consistent(nodes in proptest::collection::hash_set(0u16..64, 0..64)) {
        let list: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
        let mask = mask_of(&list);
        prop_assert_eq!(mask_len(mask), list.len());
        for n in 0..64u16 {
            prop_assert_eq!(mask_contains(mask, NodeId(n)), nodes.contains(&n));
        }
    }
}
