//! Cache-accurate coherence trace generation: the higher-fidelity
//! alternative to the statistical synthesizer in [`crate::coherence`].
//!
//! Each core runs a synthetic address stream through a real Table 4 cache
//! hierarchy ([`crate::cache`]). Only actual L2 misses, upgrades of
//! genuinely shared lines, and real dirty evictions generate network
//! messages, with a global line-state map (the generator's omniscient
//! view of the snoopy protocol) deciding who responds:
//!
//! * **GetS/GetX broadcast** on an L2 miss; the data response comes from
//!   the dirty owner or a sharer (cache-to-cache latency) when one
//!   exists, otherwise from the block's home memory controller (80-cycle
//!   memory latency);
//! * **Invalidate broadcast** when a core writes a line that other
//!   caches share (the remote hierarchies really invalidate, raising
//!   their future miss rates);
//! * **Writeback** to the home controller on a dirty L2 eviction.
//!
//! Timing is closed-loop exactly as in [`crate::coherence`]: compute and
//! hit cycles accumulate into think-times on the MSHR-window dependency.

use crate::cache::{CacheHierarchy, HierarchyOutcome};
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::harness::{Dep, MsgId, Trace, TraceMessage};
use phastlane_netsim::mask::NodeMask;
use phastlane_netsim::packet::{DestSet, PacketKind};
use phastlane_netsim::rng::SimRng;

/// Cycles an L1 hit costs the core.
pub const L1_HIT_CYCLES: u64 = 1;
/// Cycles an L2 hit costs the core.
pub const L2_HIT_CYCLES: u64 = 8;

/// An address-stream + cache workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheWorkload {
    /// Workload name.
    pub name: &'static str,
    /// Memory accesses each active core performs.
    pub accesses_per_core: usize,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Per-core private region size in bytes.
    pub private_bytes: u64,
    /// Shared region size in bytes (one region for all cores).
    pub shared_bytes: u64,
    /// Probability an access targets the shared region.
    pub shared_fraction: f64,
    /// Probability an access continues sequentially from the previous
    /// one (vs. jumping to a random address in the region).
    pub locality: f64,
    /// Compute cycles between consecutive accesses.
    pub compute_per_access: u64,
    /// Outstanding-miss window per core.
    pub outstanding: usize,
    /// Number of actively-missing cores.
    pub active_cores: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CacheWorkload {
    /// A dense streaming workload: long sequential sweeps over a shared
    /// array (FFT/Ocean-like).
    pub fn streaming() -> Self {
        CacheWorkload {
            name: "streaming",
            accesses_per_core: 30_000,
            write_fraction: 0.3,
            private_bytes: 64 * 1024,
            shared_bytes: 8 * 1024 * 1024,
            shared_fraction: 0.6,
            locality: 0.95,
            compute_per_access: 1,
            outstanding: 4,
            active_cores: 64,
            seed: 0xCAC4_E001,
        }
    }

    /// A pointer-chasing workload: poor locality over a large shared
    /// heap (Barnes/Raytrace-like).
    pub fn pointer_chase() -> Self {
        CacheWorkload {
            name: "pointer-chase",
            accesses_per_core: 12_000,
            write_fraction: 0.1,
            private_bytes: 32 * 1024,
            shared_bytes: 16 * 1024 * 1024,
            shared_fraction: 0.7,
            locality: 0.35,
            compute_per_access: 2,
            outstanding: 1,
            active_cores: 32,
            seed: 0xCAC4_E002,
        }
    }

    /// A write-sharing workload: cores ping-pong ownership of a small hot
    /// shared set (lock/flag-like), maximizing invalidations.
    pub fn write_sharing() -> Self {
        CacheWorkload {
            name: "write-sharing",
            accesses_per_core: 8_000,
            write_fraction: 0.5,
            private_bytes: 32 * 1024,
            shared_bytes: 64 * 1024,
            shared_fraction: 0.5,
            locality: 0.5,
            compute_per_access: 3,
            outstanding: 2,
            active_cores: 64,
            seed: 0xCAC4_E003,
        }
    }
}

/// Global (omniscient) state of one cache line in the snoopy protocol.
#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    /// Cores whose L2 may hold the line.
    sharers: NodeMask,
    /// Core holding the line modified, if any.
    owner: Option<u16>,
}

/// Summary of the cache simulation behind a generated trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheSimReport {
    /// Total memory accesses simulated.
    pub accesses: u64,
    /// L2 misses (network fetches).
    pub l2_misses: u64,
    /// Upgrade invalidations of genuinely shared lines.
    pub invalidations: u64,
    /// Dirty-eviction writebacks.
    pub writebacks: u64,
    /// Responses served cache-to-cache (vs. memory).
    pub cache_to_cache: u64,
}

impl CacheSimReport {
    /// Global L2 miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.accesses as f64
        }
    }
}

/// Runs the cache simulation and produces a closed-loop coherence trace.
///
/// # Panics
///
/// Panics on a degenerate workload (zero accesses, cores, or window).
pub fn generate_cache_trace(mesh: Mesh, w: &CacheWorkload) -> (Trace, CacheSimReport) {
    assert!(w.accesses_per_core > 0, "workload performs no accesses");
    assert!(w.outstanding > 0, "outstanding window must be positive");
    assert!(w.active_cores > 0, "need at least one active core");
    let nodes = mesh.nodes();
    let active = w.active_cores.min(nodes);
    let mut rng = SimRng::seed_from_u64(w.seed);

    let mut hierarchies: Vec<CacheHierarchy> =
        (0..active).map(|_| CacheHierarchy::table4()).collect();
    let mut lines: std::collections::HashMap<u64, LineState> = std::collections::HashMap::new();
    let mut report = CacheSimReport::default();

    let mut messages: Vec<TraceMessage> = Vec::new();
    let mut next_id = 0u32;
    // Per-core: response ids of past misses (window deps) and the compute
    // time accumulated since the previous miss.
    let mut responses: Vec<Vec<MsgId>> = vec![Vec::new(); active];
    let mut gap: Vec<u64> = vec![0; active];
    // Per-core address cursors.
    let mut cursor_priv: Vec<u64> = (0..active).map(|_| 0).collect();
    let mut cursor_shared: Vec<u64> = (0..active as u64).map(|c| c * 4096).collect();

    // Interleave cores access by access so shared-line interactions are
    // realistic.
    for _round in 0..w.accesses_per_core {
        for core_idx in 0..active {
            let core = NodeId(core_idx as u16);
            report.accesses += 1;
            let shared = rng.gen_bool(w.shared_fraction);
            let write = rng.gen_bool(w.write_fraction);

            // Next address: sequential with probability `locality`.
            let addr = if shared {
                let cur = &mut cursor_shared[core_idx];
                if rng.gen_bool(w.locality) {
                    *cur = (*cur + 8) % w.shared_bytes;
                } else {
                    *cur = rng.gen_range(0..w.shared_bytes / 8) * 8;
                }
                // Shared region lives above every private region.
                (nodes as u64) * w.private_bytes + *cur
            } else {
                let cur = &mut cursor_priv[core_idx];
                if rng.gen_bool(w.locality) {
                    *cur = (*cur + 8) % w.private_bytes;
                } else {
                    *cur = rng.gen_range(0..w.private_bytes / 8) * 8;
                }
                (core_idx as u64) * w.private_bytes + *cur
            };

            let block = crate::cache::CacheConfig::L2_SIM.block_of(addr);
            let outcome = hierarchies[core_idx].access(addr, write);
            match outcome {
                HierarchyOutcome::L1Hit => {
                    gap[core_idx] += w.compute_per_access + L1_HIT_CYCLES;
                    if write {
                        upgrade_if_shared(
                            mesh,
                            core,
                            block,
                            &mut lines,
                            &mut hierarchies,
                            &mut messages,
                            &mut next_id,
                            &mut report,
                            &responses[core_idx],
                            w,
                            gap[core_idx],
                        );
                    }
                }
                HierarchyOutcome::L2Hit => {
                    gap[core_idx] += w.compute_per_access + L2_HIT_CYCLES;
                    if write {
                        upgrade_if_shared(
                            mesh,
                            core,
                            block,
                            &mut lines,
                            &mut hierarchies,
                            &mut messages,
                            &mut next_id,
                            &mut report,
                            &responses[core_idx],
                            w,
                            gap[core_idx],
                        );
                    }
                }
                HierarchyOutcome::L2Miss {
                    block: l2_block,
                    writeback,
                } => {
                    report.l2_misses += 1;
                    let i = responses[core_idx].len();
                    let mut deps: Vec<Dep> = Vec::new();
                    if i >= w.outstanding {
                        deps.push(Dep::at(responses[core_idx][i - w.outstanding], core));
                    }
                    let think = gap[core_idx] + w.compute_per_access;
                    gap[core_idx] = 0;

                    let state = lines.entry(l2_block).or_default();
                    // Pick the responder before updating sharers.
                    let responder = pick_responder(mesh, core, state, block, &mut report);
                    if write {
                        // GetX: every other sharer invalidates for real.
                        invalidate_others(core, l2_block, state, &mut hierarchies, active);
                        state.sharers = NodeMask::from_nodes([core]);
                        state.owner = Some(core_idx as u16);
                    } else {
                        state.sharers.insert(core);
                        if state.owner.is_some() && state.owner != Some(core_idx as u16) {
                            state.owner = None; // downgrade to shared
                        }
                    }

                    let kind = if write {
                        PacketKind::WriteRequest
                    } else {
                        PacketKind::ReadRequest
                    };
                    let req_id = MsgId(next_id);
                    next_id += 1;
                    messages.push(TraceMessage {
                        id: req_id,
                        src: core,
                        dests: DestSet::Broadcast,
                        kind,
                        earliest: if deps.is_empty() { think } else { 0 },
                        deps,
                        think,
                    });

                    let (owner_node, resp_latency) = responder;
                    let resp_id = MsgId(next_id);
                    next_id += 1;
                    messages.push(TraceMessage {
                        id: resp_id,
                        src: owner_node,
                        dests: DestSet::Unicast(core),
                        kind: PacketKind::DataResponse,
                        earliest: 0,
                        deps: vec![Dep::at(req_id, owner_node)],
                        think: resp_latency,
                    });
                    responses[core_idx].push(resp_id);

                    if let Some(victim) = writeback {
                        report.writebacks += 1;
                        let home = home_of(mesh, victim);
                        // Writebacks from the core to a (possibly equal)
                        // home node; self-sends resolve instantly.
                        let wb_id = MsgId(next_id);
                        next_id += 1;
                        messages.push(TraceMessage {
                            id: wb_id,
                            src: core,
                            dests: DestSet::Unicast(home),
                            kind: PacketKind::Writeback,
                            earliest: 0,
                            deps: vec![Dep::at(req_id, pick_dep_node(mesh, core, home))],
                            think: 0,
                        });
                        lines.remove(&victim);
                    }
                }
            }
        }
    }

    let trace = Trace { messages };
    debug_assert!(trace.validate().is_ok());
    (trace, report)
}

/// Home memory controller of a block (cache-line interleaved, §2).
fn home_of(mesh: Mesh, block: u64) -> NodeId {
    NodeId(((block / 64) % mesh.nodes() as u64) as u16)
}

/// A node the writeback can key its dependency on: the request's
/// delivery at `home`, unless home is the writing core itself (the
/// request broadcast never reaches its own source), in which case any
/// other broadcast destination works; we use the neighbouring node.
fn pick_dep_node(mesh: Mesh, core: NodeId, home: NodeId) -> NodeId {
    if home != core {
        home
    } else {
        mesh.iter_nodes()
            .find(|&n| n != core)
            .expect("mesh has >= 2 nodes")
    }
}

fn pick_responder(
    mesh: Mesh,
    requester: NodeId,
    state: &LineState,
    block: u64,
    report: &mut CacheSimReport,
) -> (NodeId, u64) {
    if let Some(owner) = state.owner {
        if NodeId(owner) != requester {
            report.cache_to_cache += 1;
            return (NodeId(owner), crate::coherence::CACHE_LATENCY);
        }
    }
    // Any sharer other than the requester can forward the line.
    let mut sharers = state.sharers;
    sharers.remove(requester);
    if let Some(first) = sharers.iter().next() {
        report.cache_to_cache += 1;
        return (first, crate::coherence::CACHE_LATENCY);
    }
    (
        home_or_other(mesh, requester, block),
        crate::coherence::MEMORY_LATENCY,
    )
}

/// The home controller, bounced to a neighbour when it equals the
/// requester (a self-send response would vanish).
fn home_or_other(mesh: Mesh, requester: NodeId, block: u64) -> NodeId {
    let home = home_of(mesh, block);
    if home != requester {
        home
    } else {
        mesh.iter_nodes()
            .find(|&n| n != requester)
            .expect("mesh has >= 2 nodes")
    }
}

#[allow(clippy::too_many_arguments)]
fn upgrade_if_shared(
    _mesh: Mesh,
    core: NodeId,
    block: u64,
    lines: &mut std::collections::HashMap<u64, LineState>,
    hierarchies: &mut [CacheHierarchy],
    messages: &mut Vec<TraceMessage>,
    next_id: &mut u32,
    report: &mut CacheSimReport,
    responses: &[MsgId],
    w: &CacheWorkload,
    gap_now: u64,
) {
    let Some(state) = lines.get_mut(&block) else {
        return;
    };
    let mut others = state.sharers;
    others.remove(core);
    if state.owner == Some(core.0) || others.is_empty() {
        state.owner = Some(core.0);
        state.sharers.insert(core);
        return;
    }
    // A genuine upgrade: broadcast an invalidate; remote caches lose the
    // line for real.
    report.invalidations += 1;
    invalidate_others(core, block, state, hierarchies, hierarchies.len());
    state.sharers = NodeMask::from_nodes([core]);
    state.owner = Some(core.0);

    let deps = responses
        .last()
        .map(|&r| vec![Dep::at(r, core)])
        .unwrap_or_default();
    let id = MsgId(*next_id);
    *next_id += 1;
    messages.push(TraceMessage {
        id,
        src: core,
        dests: DestSet::Broadcast,
        kind: PacketKind::Invalidate,
        earliest: if deps.is_empty() { gap_now } else { 0 },
        deps,
        think: w.compute_per_access,
    });
}

fn invalidate_others(
    core: NodeId,
    block: u64,
    state: &LineState,
    hierarchies: &mut [CacheHierarchy],
    active: usize,
) {
    let mut sharers = state.sharers;
    sharers.remove(core);
    for n in sharers.iter() {
        if n.index() < active {
            hierarchies[n.index()].invalidate(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(w: &mut CacheWorkload) {
        w.accesses_per_core = 400;
        w.active_cores = 16;
    }

    #[test]
    fn streaming_trace_validates() {
        let mut w = CacheWorkload::streaming();
        tiny(&mut w);
        let (trace, report) = generate_cache_trace(Mesh::PAPER, &w);
        assert!(trace.validate().is_ok());
        assert!(report.l2_misses > 0, "cold caches must miss");
        assert_eq!(report.accesses, 400 * 16);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut w = CacheWorkload::pointer_chase();
        tiny(&mut w);
        let (a, ra) = generate_cache_trace(Mesh::PAPER, &w);
        let (b, rb) = generate_cache_trace(Mesh::PAPER, &w);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn write_sharing_generates_invalidations() {
        let mut w = CacheWorkload::write_sharing();
        tiny(&mut w);
        let (_, report) = generate_cache_trace(Mesh::PAPER, &w);
        assert!(
            report.invalidations > 0,
            "write-shared hot lines must trigger upgrades: {report:?}"
        );
        assert!(report.cache_to_cache > 0, "sharers should serve data");
    }

    #[test]
    fn pointer_chase_misses_more_than_streaming() {
        let mut s = CacheWorkload::streaming();
        let mut p = CacheWorkload::pointer_chase();
        tiny(&mut s);
        tiny(&mut p);
        let (_, rs) = generate_cache_trace(Mesh::PAPER, &s);
        let (_, rp) = generate_cache_trace(Mesh::PAPER, &p);
        assert!(
            rp.miss_ratio() > rs.miss_ratio(),
            "random chasing {:.3} should out-miss sequential streaming {:.3}",
            rp.miss_ratio(),
            rs.miss_ratio()
        );
    }

    #[test]
    fn writebacks_appear_under_write_pressure() {
        let mut w = CacheWorkload::streaming();
        tiny(&mut w);
        w.write_fraction = 0.9;
        // Random dirty writes over a region far beyond the 256 KB L2
        // force dirty capacity evictions.
        w.locality = 0.05;
        w.shared_fraction = 0.9;
        w.accesses_per_core = 9_000;
        w.active_cores = 4;
        let (_, report) = generate_cache_trace(Mesh::PAPER, &w);
        assert!(
            report.writebacks > 0,
            "dirty evictions expected: {report:?}"
        );
    }

    #[test]
    fn private_only_workload_has_no_cache_to_cache() {
        let mut w = CacheWorkload::streaming();
        tiny(&mut w);
        w.shared_fraction = 0.0;
        let (_, report) = generate_cache_trace(Mesh::PAPER, &w);
        assert_eq!(report.cache_to_cache, 0, "private lines have no sharers");
        assert_eq!(report.invalidations, 0);
    }

    #[test]
    fn home_interleaving_covers_nodes() {
        let homes: std::collections::HashSet<u16> =
            (0..64u64).map(|i| home_of(Mesh::PAPER, i * 64).0).collect();
        assert_eq!(homes.len(), 64, "cache-line interleaving spreads homes");
    }
}
