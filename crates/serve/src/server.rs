//! The job server: a nonblocking accept loop, a bounded job queue, a
//! persistent worker pool, and the route table tying HTTP paths to the
//! registry, the event fan-outs, and the baseline store.
//!
//! Threading model (documented in DESIGN.md §Serving layer):
//!
//! * **accept thread** — polls a nonblocking listener, spawns one
//!   short-lived handler thread per connection (one request per
//!   connection, so there is no keep-alive state to manage);
//! * **worker pool** — `workers` threads blocking on a condvar'd
//!   `VecDeque<job id>`; each pops an id, runs the lab through the
//!   exact same `run_lab_opts` entry point the CLI uses, and records
//!   the canonical result;
//! * **handler threads** — parse, route, respond, exit. Event-stream
//!   handlers live as long as their subscriber but only ever *poll*
//!   the fan-out; a slow or wedged consumer sheds events in its own
//!   bounded queue and never blocks a worker.
//!
//! Determinism contract: the canonical report served for a job is the
//! byte-for-byte output of `LabReport::canonical_json().to_string_pretty()`
//! — the same bytes `phastlane lab run --report-out` writes — no matter
//! how many sessions are submitting, watching, or polling concurrently.

use crate::http;
use crate::registry::{Registry, WorkItem};
use phastlane_lab::journal::Journal;
use phastlane_lab::scheduler::{run_lab_opts, RunOptions};
use phastlane_lab::spec::LabSpec;
use phastlane_lab::store::{self, StoreError};
use phastlane_netsim::obs::json::{self, JsonValue};
use phastlane_netsim::obs::{EventSink, FanoutPoll, EVENT_SCHEMA_VERSION};
use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// How long a worker waits on the queue condvar before re-checking the
/// shutdown flag.
const QUEUE_POLL: Duration = Duration::from_millis(100);

/// How long an event-stream handler sleeps between fan-out polls.
const EVENT_POLL: Duration = Duration::from_millis(25);

/// Server socket read timeout (a stalled peer cannot pin a handler).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server socket write timeout.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything configurable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7690` (`:0` picks a free port).
    pub addr: String,
    /// Worker-pool threads (concurrent jobs), clamped to ≥ 1.
    pub workers: usize,
    /// Most jobs allowed to wait in the queue; submissions beyond it
    /// are rejected with `429`.
    pub queue_depth: usize,
    /// Directory the baseline endpoints read from.
    pub baseline_dir: PathBuf,
    /// Directory for job persistence; `None` disables persistence.
    pub state_dir: Option<PathBuf>,
    /// Whether `POST /shutdown` is honoured (CI and tests); without it
    /// the endpoint answers `403` and only signals stop the server.
    pub allow_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            baseline_dir: PathBuf::from("results/baselines"),
            state_dir: None,
            allow_shutdown: false,
        }
    }
}

/// State shared by the accept loop, handlers, and the worker pool.
struct Shared {
    registry: Registry,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    queue_depth: usize,
    baseline_dir: PathBuf,
    allow_shutdown: bool,
    shutdown: AtomicBool,
    rejected: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue_cv.notify_all();
    }
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// `[total, queued, running, done, failed, cancelled]` job counts
    /// at shutdown.
    pub jobs: [u64; 6],
    /// Submissions rejected with `429`.
    pub rejected: u64,
}

/// A running server: its bound address plus the handles needed to stop
/// it and reap its threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: String,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Asks the server to stop: no new jobs are accepted, queued jobs
    /// are cancelled, and in-flight runs are cancelled cooperatively.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
        self.shared.registry.cancel_all();
    }

    /// Whether a shutdown was requested (by signal, endpoint, or
    /// [`request_shutdown`](ServerHandle::request_shutdown)).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Stops the server (idempotent with
    /// [`request_shutdown`](ServerHandle::request_shutdown)), waits for
    /// the accept loop and every worker to exit, and returns the final
    /// accounting. Job state was persisted at every transition, so
    /// nothing extra needs flushing here.
    pub fn join(self) -> ServeSummary {
        self.request_shutdown();
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
        ServeSummary {
            jobs: self.shared.registry.counts(),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Binds, recovers persisted jobs, starts the pool, and begins
/// accepting connections.
///
/// # Errors
///
/// If the address cannot be bound or the state directory cannot be
/// opened.
pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking: {e}"))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?
        .to_string();

    let (registry, requeue) = Registry::open(config.state_dir.as_deref())?;
    let shared = Arc::new(Shared {
        registry,
        queue: Mutex::new(requeue.into_iter().collect()),
        queue_cv: Condvar::new(),
        queue_depth: config.queue_depth.max(1),
        baseline_dir: config.baseline_dir.clone(),
        allow_shutdown: config.allow_shutdown,
        shutdown: AtomicBool::new(false),
        rejected: AtomicU64::new(0),
    });

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };

    Ok(ServerHandle {
        shared,
        local_addr,
        accept,
        workers,
    })
}

/// Polls the nonblocking listener, handing each connection to its own
/// short-lived thread. Polling (instead of a blocking accept) is what
/// lets a signal-initiated shutdown take effect promptly: glibc
/// installs signal handlers with `SA_RESTART`, so a blocking `accept`
/// would simply resume after the handler ran.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One pool worker: pop a job id, run it, repeat until shutdown.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(id) = q.pop_front() {
                    break Some(id);
                }
                if shared.shutting_down() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, QUEUE_POLL)
                    .expect("queue lock");
                q = guard;
            }
        };
        match id {
            Some(id) => run_job(shared, id),
            None => return,
        }
    }
}

/// Runs one job through the same entry point the CLI uses. Progress
/// flows through an [`EventSink`] writing into the job's fan-out;
/// none of the attached plumbing (sink, journal, cancel token) can
/// change a canonical bit of the report.
fn run_job(shared: &Shared, id: u64) {
    // A job cancelled while queued answers `start` with None.
    let Some(item) = shared.registry.start(id) else {
        return;
    };
    let WorkItem {
        spec,
        workers,
        resumed,
        cancel,
        events,
        journal_path,
        ..
    } = item;

    let sink = EventSink::new(Box::new(events.writer()), EventSink::DEFAULT_CAPACITY);
    let journal = journal_path
        .as_deref()
        .and_then(|p| Journal::create(p, &spec).ok());
    if let Some(j) = &journal {
        // Re-pin recovered records so the journal stays complete if
        // this process also dies mid-run.
        for rec in &resumed {
            j.append(rec);
        }
    }

    let result = run_lab_opts(
        &spec,
        RunOptions {
            workers,
            progress: Some(&sink),
            journal: journal.as_ref(),
            resumed,
            cancel: Some(&cancel),
        },
    );
    sink.finish();

    let cancelled = cancel.is_cancelled();
    let outcome = result.map(|report| report.canonical_json().to_string_pretty());
    shared.registry.finish(id, outcome, cancelled);
}

/// Reads, routes, and answers one request, then closes the connection.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    match http::read_request(&mut reader) {
        Ok(Some(req)) => route(shared, &req, &mut writer),
        Ok(None) => {}
        Err(e) => {
            let _ = http::respond(
                &mut writer,
                400,
                "application/json",
                error_body(&e).as_bytes(),
            );
        }
    }
}

/// A one-field JSON error payload.
fn error_body(message: &str) -> String {
    JsonValue::Obj(vec![
        (
            "schema_version".into(),
            JsonValue::Uint(EVENT_SCHEMA_VERSION),
        ),
        ("error".into(), JsonValue::Str(message.into())),
    ])
    .to_string_pretty()
}

fn respond_json(w: &mut impl Write, status: u16, body: &JsonValue) {
    let _ = http::respond(
        w,
        status,
        "application/json",
        body.to_string_pretty().as_bytes(),
    );
}

fn respond_error(w: &mut impl Write, status: u16, message: &str) {
    let _ = http::respond(
        w,
        status,
        "application/json",
        error_body(message).as_bytes(),
    );
}

/// The route table.
fn route(shared: &Arc<Shared>, req: &http::Request, w: &mut impl Write) {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit_job(shared, &req.body, w),
        ("GET", ["jobs"]) => respond_json(w, 200, &shared.registry.list_json()),
        ("GET", ["jobs", id]) => {
            match parse_id(id).and_then(|id| shared.registry.status_json(id)) {
                Some(status) => respond_json(w, 200, &status),
                None => respond_error(w, 404, "no such job"),
            }
        }
        ("GET", ["jobs", id, "report"]) => {
            match parse_id(id).and_then(|id| shared.registry.report(id)) {
                // The exact canonical bytes `lab run --report-out`
                // writes — this is what CI `cmp`s.
                Some(report) => {
                    let _ = http::respond(w, 200, "application/json", report.as_bytes());
                }
                None => respond_error(w, 404, "report not available"),
            }
        }
        ("GET", ["jobs", id, "events"]) => stream_events(shared, parse_id(id), w),
        ("POST", ["jobs", id, "cancel"]) => {
            match parse_id(id).and_then(|id| shared.registry.cancel(id).map(|s| (id, s))) {
                Some((id, status)) => respond_json(
                    w,
                    200,
                    &JsonValue::Obj(vec![
                        (
                            "schema_version".into(),
                            JsonValue::Uint(EVENT_SCHEMA_VERSION),
                        ),
                        ("id".into(), JsonValue::Uint(id)),
                        ("status".into(), JsonValue::Str(status.label().into())),
                    ]),
                ),
                None => respond_error(w, 404, "no such job"),
            }
        }
        ("GET", ["baselines"]) => list_baselines(shared, w),
        ("GET", ["baselines", name]) => read_baseline(shared, name, w),
        ("GET", ["healthz"]) => respond_json(
            w,
            200,
            &JsonValue::Obj(vec![
                (
                    "schema_version".into(),
                    JsonValue::Uint(EVENT_SCHEMA_VERSION),
                ),
                ("status".into(), JsonValue::Str("ok".into())),
            ]),
        ),
        ("GET", ["statsz"]) => respond_json(w, 200, &stats_json(shared)),
        ("POST", ["shutdown"]) => {
            if shared.allow_shutdown {
                shared.request_shutdown();
                shared.registry.cancel_all();
                respond_json(
                    w,
                    200,
                    &JsonValue::Obj(vec![
                        (
                            "schema_version".into(),
                            JsonValue::Uint(EVENT_SCHEMA_VERSION),
                        ),
                        ("status".into(), JsonValue::Str("shutting_down".into())),
                    ]),
                );
            } else {
                respond_error(w, 403, "shutdown endpoint disabled; send SIGTERM instead");
            }
        }
        ("GET" | "POST", _) => respond_error(w, 404, "no such route"),
        _ => respond_error(w, 405, "method not allowed"),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// `POST /jobs`: body is either a raw lab spec or a JSON envelope
/// `{"spec": "...", "workers": N}`. The spec must parse *and* pass the
/// static preflight — a statically doomed spec is a client error, not
/// a queued failure.
fn submit_job(shared: &Shared, body: &[u8], w: &mut impl Write) {
    let Ok(text) = std::str::from_utf8(body) else {
        return respond_error(w, 400, "body is not UTF-8");
    };
    let (spec_text, workers) = if text.trim_start().starts_with('{') {
        let parsed = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return respond_error(w, 400, &format!("bad JSON envelope: {e:?}")),
        };
        let Some(spec) = parsed.get("spec").and_then(JsonValue::as_str) else {
            return respond_error(w, 400, "JSON envelope is missing a \"spec\" string");
        };
        let workers = parsed
            .get("workers")
            .and_then(JsonValue::as_u64)
            .unwrap_or(1) as usize;
        (spec.to_string(), workers)
    } else {
        (text.to_string(), 1)
    };
    let spec = match LabSpec::parse(&spec_text) {
        Ok(s) => s,
        Err(e) => return respond_error(w, 400, &format!("bad spec: {e}")),
    };
    if let Err(e) = phastlane_analyze::preflight(&spec) {
        return respond_error(w, 400, &format!("preflight failed: {e}"));
    }
    if shared.shutting_down() {
        return respond_error(w, 503, "server is shutting down");
    }
    // Depth check and submit under the queue lock so concurrent
    // submissions cannot both squeeze into the last slot.
    let id = {
        let mut q = shared.queue.lock().expect("queue lock");
        if shared.registry.queued_count() >= shared.queue_depth {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            drop(q);
            return respond_error(w, 429, "job queue is full, retry later");
        }
        let id = shared.registry.submit(spec, workers.max(1));
        q.push_back(id);
        shared.queue_cv.notify_one();
        id
    };
    respond_json(
        w,
        202,
        &JsonValue::Obj(vec![
            (
                "schema_version".into(),
                JsonValue::Uint(EVENT_SCHEMA_VERSION),
            ),
            ("id".into(), JsonValue::Uint(id)),
            ("status".into(), JsonValue::Str("queued".into())),
        ]),
    );
}

/// `GET /jobs/<id>/events`: a chunked NDJSON stream. The handler only
/// ever polls the subscriber's own bounded queue — backpressure from
/// this socket sheds events for this subscriber alone and is reported
/// in the terminal `stream_end` line.
fn stream_events(shared: &Shared, id: Option<u64>, w: &mut impl Write) {
    let Some(sub) = id.and_then(|id| shared.registry.subscribe(id)) else {
        return respond_error(w, 404, "no such job");
    };
    if http::start_chunked(w, 200, "application/x-ndjson").is_err() {
        return;
    }
    loop {
        match sub.poll() {
            FanoutPoll::Lines(lines) => {
                if lines.is_empty() {
                    std::thread::sleep(EVENT_POLL);
                    continue;
                }
                let mut chunk = String::new();
                for line in lines {
                    chunk.push_str(&line);
                    chunk.push('\n');
                }
                if http::write_chunk(w, chunk.as_bytes()).is_err() {
                    return; // peer went away; subscriber drops on return
                }
            }
            FanoutPoll::Closed { dropped } => {
                let end = JsonValue::Obj(vec![
                    ("event".into(), JsonValue::Str("stream_end".into())),
                    (
                        "schema_version".into(),
                        JsonValue::Uint(EVENT_SCHEMA_VERSION),
                    ),
                    ("dropped".into(), JsonValue::Uint(dropped)),
                ]);
                let mut line = end.to_string_compact();
                line.push('\n');
                let _ = http::write_chunk(w, line.as_bytes());
                let _ = http::end_chunked(w);
                return;
            }
        }
    }
}

/// `GET /baselines`: the recorded baseline names, sorted.
fn list_baselines(shared: &Shared, w: &mut impl Write) {
    let mut names = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&shared.baseline_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".json") {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    respond_json(
        w,
        200,
        &JsonValue::Obj(vec![
            (
                "schema_version".into(),
                JsonValue::Uint(EVENT_SCHEMA_VERSION),
            ),
            (
                "baselines".into(),
                JsonValue::Arr(names.into_iter().map(JsonValue::Str).collect()),
            ),
        ]),
    );
}

/// `GET /baselines/<name>`: the verified baseline payload. The
/// checksum frame is validated on every read, so a torn or bit-rotted
/// file answers `500`, never garbage.
fn read_baseline(shared: &Shared, name: &str, w: &mut impl Write) {
    if name.is_empty() || name.contains(['/', '\\']) || name.contains("..") {
        return respond_error(w, 400, "invalid baseline name");
    }
    let path = shared.baseline_dir.join(format!("{name}.json"));
    match store::read_checksummed(&path) {
        Ok(payload) => {
            let _ = http::respond(w, 200, "application/json", payload.as_bytes());
        }
        Err(StoreError::Missing(_)) => respond_error(w, 404, "no such baseline"),
        Err(e) => respond_error(w, 500, &format!("baseline unreadable: {e}")),
    }
}

/// `GET /statsz`: queue, job, rejection, and event-delivery counters.
fn stats_json(shared: &Shared) -> JsonValue {
    let [total, queued, running, done, failed, cancelled] = shared.registry.counts();
    let (published, dropped) = shared.registry.event_totals();
    JsonValue::Obj(vec![
        (
            "schema_version".into(),
            JsonValue::Uint(EVENT_SCHEMA_VERSION),
        ),
        (
            "jobs".into(),
            JsonValue::Obj(vec![
                ("total".into(), JsonValue::Uint(total)),
                ("queued".into(), JsonValue::Uint(queued)),
                ("running".into(), JsonValue::Uint(running)),
                ("done".into(), JsonValue::Uint(done)),
                ("failed".into(), JsonValue::Uint(failed)),
                ("cancelled".into(), JsonValue::Uint(cancelled)),
            ]),
        ),
        (
            "queue_depth".into(),
            JsonValue::Uint(shared.queue_depth as u64),
        ),
        (
            "rejected".into(),
            JsonValue::Uint(shared.rejected.load(Ordering::Relaxed)),
        ),
        (
            "events".into(),
            JsonValue::Obj(vec![
                ("published".into(), JsonValue::Uint(published)),
                ("dropped".into(), JsonValue::Uint(dropped)),
            ]),
        ),
        (
            "shutting_down".into(),
            JsonValue::Bool(shared.shutting_down()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn test_server(config: ServerConfig) -> ServerHandle {
        start(config).expect("server starts")
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let handle = test_server(ServerConfig::default());
        let addr = handle.local_addr().to_string();
        let (status, body) = client::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let v = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(EVENT_SCHEMA_VERSION)
        );
        let (status, _) = client::request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client::request(&addr, "DELETE", "/healthz", None).unwrap();
        assert_eq!(status, 405);
        handle.join();
    }

    #[test]
    fn malformed_specs_are_rejected_with_400() {
        let handle = test_server(ServerConfig::default());
        let addr = handle.local_addr().to_string();
        let (status, body) =
            client::request(&addr, "POST", "/jobs", Some(b"not a spec at all")).unwrap();
        assert_eq!(status, 400);
        let v = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert!(v.get("error").unwrap().as_str().unwrap().contains("spec"));
        let (status, _) =
            client::request(&addr, "POST", "/jobs", Some(b"{\"no_spec\": 1}")).unwrap();
        assert_eq!(status, 400);
        handle.join();
    }

    #[test]
    fn shutdown_endpoint_is_gated() {
        let handle = test_server(ServerConfig::default());
        let addr = handle.local_addr().to_string();
        let (status, _) = client::request(&addr, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 403, "disabled by default");
        handle.join();

        let handle = test_server(ServerConfig {
            allow_shutdown: true,
            ..ServerConfig::default()
        });
        let addr = handle.local_addr().to_string();
        let (status, _) = client::request(&addr, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        assert!(handle.shutdown_requested());
        handle.join();
    }

    #[test]
    fn baseline_names_are_validated() {
        let handle = test_server(ServerConfig::default());
        let addr = handle.local_addr().to_string();
        let (status, _) = client::request(&addr, "GET", "/baselines/..%2Fetc", None).unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            client::request(&addr, "GET", "/baselines/definitely-missing", None).unwrap();
        assert_eq!(status, 404);
        handle.join();
    }
}
