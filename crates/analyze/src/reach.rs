//! Static reachability and optical-envelope analysis.
//!
//! Two independent questions, both answerable before cycle 0:
//!
//! * **Residual connectivity** — under the worst-case view of a
//!   [`FaultPlan`] (every fault treated as permanent), which (src, dst)
//!   pairs can still be routed by XY + productive detours? The
//!   complement is the exact set of statically partitioned pairs — the
//!   pairs the simulator will eventually declare `Undeliverable`. The
//!   analyzer *predicts* those outcomes instead of discovering them at
//!   the retry cap.
//! * **Optical envelope** — the photonics loss budget is a static
//!   property of the design point (Li et al.'s worst-case-loss framing):
//!   the laser is provisioned for `max_hops` hops at the configured
//!   crossing efficiency, and an active [`LaserDroop`] multiplies that
//!   efficiency down, shrinking the number of hops the provisioned power
//!   still covers. When even a single hop no longer closes the budget,
//!   the configuration is statically infeasible — no packet can ever be
//!   delivered optically.
//!
//! [`LaserDroop`]: phastlane_netsim::fault::FaultKind::LaserDroop

use crate::cdg::{route_walk, Walk};
use phastlane_core::PhastlaneConfig;
use phastlane_netsim::fault::{FaultKind, FaultPlan};
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_photonics::power::PowerPoint;

/// Residual connectivity of a mesh under a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residual {
    /// Ordered (src, dst) pairs the static walk cannot route — the
    /// predicted `Undeliverable` pairs.
    pub partitioned: Vec<(NodeId, NodeId)>,
    /// Total ordered pairs examined (`nodes * (nodes - 1)`).
    pub total_pairs: usize,
}

impl Residual {
    /// Whether every pair remains routable.
    pub fn fully_connected(&self) -> bool {
        self.partitioned.is_empty()
    }
}

/// Computes residual connectivity: statically walks every ordered
/// (src, dst) pair under the worst-case fault view and collects the
/// pairs that wedge. Deterministic: pairs are visited and reported in
/// ascending (src, dst) order.
pub fn residual_connectivity(mesh: Mesh, plan: &FaultPlan) -> Residual {
    let mut partitioned = Vec::new();
    for src in mesh.iter_nodes() {
        for dst in mesh.iter_nodes() {
            if src == dst {
                continue;
            }
            if let Walk::Partitioned { .. } = route_walk(mesh, plan, src, dst) {
                partitioned.push((src, dst));
            }
        }
    }
    Residual {
        partitioned,
        total_pairs: mesh.nodes() * (mesh.nodes() - 1),
    }
}

/// The static optical feasibility of one network configuration under a
/// fault plan's laser droop.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticalEnvelope {
    /// WDM degree of the data path.
    pub wdm: u32,
    /// Hops per cycle the design is provisioned for.
    pub max_hops: u32,
    /// Nominal per-crossing efficiency.
    pub crossing_efficiency: f64,
    /// Product of the plan's droop factors (worst case; 1.0 = none).
    pub droop_factor: f64,
    /// Hops per cycle the *provisioned* laser power still covers at the
    /// drooped efficiency. `0` means even one hop no longer closes the
    /// loss budget: statically infeasible.
    pub effective_hops: u32,
    /// Mesh diameter in hops (corner to corner under XY).
    pub diameter: u32,
    /// Minimum cycles for a diameter-length transit at the effective
    /// hop reach, or `None` when infeasible.
    pub min_transit_cycles: Option<u32>,
}

impl OpticalEnvelope {
    /// Whether the budget still closes for at least one hop per cycle.
    pub fn feasible(&self) -> bool {
        self.effective_hops > 0
    }
}

/// The worst-case droop factor of a plan: the product of every scheduled
/// [`LaserDroop`] factor, windows ignored (a static verdict must hold
/// while all droops overlap).
///
/// [`LaserDroop`]: phastlane_netsim::fault::FaultKind::LaserDroop
pub fn worst_case_droop(plan: &FaultPlan) -> f64 {
    plan.faults()
        .iter()
        .filter_map(|f| match f.kind {
            FaultKind::LaserDroop { factor } => Some(factor),
            _ => None,
        })
        .product()
}

/// The optical configuration behind a lab network name, or `None` for
/// the electrical baselines (which have no optical loss budget).
///
/// # Errors
///
/// Errors on a name outside [`phastlane_lab::runner::NETWORKS`].
pub fn optical_config(net: &str) -> Result<Option<PhastlaneConfig>, String> {
    let cfg = match net.to_ascii_lowercase().as_str() {
        "optical4" => Some(PhastlaneConfig::optical4()),
        "optical5" => Some(PhastlaneConfig::optical5()),
        "optical8" => Some(PhastlaneConfig::optical8()),
        "optical4b32" => Some(PhastlaneConfig::optical4_b32()),
        "optical4b64" => Some(PhastlaneConfig::optical4_b64()),
        "optical4ib" => Some(PhastlaneConfig::optical4_ib()),
        "optical4sp50" => Some(PhastlaneConfig::optical4_shared_pool()),
        "electrical2" | "electrical3" => None,
        other => {
            return Err(format!(
                "unknown network {other:?}; known: {}",
                phastlane_lab::runner::NETWORKS.join(" ")
            ))
        }
    };
    Ok(cfg)
}

/// Evaluates the optical envelope of `net` on `mesh` under `plan`'s
/// worst-case droop. Returns `Ok(None)` for electrical networks.
///
/// The provisioned power is the peak power of the *nominal* design
/// point ([`PowerPoint::peak_optical_power`] at `max_hops` and the
/// configured efficiency); the effective hop reach is the largest hop
/// count whose drooped-efficiency peak power still fits under it.
///
/// # Errors
///
/// Errors on an unknown network name.
pub fn optical_envelope(
    net: &str,
    mesh: Mesh,
    plan: &FaultPlan,
) -> Result<Option<OpticalEnvelope>, String> {
    let Some(cfg) = optical_config(net)? else {
        return Ok(None);
    };
    let droop = worst_case_droop(plan);
    let nominal = PowerPoint::new(cfg.wdm, cfg.max_hops, cfg.crossing_efficiency);
    let provisioned = nominal.peak_optical_power().value();
    let drooped_eff = (cfg.crossing_efficiency * droop).clamp(f64::MIN_POSITIVE, 1.0);
    let mut effective_hops = 0;
    for h in 1..=cfg.max_hops {
        let p = PowerPoint::new(cfg.wdm, h, drooped_eff).peak_optical_power();
        // A tiny tolerance keeps the droop-free case at exactly
        // max_hops despite floating-point round-trips.
        if p.value() <= provisioned * (1.0 + 1e-9) {
            effective_hops = h;
        } else {
            break;
        }
    }
    let corner = NodeId(0);
    let far = NodeId((mesh.nodes() - 1) as u16);
    let diameter = mesh.distance(corner, far);
    Ok(Some(OpticalEnvelope {
        wdm: cfg.wdm.payload_wdm,
        max_hops: cfg.max_hops,
        crossing_efficiency: cfg.crossing_efficiency,
        droop_factor: droop,
        effective_hops,
        diameter,
        min_transit_cycles: (effective_hops > 0).then(|| diameter.div_ceil(effective_hops)),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phastlane_netsim::fault::Fault;
    use phastlane_netsim::geometry::Direction;

    #[test]
    fn empty_plan_keeps_full_connectivity() {
        let r = residual_connectivity(Mesh::new(4, 4), &FaultPlan::new());
        assert!(r.fully_connected());
        assert_eq!(r.total_pairs, 16 * 15);
    }

    #[test]
    fn row_cut_partitions_the_exact_pair_set() {
        // Known answer: cut every vertical link between row 1 and row 2
        // of a 4x4 mesh (both directions). The mesh splits into a top
        // half (nodes 0..8) and a bottom half (nodes 8..16); exactly the
        // 2 * 8 * 8 = 128 cross-half ordered pairs are partitioned.
        let mesh = Mesh::new(4, 4);
        let mut plan = FaultPlan::new();
        for x in 0..4u16 {
            plan.push(Fault::permanent(FaultKind::LinkDown {
                node: NodeId(4 + x), // row 1
                dir: Direction::South,
            }));
            plan.push(Fault::permanent(FaultKind::LinkDown {
                node: NodeId(8 + x), // row 2
                dir: Direction::North,
            }));
        }
        let r = residual_connectivity(mesh, &plan);
        let mut expect = Vec::new();
        for src in mesh.iter_nodes() {
            for dst in mesh.iter_nodes() {
                if src == dst {
                    continue;
                }
                if (src.0 < 8) != (dst.0 < 8) {
                    expect.push((src, dst));
                }
            }
        }
        assert_eq!(r.partitioned.len(), 128);
        assert_eq!(r.partitioned, expect);
    }

    #[test]
    fn single_dead_link_is_routed_around() {
        // One dead link in the mesh interior: detours (and the reverse
        // direction of the same span) keep every pair connected.
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LinkDown {
            node: NodeId(5),
            dir: Direction::East,
        }));
        let r = residual_connectivity(Mesh::new(4, 4), &plan);
        // XY + productive detours cannot always route around even one
        // dead link (same-row pairs have no productive alternative), but
        // the damage must be exactly the same-row pairs crossing it.
        for (src, dst) in &r.partitioned {
            let mesh = Mesh::new(4, 4);
            let (a, b) = (mesh.coord(*src), mesh.coord(*dst));
            assert_eq!(a.y, b.y, "only same-row pairs may wedge: {src}->{dst}");
        }
    }

    #[test]
    fn stuck_router_isolates_its_node() {
        let mesh = Mesh::new(4, 4);
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::RouterStuck { node: NodeId(5) }));
        let r = residual_connectivity(mesh, &plan);
        // Every pair into or out of the stuck node is partitioned.
        for other in mesh.iter_nodes() {
            if other == NodeId(5) {
                continue;
            }
            assert!(r.partitioned.contains(&(NodeId(5), other)), "{other}");
            assert!(r.partitioned.contains(&(other, NodeId(5))), "{other}");
        }
    }

    #[test]
    fn nominal_envelope_covers_the_design_point() {
        let env = optical_envelope("optical4", Mesh::PAPER, &FaultPlan::new())
            .unwrap()
            .expect("optical nets have an envelope");
        assert_eq!(env.max_hops, 4);
        assert_eq!(env.effective_hops, 4, "no droop, full provisioned reach");
        assert_eq!(env.diameter, 14);
        assert_eq!(env.min_transit_cycles, Some(4)); // ceil(14 / 4)
        assert!(env.feasible());
    }

    #[test]
    fn droop_shrinks_the_effective_reach() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LaserDroop { factor: 0.97 }));
        let env = optical_envelope("optical4", Mesh::PAPER, &plan)
            .unwrap()
            .unwrap();
        assert!((env.droop_factor - 0.97).abs() < 1e-12);
        assert!(
            env.effective_hops < 4,
            "a 3% droop must cost at least one hop, got {}",
            env.effective_hops
        );
        assert!(env.feasible());
    }

    #[test]
    fn severe_droop_is_statically_infeasible() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LaserDroop { factor: 0.5 }));
        let env = optical_envelope("optical4", Mesh::PAPER, &plan)
            .unwrap()
            .unwrap();
        assert_eq!(env.effective_hops, 0);
        assert!(!env.feasible());
        assert_eq!(env.min_transit_cycles, None);
    }

    #[test]
    fn droop_factors_compose_multiplicatively() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LaserDroop { factor: 0.99 }));
        plan.push(Fault::transient(
            FaultKind::LaserDroop { factor: 0.98 },
            5,
            10,
        ));
        assert!((worst_case_droop(&plan) - 0.99 * 0.98).abs() < 1e-12);
    }

    #[test]
    fn electrical_nets_have_no_envelope() {
        assert_eq!(
            optical_envelope("electrical3", Mesh::PAPER, &FaultPlan::new()).unwrap(),
            None
        );
    }

    #[test]
    fn unknown_net_is_an_error() {
        let err = optical_envelope("warp", Mesh::PAPER, &FaultPlan::new()).unwrap_err();
        assert!(err.contains("unknown network"), "{err}");
    }
}
