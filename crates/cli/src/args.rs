//! Tiny dependency-free argument parsing for the `phastlane` CLI.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: positional words plus `--key value` /
/// `--flag` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Parsed {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// An argument-parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option keys that take a value; anything else starting with `--` is a
/// boolean flag.
pub const VALUE_KEYS: &[&str] = &[
    "net",
    "benchmark",
    "workload",
    "scale",
    "pattern",
    "rate",
    "rates",
    "out",
    "mesh",
    "hops",
    "buffers",
    "seed",
    "wavelengths",
    "efficiency",
    "max-cycles",
    "trace-out",
    "metrics-out",
    "report-out",
    "sample-interval",
    "ring",
    "severity",
    "kind",
    "node",
    "limit",
    "fault-plan",
    "fault-seed",
    "fault-rate",
    "retry-limit",
    "intensities",
    "workers",
    "batch",
    "name",
    "baseline-dir",
    "perf-out",
    "bench-out",
    "tol-mean",
    "tol-p99",
    "tol-saturation",
    "tol-throughput",
    "flight-recorder",
    "flight-sample",
    "profile-sample",
    "journal",
    "resume",
    "spec",
    "allow",
    "emit-allow",
    "root",
    "addr",
    "queue-depth",
    "state-dir",
];

impl Parsed {
    /// Parses raw arguments (without the program name).
    ///
    /// `--key=value` always binds the value inline, which also lets an
    /// option double as a bare flag (`--progress` vs
    /// `--progress=FILE`).
    ///
    /// # Errors
    ///
    /// Errors when a value-taking option is missing its value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, ArgError> {
        let mut out = Parsed::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if let Some((key, value)) = key.split_once('=') {
                    if key.is_empty() {
                        return Err(ArgError(format!(
                            "malformed option {a:?}: empty option name"
                        )));
                    }
                    out.options.insert(key.to_string(), value.to_string());
                } else if key.is_empty() {
                    return Err(ArgError(
                        "malformed option \"--\": empty option name".into(),
                    ));
                } else if VALUE_KEYS.contains(&key) {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} requires a value")))?;
                    out.options.insert(key.to_string(), v);
                } else {
                    out.flags.push(key.to_string());
                }
            } else {
                out.positionals.push(a);
            }
        }
        Ok(out)
    }

    /// The n-th positional word, if present.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positionals.get(n).map(String::as_str)
    }

    /// An option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An option parsed to a type, with a default.
    ///
    /// # Errors
    ///
    /// Errors when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {v:?}"))),
        }
    }

    /// Whether a boolean flag was given.
    #[allow(dead_code)] // exercised by tests; available for new subcommands
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Parsed {
        Parsed::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn positionals_and_options() {
        let p = parse(&["simulate", "--net", "optical4", "--scale", "0.5", "--quick"]);
        assert_eq!(p.positional(0), Some("simulate"));
        assert_eq!(p.get("net"), Some("optical4"));
        assert_eq!(p.get_parsed("scale", 1.0).unwrap(), 0.5);
        assert!(p.flag("quick"));
        assert!(!p.flag("chart"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Parsed::parse(vec!["--net".to_string()]).unwrap_err();
        assert!(e.to_string().contains("--net requires a value"));
    }

    #[test]
    fn empty_option_names_are_rejected() {
        let e = Parsed::parse(vec!["--=x".to_string()]).unwrap_err();
        assert!(e.to_string().contains("empty option name"), "{e}");
        let e = Parsed::parse(vec!["--".to_string()]).unwrap_err();
        assert!(e.to_string().contains("empty option name"), "{e}");
    }

    #[test]
    fn bad_parse_reports_key() {
        let p = parse(&["--scale", "abc"]);
        let e = p.get_parsed::<f64>("scale", 1.0).unwrap_err();
        assert!(e.to_string().contains("--scale"));
    }

    #[test]
    fn equals_form_binds_inline_and_makes_options_flaggable() {
        // An unknown key with = is an option, without = a flag.
        let p = parse(&["lab", "run", "--progress=out.ndjson", "--workers=4"]);
        assert_eq!(p.get("progress"), Some("out.ndjson"));
        assert_eq!(p.get_parsed("workers", 1).unwrap(), 4);
        assert!(!p.flag("progress"));
        let p = parse(&["lab", "run", "--progress"]);
        assert!(p.flag("progress"));
        assert_eq!(p.get("progress"), None);
        // Values may themselves contain '='.
        let p = parse(&["--out=a=b.json"]);
        assert_eq!(p.get("out"), Some("a=b.json"));
    }

    #[test]
    fn option_values_containing_colons_round_trip() {
        // Regression: network addresses carry ':' (ports) and IPv6
        // brackets; both the space form and the '=' form must bind the
        // value verbatim instead of mangling or flagging it.
        let p = parse(&["serve", "--addr", "127.0.0.1:9090"]);
        assert_eq!(p.get("addr"), Some("127.0.0.1:9090"));
        let p = parse(&["serve", "--addr=[::1]:8080"]);
        assert_eq!(p.get("addr"), Some("[::1]:8080"));
        assert!(!p.flag("addr"));
        let p = parse(&[
            "client",
            "submit",
            "spec.lab",
            "--addr=0.0.0.0:7690",
            "--state-dir",
            "/tmp/with:colon",
            "--queue-depth",
            "4",
        ]);
        assert_eq!(p.positional(1), Some("submit"));
        assert_eq!(p.get("addr"), Some("0.0.0.0:7690"));
        assert_eq!(p.get("state-dir"), Some("/tmp/with:colon"));
        assert_eq!(p.get_parsed("queue-depth", 16).unwrap(), 4);
    }

    #[test]
    fn defaults_apply() {
        let p = parse(&[]);
        assert_eq!(p.get_parsed("scale", 0.25).unwrap(), 0.25);
        assert_eq!(p.positional(0), None);
    }
}
