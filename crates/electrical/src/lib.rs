//! Baseline electrical virtual-channel mesh network for the Phastlane
//! reproduction (the paper's modified-Booksim comparator, §4, Table 2).
//!
//! An aggressive 16 nm input-queued VC router: single-flit 80-byte
//! packets, 10 VCs per port with one entry each, iSLIP VC and switch
//! allocators, crossbar input speedup of 4, 2- or 3-cycle pipeline via
//! lookahead and speculation, ejection bypassing the crossbar, 50-entry
//! NIC buffering, and Virtual Circuit Tree Multicasting for broadcasts.
//!
//! * [`config`] — Table 2 parameters (`Electrical3`, `Electrical2`);
//! * [`islip`] — the iSLIP allocator;
//! * [`vctm`] — multicast tree construction over target bitmasks;
//! * [`network`] — the simulator, implementing
//!   [`phastlane_netsim::Network`];
//! * [`power`] — CACTI/Balfour-Dally-style energy accounting.
//!
//! # Example
//!
//! ```
//! use phastlane_electrical::{ElectricalConfig, ElectricalNetwork};
//! use phastlane_netsim::{Network, NewPacket, NodeId};
//!
//! let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
//! net.inject(NewPacket::unicast(NodeId(0), NodeId(9))).unwrap();
//! while net.in_flight() > 0 {
//!     net.step();
//! }
//! // Two hops at 3+1 cycles per hop, plus ejection.
//! assert_eq!(net.drain_deliveries()[0].latency(), 9);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod islip;
pub mod network;
pub mod power;
pub mod vctm;

pub use config::ElectricalConfig;
pub use network::ElectricalNetwork;

// Compile-time `Send` guarantee: the `phastlane-lab` scheduler runs
// whole networks on `std::thread` workers. A future `Rc`/raw-pointer
// refactor must fail right here at build time, not in the scheduler.
fn _assert_send<T: Send>() {}
const _: fn() = _assert_send::<ElectricalNetwork>;
const _: fn() = _assert_send::<ElectricalConfig>;
