//! Latency-vs-load curve for one synthetic pattern on one network — a
//! single panel of Figure 9.
//!
//! Run with: `cargo run --release --example synthetic_sweep [pattern]`
//! where pattern is one of: uniform, bitcomp, bitrev, shuffle, transpose.

use phastlane_repro::netsim::harness::SyntheticOptions;
use phastlane_repro::netsim::sweep::{latency_sweep, saturation, Saturation};
use phastlane_repro::netsim::Mesh;
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::{BernoulliTraffic, Pattern};

fn main() {
    let pattern = match std::env::args().nth(1).as_deref() {
        None | Some("transpose") => Pattern::Transpose,
        Some("uniform") => Pattern::Uniform,
        Some("bitcomp") => Pattern::BitComplement,
        Some("bitrev") => Pattern::BitReverse,
        Some("shuffle") => Pattern::Shuffle,
        Some(other) => panic!("unknown pattern {other:?}"),
    };

    let rates = [0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30];
    let opts = SyntheticOptions {
        warmup: 500,
        measure: 2_000,
        drain: 6_000,
    };
    println!("pattern: {} on Optical4 (8x8 mesh)\n", pattern.label());
    println!(
        "{:>6}  {:>10}  {:>10}  {:>9}",
        "rate", "latency", "delivered", "stable"
    );

    let points = latency_sweep(
        &rates,
        || PhastlaneNetwork::new(PhastlaneConfig::optical4()),
        |rate| BernoulliTraffic::new(Mesh::PAPER, pattern, rate, 0xE7),
        opts,
    );
    for p in &points {
        println!(
            "{:>6.2}  {:>10.2}  {:>10.3}  {:>9}",
            p.offered_rate,
            p.mean_latency(),
            p.result.delivered_rate,
            if p.is_stable() { "yes" } else { "saturated" }
        );
    }
    match saturation(&points) {
        Saturation::Stable(r) => {
            println!("\nsaturation throughput ~= {r:.2} packets/node/cycle");
        }
        Saturation::SaturatedFromStart(low) => {
            println!("\nsaturated at every measured rate (throughput < {low:.2})");
        }
        Saturation::NotSwept => println!("\nno rates were swept"),
    }
}
