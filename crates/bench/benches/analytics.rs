//! Microbenchmarks of the §3 analytic kernels (Figures 4-8) and the
//! trace generator. Plain `main` + the in-tree
//! [`phastlane_bench::timing`] runner; no external bench framework.

use phastlane_bench::timing::bench;
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_photonics::delay::figure6_series;
use phastlane_photonics::power::figure7_grid;
use phastlane_photonics::scaling::figure4_series;
use phastlane_photonics::units::TechNode;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    bench("fig4_scaling_fits", figure4_series);

    bench("fig6_max_hops_solver", || figure6_series(TechNode::NM16));

    let effs = [0.97, 0.975, 0.98, 0.985, 0.99, 0.995];
    let hops = [1, 2, 3, 4, 5, 6, 7, 8];
    bench("fig7_power_grid", || figure7_grid(&effs, &hops));

    let mesh = Mesh::PAPER;
    let targets = [NodeId(63)];
    bench("plan_build_corner_to_corner", || {
        phastlane_core::plan::Plan::build(mesh, NodeId(0), &targets, false, 4)
    });

    let bc_targets: Vec<NodeId> = mesh.iter_nodes().filter(|&n| n != NodeId(27)).collect();
    bench("broadcast_split_16_messages", || {
        phastlane_core::multicast::split_multicast(mesh, NodeId(27), &bc_targets)
    });

    let mut profile = splash2::benchmark("Ocean").expect("known benchmark");
    profile.misses_per_core = 20;
    bench("generate_ocean_trace_20", || {
        generate_trace(Mesh::PAPER, &profile)
    });
}
