//! Open-loop Bernoulli traffic sources over the synthetic patterns.

use crate::patterns::Pattern;
use phastlane_netsim::geometry::Mesh;
use phastlane_netsim::harness::SyntheticWorkload;
use phastlane_netsim::packet::{DestSet, NewPacket, PacketKind};
use phastlane_netsim::rng::SimRng;

/// A Bernoulli injection process: every cycle, each node independently
/// generates a packet with probability `rate`, destined per `pattern`.
/// Packets whose pattern destination equals the source are skipped (they
/// would not use the network).
#[derive(Debug, Clone)]
pub struct BernoulliTraffic {
    mesh: Mesh,
    pattern: Pattern,
    rate: f64,
    rng: SimRng,
}

impl BernoulliTraffic {
    /// Creates a source with the given injection rate (packets per node
    /// per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(mesh: Mesh, pattern: Pattern, rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "rate must be in [0, 1], got {rate}"
        );
        BernoulliTraffic {
            mesh,
            pattern,
            rate,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The pattern this source draws destinations from.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The injection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl SyntheticWorkload for BernoulliTraffic {
    fn generate(&mut self, cycle: u64) -> Vec<NewPacket> {
        let mut out = Vec::new();
        self.generate_into(cycle, &mut out);
        out
    }

    fn generate_into(&mut self, _cycle: u64, out: &mut Vec<NewPacket>) {
        for src in self.mesh.iter_nodes() {
            if self.rng.gen_bool(self.rate) {
                let dst = self.pattern.dest(self.mesh, src, &mut self.rng);
                if dst != src {
                    out.push(NewPacket {
                        src,
                        dests: DestSet::Unicast(dst),
                        kind: PacketKind::Data,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_controls_volume() {
        let mut t = BernoulliTraffic::new(Mesh::PAPER, Pattern::Uniform, 0.25, 1);
        let total: usize = (0..1000).map(|c| t.generate(c).len()).sum();
        // 64 nodes x 1000 cycles x 0.25 = 16000 expected (minus rare
        // self-sends).
        assert!((14_000..18_000).contains(&total), "generated {total}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut t = BernoulliTraffic::new(Mesh::PAPER, Pattern::Uniform, 0.0, 1);
        assert!(t.generate(0).is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let gen = |seed| {
            let mut t = BernoulliTraffic::new(Mesh::PAPER, Pattern::Shuffle, 0.1, seed);
            (0..50).flat_map(|c| t.generate(c)).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn no_self_sends() {
        let mut t = BernoulliTraffic::new(Mesh::PAPER, Pattern::Transpose, 1.0, 3);
        for p in t.generate(0) {
            if let DestSet::Unicast(d) = p.dests {
                assert_ne!(d, p.src);
            }
        }
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn invalid_rate_rejected() {
        let _ = BernoulliTraffic::new(Mesh::PAPER, Pattern::Uniform, 1.5, 0);
    }
}
