//! Cache-accurate coherence traffic: run synthetic address streams
//! through real Table 4 cache hierarchies, let actual L2 misses,
//! upgrades, and dirty evictions generate the network traffic, and
//! compare both networks on the result.
//!
//! Run with: `cargo run --release --example cache_accurate [workload]`
//! where workload is `streaming`, `pointer-chase`, or `write-sharing`.

use phastlane_repro::electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_repro::netsim::harness::{run_trace, TraceOptions};
use phastlane_repro::netsim::{Mesh, Network};
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::cachegen::{generate_cache_trace, CacheWorkload};

fn main() {
    let mut workload = match std::env::args().nth(1).as_deref() {
        None | Some("streaming") => CacheWorkload::streaming(),
        Some("pointer-chase") => CacheWorkload::pointer_chase(),
        Some("write-sharing") => CacheWorkload::write_sharing(),
        Some(other) => panic!("unknown workload {other:?}"),
    };
    // Trim so the example completes in seconds.
    workload.accesses_per_core = workload.accesses_per_core.min(4_000);

    let (trace, report) = generate_cache_trace(Mesh::PAPER, &workload);
    println!(
        "workload {}: {} memory accesses simulated",
        workload.name, report.accesses
    );
    println!(
        "  L2 miss ratio {:.2}%  ({} misses, {} cache-to-cache, {} invalidations, {} writebacks)",
        report.miss_ratio() * 100.0,
        report.l2_misses,
        report.cache_to_cache,
        report.invalidations,
        report.writebacks
    );
    println!("  -> {} network messages\n", trace.len());

    let mut optical = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let mut electrical = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let o = run_trace(&mut optical, &trace, TraceOptions::default());
    let e = run_trace(&mut electrical, &trace, TraceOptions::default());

    println!(
        "Optical4:    {} cycles ({} drops)",
        o.completion_cycle,
        optical.stats().dropped
    );
    println!("Electrical3: {} cycles", e.completion_cycle);
    println!(
        "network speedup {:.2}x; power {:.0} mW vs {:.0} mW",
        e.completion_cycle as f64 / o.completion_cycle.max(1) as f64,
        o.energy.average_power_mw(o.completion_cycle.max(1), 4.0),
        e.energy.average_power_mw(e.completion_cycle.max(1), 4.0),
    );
}
