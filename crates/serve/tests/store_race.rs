//! Concurrent baseline-store access: HTTP readers racing a `lab
//! record`-style writer must always see a fully committed file — the
//! old payload or the new one, byte-for-byte — never a torn mix and
//! never a checksum failure. The store's temp+fsync+rename discipline
//! is what makes this hold; this test is the regression net over it.

use phastlane_lab::store;
use phastlane_serve::{client, server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn readers_racing_a_writer_see_only_committed_baselines() {
    let dir = std::env::temp_dir().join(format!("phastlane-store-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("baseline dir");

    // Two payloads of very different sizes: a torn read (partial
    // rename, interleaved write) could not masquerade as either.
    let payload_a = format!(
        "{{\n  \"marker\": \"A\",\n  \"fill\": \"{}\"\n}}",
        "a".repeat(8_192)
    );
    let payload_b = format!(
        "{{\n  \"marker\": \"B\",\n  \"fill\": \"{}\"\n}}",
        "b".repeat(16_384)
    );
    let path = dir.join("racy.json");
    store::write_checksummed(&path, &payload_a).expect("initial baseline");

    let handle = server::start(ServerConfig {
        baseline_dir: dir.clone(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    // The listing sees the committed file.
    let (status, body) = client::request(&addr, "GET", "/baselines", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&body).contains("\"racy\""),
        "listing includes the baseline"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let path = path.clone();
        let (a, b) = (payload_a.clone(), payload_b.clone());
        std::thread::spawn(move || {
            let mut writes = 0u64;
            while !stop.load(Ordering::Acquire) {
                let payload = if writes.is_multiple_of(2) { &b } else { &a };
                store::write_checksummed(&path, payload).expect("atomic rewrite");
                writes += 1;
            }
            writes
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let (a, b) = (payload_a.clone(), payload_b.clone());
            std::thread::spawn(move || {
                let mut seen = 0u64;
                for _ in 0..200 {
                    let (status, body) =
                        client::request(&addr, "GET", "/baselines/racy", None).expect("read");
                    assert_eq!(
                        status,
                        200,
                        "a committed baseline never reads corrupt: {}",
                        String::from_utf8_lossy(&body)
                    );
                    let text = String::from_utf8(body).expect("utf-8 payload");
                    assert!(
                        text == a || text == b,
                        "reader saw a torn baseline ({} bytes): {:.80}…",
                        text.len(),
                        text
                    );
                    seen += 1;
                }
                seen
            })
        })
        .collect();

    let mut reads = 0;
    for r in readers {
        reads += r.join().expect("reader thread");
    }
    stop.store(true, Ordering::Release);
    let writes = writer.join().expect("writer thread");
    assert_eq!(reads, 600);
    assert!(writes > 0, "the writer actually raced the readers");

    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
