//! Supervised job execution: panic isolation and bounded retry.
//!
//! The scheduler routes every group through [`run_group_supervised`],
//! which wraps the actual simulation in `catch_unwind` so one job
//! hitting a simulator bug (or a deliberate `sabotage panic@N`) records
//! a terminal [`JobOutcome::Panicked`] instead of poisoning the worker
//! pool and killing the other 199 jobs of the sweep.
//!
//! Retry policy, applied per job:
//!
//! * **panics** retry up to `spec.retries` times with seeded
//!   exponential backoff, then record `Panicked` with the payload
//!   message;
//! * **deterministic watchdog verdicts** (cycle budget, livelock) are
//!   never retried — the same seed replays the same cycles, so the
//!   retry would burn the same budget to the same verdict;
//! * **wall-budget** timeouts are machine-weather and retry;
//! * **cancellation** returns immediately — the whole run is stopping.
//!
//! The backoff jitter is derived from the job seed, not the clock, so
//! a retried run's schedule is as reproducible as everything else here.

use crate::report::{JobOutcome, JobRecord};
use crate::runner;
use crate::spec::{derive_seed, JobSpec, LabSpec, SabotageKind};
use phastlane_netsim::stats::LatencyStats;
use phastlane_netsim::watchdog::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Longest single backoff sleep; keeps `retries 10` specs from
/// sleeping for minutes.
const MAX_BACKOFF_MS: u64 = 5_000;

/// Extracts a human-readable message from a panic payload. Panics via
/// `panic!("...")` carry `String` or `&str`; anything else gets a
/// placeholder.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Whether a watchdog verdict (by its reason string, which is part of
/// the record format) replays identically on a retry. Cycle budgets and
/// livelock fire at a deterministic simulated cycle; wall budgets and
/// cancellation depend on the machine.
fn reason_is_deterministic(reason: &str) -> bool {
    reason.starts_with("cycle budget") || reason.starts_with("livelock")
}

/// The terminal record for a job whose every attempt panicked: zero
/// cycles, empty latency, no stability vote — just the verdict.
fn panicked_record(job: &JobSpec, message: String) -> JobRecord {
    let (pattern, rate, benchmark) = match &job.work {
        crate::spec::Work::Synthetic { pattern, rate } => {
            (Some(pattern.name().to_string()), Some(*rate), None)
        }
        crate::spec::Work::Replay { benchmark } => (None, None, Some(benchmark.clone())),
    };
    JobRecord {
        index: job.index,
        net: job.net.clone(),
        pattern,
        rate,
        benchmark,
        intensity: job.intensity,
        replica: job.replica,
        seed: job.seed,
        cycles: 0,
        latency: LatencyStats::new(),
        energy_pj: 0.0,
        offered_rate: None,
        accepted_rate: None,
        delivered_rate: None,
        completion_cycle: None,
        unfinished: 0,
        undeliverable: 0,
        timed_out: false,
        stable: None,
        outcome: JobOutcome::Panicked { message },
        wall_seconds: 0.0,
        phases: None,
    }
}

/// Sleeps the seeded exponential backoff before retry `attempt` (1-up).
/// Base doubles per attempt; jitter is a pure function of the job seed
/// so reruns sleep identically.
fn backoff(spec: &LabSpec, job: &JobSpec, attempt: u32) {
    let base = spec
        .retry_backoff_ms
        .saturating_mul(1u64 << attempt.min(16))
        .min(MAX_BACKOFF_MS);
    let jitter = derive_seed(job.seed, 0xB0FF + attempt as u64) % (base / 2 + 1);
    std::thread::sleep(std::time::Duration::from_millis(
        (base + jitter).min(MAX_BACKOFF_MS),
    ));
}

/// Runs one job under full supervision: sabotage injection, panic
/// capture, and the retry policy above.
///
/// # Errors
///
/// Structural failures only (unknown network/benchmark); panics and
/// timeouts are *outcomes*, not errors.
pub fn run_one_supervised(
    spec: &LabSpec,
    job: &JobSpec,
    cancel: Option<&CancelToken>,
) -> Result<JobRecord, String> {
    let mut attempt = 0u32;
    loop {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if spec.sabotage_for(job.index) == Some(SabotageKind::Panic) {
                // Deliberate crash (harness testing): prove the
                // supervisor contains it.
                panic!("sabotage: deliberate panic in job {}", job.index);
            }
            runner::run_job_watched(spec, job, cancel)
        }));
        match caught {
            Ok(Ok(rec)) => {
                let retryable = match &rec.outcome {
                    JobOutcome::TimedOut { reason } => {
                        reason != "cancelled" && !reason_is_deterministic(reason)
                    }
                    _ => false,
                };
                if retryable && attempt < spec.retries {
                    attempt += 1;
                    backoff(spec, job, attempt);
                    continue;
                }
                return Ok(rec);
            }
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                let message = panic_message(payload);
                if attempt < spec.retries {
                    attempt += 1;
                    backoff(spec, job, attempt);
                    continue;
                }
                return Ok(panicked_record(job, message));
            }
        }
    }
}

/// Runs one scheduler group under supervision. Multi-job lockstep
/// batches are attempted whole (fast path, byte-identical results); if
/// any lane panics, the batch is abandoned and every job re-runs
/// individually supervised, so the poisoned lane is isolated and the
/// healthy lanes still complete. Groups containing sabotaged jobs skip
/// the batch and go straight to per-job supervision.
///
/// # Errors
///
/// Structural failures only, as [`run_one_supervised`].
pub fn run_group_supervised(
    spec: &LabSpec,
    jobs: &[JobSpec],
    cancel: Option<&CancelToken>,
) -> Result<Vec<JobRecord>, String> {
    let sabotaged = jobs.iter().any(|j| spec.sabotage_for(j.index).is_some());
    if jobs.len() > 1 && !sabotaged {
        match catch_unwind(AssertUnwindSafe(|| {
            runner::run_job_batch_watched(spec, jobs, cancel)
        })) {
            Ok(result) => return result,
            Err(_) => {
                // One lane blew up mid-batch; fall through and isolate.
            }
        }
    }
    jobs.iter()
        .map(|job| run_one_supervised(spec, job, cancel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::expand;

    fn base_spec(extra: &str) -> LabSpec {
        LabSpec::parse(&format!(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n{extra}"
        ))
        .unwrap()
    }

    #[test]
    fn sabotaged_panic_becomes_a_terminal_outcome() {
        let spec = base_spec("sabotage panic@0\nretry-backoff-ms 1\n");
        let jobs = expand(&spec);
        let rec = run_one_supervised(&spec, &jobs[0], None).unwrap();
        match &rec.outcome {
            JobOutcome::Panicked { message } => {
                assert!(message.contains("deliberate panic in job 0"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(rec.cycles, 0);
        assert_eq!(rec.stable, None);
    }

    #[test]
    fn panic_retries_are_bounded() {
        // retries 2 → 3 attempts total, all panicking, still terminal.
        let spec = base_spec("sabotage panic@0\nretries 2\nretry-backoff-ms 1\n");
        let jobs = expand(&spec);
        let rec = run_one_supervised(&spec, &jobs[0], None).unwrap();
        assert!(matches!(rec.outcome, JobOutcome::Panicked { .. }));
    }

    #[test]
    fn healthy_supervised_run_matches_unsupervised() {
        let spec = base_spec("");
        let jobs = expand(&spec);
        let supervised = run_one_supervised(&spec, &jobs[0], None).unwrap();
        let plain = runner::run_job(&spec, &jobs[0]).unwrap();
        assert_eq!(supervised.latency, plain.latency);
        assert_eq!(supervised.energy_pj, plain.energy_pj);
        assert!(supervised.outcome.is_completed());
    }

    #[test]
    fn sabotaged_livelock_times_out_deterministically() {
        let spec = base_spec("sabotage livelock@0\nretry-backoff-ms 1\n");
        let jobs = expand(&spec);
        let a = run_one_supervised(&spec, &jobs[0], None).unwrap();
        let b = run_one_supervised(&spec, &jobs[0], None).unwrap();
        match (&a.outcome, &b.outcome) {
            (JobOutcome::TimedOut { reason: ra }, JobOutcome::TimedOut { reason: rb }) => {
                assert!(ra.starts_with("livelock"), "{ra}");
                assert_eq!(ra, rb, "livelock verdict is cycle-deterministic");
            }
            other => panic!("expected TimedOut pair, got {other:?}"),
        }
        assert!(a.timed_out);
        assert_eq!(a.stable, None);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn mixed_group_isolates_the_poisoned_job() {
        let spec = base_spec("replicas 3\nsabotage panic@1\nretry-backoff-ms 1\n");
        let jobs = expand(&spec);
        assert_eq!(jobs.len(), 3);
        let recs = run_group_supervised(&spec, &jobs, None).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(recs[0].outcome.is_completed());
        assert!(matches!(recs[1].outcome, JobOutcome::Panicked { .. }));
        assert!(recs[2].outcome.is_completed());
        // The healthy replicas' results match unsupervised runs.
        let plain0 = runner::run_job(&spec, &jobs[0]).unwrap();
        assert_eq!(recs[0].latency, plain0.latency);
    }

    #[test]
    fn deterministic_verdicts_do_not_retry() {
        // A livelocked job with retries would re-run identically; the
        // policy skips the retry, so two calls cost the same wall time
        // order of magnitude (smoke: just assert the outcome stands).
        let spec = base_spec("sabotage livelock@0\nretries 3\nretry-backoff-ms 1\n");
        let jobs = expand(&spec);
        let rec = run_one_supervised(&spec, &jobs[0], None).unwrap();
        assert!(matches!(rec.outcome, JobOutcome::TimedOut { .. }));
    }
}
