//! The [`Network`] abstraction both simulators implement, so that the
//! harness, traffic generators, and experiment binaries are agnostic to
//! which network they drive.

use crate::fault::{FailedDelivery, FaultPlan};
use crate::geometry::Mesh;
use crate::obs::{FlightRecorder, PhaseBreakdown, PhaseProfiler, TraceBuffer};
use crate::packet::{Delivery, NewPacket, PacketId};
use crate::stats::{EnergyReport, NetworkStats};
use crate::telemetry::LinkCounters;

/// A cycle-accurate network simulator.
///
/// The drive loop is: call [`inject`](Network::inject) for packets the
/// workload wants to send this cycle, call [`step`](Network::step) once to
/// advance one clock, then [`drain_deliveries`](Network::drain_deliveries)
/// to observe what arrived.
pub trait Network {
    /// Short human-readable configuration name (e.g. `"Optical4"`,
    /// `"Electrical3"`). Matches the labels of Figures 10 and 11.
    fn name(&self) -> String;

    /// The mesh this network spans.
    fn mesh(&self) -> Mesh;

    /// Current cycle count (number of completed [`step`](Network::step)s).
    fn cycle(&self) -> u64;

    /// Attempts to accept a packet into the source node's NIC.
    ///
    /// Returns the assigned packet id, or `None` if the NIC is full (the
    /// caller should retry on a later cycle — this is the back-pressure
    /// path).
    fn inject(&mut self, packet: NewPacket) -> Option<PacketId>;

    /// Advances the simulation by one clock cycle.
    fn step(&mut self);

    /// Returns and clears the deliveries that completed since the last
    /// call. A multi-destination packet produces one [`Delivery`] per
    /// destination.
    fn drain_deliveries(&mut self) -> Vec<Delivery>;

    /// Appends the pending deliveries to `out` and clears them, without
    /// surrendering the internal buffer — per-cycle harness loops call
    /// this with a reused scratch vector so neither side reallocates.
    /// The default delegates to [`drain_deliveries`](Self::drain_deliveries).
    fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.drain_deliveries());
    }

    /// Number of packets accepted but not yet delivered to all of their
    /// destinations. Zero means the network is idle.
    fn in_flight(&self) -> usize;

    /// Cumulative energy since construction.
    fn energy(&self) -> EnergyReport;

    /// Cumulative counters since construction.
    fn stats(&self) -> NetworkStats;

    /// Per-link traversal telemetry, when the implementation collects it
    /// (the default is empty counters).
    fn link_counters(&self) -> LinkCounters {
        LinkCounters::new()
    }

    /// Attaches an event trace; subsequent cycles record
    /// [`crate::obs::SimEvent`]s into it. The default implementation
    /// discards the buffer (networks without observability support simply
    /// stay silent).
    fn set_trace(&mut self, trace: TraceBuffer) {
        let _ = trace;
    }

    /// Detaches and returns the event trace attached via
    /// [`set_trace`](Network::set_trace), if any. Tracing stops.
    fn take_trace(&mut self) -> Option<TraceBuffer> {
        None
    }

    /// Attaches a hot-loop phase profiler; subsequent
    /// [`step`](Network::step)s attribute time and work to the six
    /// per-cycle phases. The default discards it (such a network simply
    /// reports no breakdown).
    fn set_phase_profiler(&mut self, profiler: PhaseProfiler) {
        let _ = profiler;
    }

    /// Detaches the profiler attached via
    /// [`set_phase_profiler`](Network::set_phase_profiler) and returns
    /// its accumulated totals, if any. Profiling stops.
    fn take_phase_breakdown(&mut self) -> Option<PhaseBreakdown> {
        None
    }

    /// Attaches a packet flight recorder; it rides the same event path
    /// as the trace buffer and both may be attached at once. The default
    /// discards it.
    fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        let _ = recorder;
    }

    /// Detaches and returns the flight recorder attached via
    /// [`set_flight_recorder`](Network::set_flight_recorder), if any.
    fn take_flight_recorder(&mut self) -> Option<FlightRecorder> {
        None
    }

    /// Total packets/flits currently held in router-side buffers
    /// (electrical VCs, or Phastlane's electrical fallback buffers).
    /// NIC-side queues are excluded. The default reports zero.
    fn buffer_occupancy(&self) -> u64 {
        0
    }

    /// Installs a fault schedule and the seed for the dedicated
    /// fault-path RNG stream (kept separate from the network's own RNG so
    /// an empty plan leaves seeded runs byte-identical). The default
    /// implementation ignores faults — such a network simply never
    /// degrades.
    fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        let _ = (plan, seed);
    }

    /// Returns and clears the destinations the network has terminally
    /// given up on (retry cap / livelock guard). Under a fault plan,
    /// every accepted destination eventually appears in exactly one of
    /// [`drain_deliveries`](Network::drain_deliveries) or this list.
    fn drain_failures(&mut self) -> Vec<FailedDelivery> {
        Vec::new()
    }

    /// Appends the pending terminal failures to `out` and clears them
    /// (buffer-reusing counterpart of [`drain_failures`](Self::drain_failures)).
    fn drain_failures_into(&mut self, out: &mut Vec<FailedDelivery>) {
        out.append(&mut self.drain_failures());
    }
}

/// Blanket impl so `Box<dyn Network>` composes with generic harness code.
impl<N: Network + ?Sized> Network for Box<N> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn mesh(&self) -> Mesh {
        (**self).mesh()
    }
    fn cycle(&self) -> u64 {
        (**self).cycle()
    }
    fn inject(&mut self, packet: NewPacket) -> Option<PacketId> {
        (**self).inject(packet)
    }
    fn step(&mut self) {
        (**self).step()
    }
    fn drain_deliveries(&mut self) -> Vec<Delivery> {
        (**self).drain_deliveries()
    }
    fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        (**self).drain_deliveries_into(out)
    }
    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }
    fn energy(&self) -> EnergyReport {
        (**self).energy()
    }
    fn stats(&self) -> NetworkStats {
        (**self).stats()
    }
    fn link_counters(&self) -> LinkCounters {
        (**self).link_counters()
    }
    fn set_trace(&mut self, trace: TraceBuffer) {
        (**self).set_trace(trace)
    }
    fn take_trace(&mut self) -> Option<TraceBuffer> {
        (**self).take_trace()
    }
    fn set_phase_profiler(&mut self, profiler: PhaseProfiler) {
        (**self).set_phase_profiler(profiler)
    }
    fn take_phase_breakdown(&mut self) -> Option<PhaseBreakdown> {
        (**self).take_phase_breakdown()
    }
    fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        (**self).set_flight_recorder(recorder)
    }
    fn take_flight_recorder(&mut self) -> Option<FlightRecorder> {
        (**self).take_flight_recorder()
    }
    fn buffer_occupancy(&self) -> u64 {
        (**self).buffer_occupancy()
    }
    fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        (**self).set_fault_plan(plan, seed)
    }
    fn drain_failures(&mut self) -> Vec<FailedDelivery> {
        (**self).drain_failures()
    }
    fn drain_failures_into(&mut self, out: &mut Vec<FailedDelivery>) {
        (**self).drain_failures_into(out)
    }
}
