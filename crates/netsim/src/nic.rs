//! The network-interface controller: a finite injection queue per node.
//!
//! Both networks use a 50-entry NIC buffer (Tables 1 and 2). Packets that
//! do not fit are rejected back to the traffic source, which models the
//! processor stalling on a full NIC.

use std::collections::VecDeque;

/// A finite FIFO injection queue.
#[derive(Debug, Clone)]
pub struct Nic<T> {
    queue: VecDeque<T>,
    capacity: usize,
    rejected: u64,
    accepted: u64,
}

/// The paper's NIC buffer depth.
pub const NIC_ENTRIES: usize = 50;

impl<T> Nic<T> {
    /// Creates a NIC with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "NIC capacity must be positive");
        Nic {
            queue: VecDeque::new(),
            capacity,
            rejected: 0,
            accepted: 0,
        }
    }

    /// Attempts to enqueue `item`. Returns `Err(item)` if the NIC is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            Err(item)
        } else {
            self.accepted += 1;
            self.queue.push_back(item);
            Ok(())
        }
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Returns a reference to the oldest entry without removing it.
    pub fn front(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Pushes an item back to the *front* (used when a launch must be
    /// undone, e.g. a Phastlane retransmission).
    ///
    /// Unlike [`try_push`](Self::try_push) this does not count a fresh
    /// acceptance: the item was already accounted when it was first
    /// accepted, so `accepted` is untouched. For the same reason the
    /// un-launch must return an entry into the slot it vacated — it can
    /// never *grow* the queue past `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if the NIC is already full (an un-launch without a
    /// matching earlier [`pop`](Self::pop) is a caller bug that would
    /// otherwise silently overcommit the buffer).
    pub fn push_front(&mut self, item: T) {
        assert!(
            self.queue.len() < self.capacity,
            "push_front would exceed NIC capacity: un-launch without a matching pop"
        );
        self.queue.push_front(item);
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rejected enqueue attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of accepted enqueues.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Iterates over queued entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut nic = Nic::new(4);
        nic.try_push(1).unwrap();
        nic.try_push(2).unwrap();
        assert_eq!(nic.pop(), Some(1));
        assert_eq!(nic.pop(), Some(2));
        assert_eq!(nic.pop(), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut nic = Nic::new(2);
        nic.try_push('a').unwrap();
        nic.try_push('b').unwrap();
        assert!(nic.is_full());
        assert_eq!(nic.try_push('c'), Err('c'));
        assert_eq!(nic.rejected(), 1);
        assert_eq!(nic.accepted(), 2);
    }

    #[test]
    fn push_front_returns_to_head_without_recounting() {
        let mut nic = Nic::new(2);
        nic.try_push(1).unwrap();
        nic.try_push(2).unwrap();
        let launched = nic.pop().unwrap();
        // Un-launch: the entry returns to the head of the queue...
        nic.push_front(launched);
        assert_eq!(nic.len(), 2);
        assert_eq!(nic.front(), Some(&1));
        // ...and `accepted` is not double-counted.
        assert_eq!(nic.accepted(), 2);
        assert_eq!(nic.pop(), Some(1));
        assert_eq!(nic.pop(), Some(2));
    }

    #[test]
    #[should_panic(expected = "exceed NIC capacity")]
    fn push_front_when_full_is_a_bug() {
        let mut nic = Nic::new(1);
        nic.try_push(1).unwrap();
        // No slot was vacated: returning another entry would overcommit.
        nic.push_front(0);
    }

    #[test]
    fn front_peeks() {
        let mut nic = Nic::new(2);
        nic.try_push(7).unwrap();
        assert_eq!(nic.front(), Some(&7));
        assert_eq!(nic.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: Nic<u8> = Nic::new(0);
    }
}
