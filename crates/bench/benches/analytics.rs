//! Criterion benchmarks of the §3 analytic kernels (Figures 4-8) and the
//! trace generator.

use criterion::{criterion_group, criterion_main, Criterion};
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_photonics::delay::figure6_series;
use phastlane_photonics::power::figure7_grid;
use phastlane_photonics::scaling::figure4_series;
use phastlane_photonics::units::TechNode;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;
use std::collections::VecDeque;

fn bench_scaling_fits(c: &mut Criterion) {
    c.bench_function("fig4_scaling_fits", |b| b.iter(figure4_series));
}

fn bench_max_hops(c: &mut Criterion) {
    c.bench_function("fig6_max_hops_solver", |b| {
        b.iter(|| figure6_series(TechNode::NM16))
    });
}

fn bench_power_grid(c: &mut Criterion) {
    let effs = [0.97, 0.975, 0.98, 0.985, 0.99, 0.995];
    let hops = [1, 2, 3, 4, 5, 6, 7, 8];
    c.bench_function("fig7_power_grid", |b| {
        b.iter(|| figure7_grid(&effs, &hops))
    });
}

fn bench_plan_build(c: &mut Criterion) {
    let mesh = Mesh::PAPER;
    let targets: VecDeque<NodeId> = [NodeId(63)].into_iter().collect();
    c.bench_function("plan_build_corner_to_corner", |b| {
        b.iter(|| phastlane_core::plan::Plan::build(mesh, NodeId(0), &targets, false, 4))
    });
}

fn bench_multicast_split(c: &mut Criterion) {
    let mesh = Mesh::PAPER;
    let targets: Vec<NodeId> = mesh.iter_nodes().filter(|&n| n != NodeId(27)).collect();
    c.bench_function("broadcast_split_16_messages", |b| {
        b.iter(|| phastlane_core::multicast::split_multicast(mesh, NodeId(27), &targets))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut profile = splash2::benchmark("Ocean").expect("known benchmark");
    profile.misses_per_core = 20;
    c.bench_function("generate_ocean_trace_20", |b| {
        b.iter(|| generate_trace(Mesh::PAPER, &profile))
    });
}

criterion_group!(
    benches,
    bench_scaling_fits,
    bench_max_hops,
    bench_power_grid,
    bench_plan_build,
    bench_multicast_split,
    bench_trace_generation
);
criterion_main!(benches);
