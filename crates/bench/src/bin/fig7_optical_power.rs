//! Figure 7: contour of the peak optical power as a function of crossing
//! efficiency, number of wavelengths, and maximum hops per cycle.

use phastlane_bench::print_row;
use phastlane_photonics::power::figure7_grid;

fn main() {
    println!("Figure 7: peak optical power (W)\n");
    let efficiencies = [0.97, 0.98, 0.99, 0.995];
    let hops = [2, 3, 4, 5, 8];
    let widths = [6, 6, 6, 10];
    print_row(
        &["eff".into(), "wdm".into(), "hops".into(), "peak W".into()],
        &widths,
    );
    for (eff, wdm, h, power) in figure7_grid(&efficiencies, &hops) {
        print_row(
            &[
                format!("{:.1}%", eff * 100.0),
                wdm.payload_wdm.to_string(),
                h.to_string(),
                format!("{:.1}", power.as_watts()),
            ],
            &widths,
        );
    }
    println!("\npaper operating points: 64λ/4hop/98% ≈ 32 W;");
    println!("128λ/5hop/98% ≈ 32 W; 128λ/4hop/98% ≈ 15 W;");
    println!("32λ needs ≥99% efficiency or a 2-3 hop limit.");
}
