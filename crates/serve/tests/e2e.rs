//! End-to-end tests for the job service: the determinism contract
//! (API results byte-identical to a direct `run_lab`), queue
//! backpressure, event streaming, and graceful shutdown without torn
//! state.

use phastlane_lab::spec::LabSpec;
use phastlane_lab::{journal, run_lab};
use phastlane_netsim::obs::json::{self, JsonValue};
use phastlane_netsim::obs::EVENT_SCHEMA_VERSION;
use phastlane_serve::{client, server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// A small but non-trivial matrix (4 jobs), quick enough to run twice.
const QUICK_SPEC: &str = "name serve-e2e\nmesh 4x4\nseed 7\n\
                          nets optical4 electrical3\npatterns uniform\n\
                          rates 0.02 0.05\nwarmup 200\nmeasure 800\ndrain 2000\n";

/// A deliberately long single job: the measure window is big enough
/// that the run is still in flight when the test acts on it, and a
/// wall budget backstops the test if cancellation ever breaks.
const SLOW_SPEC: &str = "name serve-slow-e2e\nmesh 8x8\nseed 11\nnets optical4\n\
                         patterns uniform\nrates 0.1\nwarmup 1000\n\
                         measure 50000000\ndrain 5000\nwall-budget 120\n";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phastlane-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn submit(addr: &str, spec: &str, workers: u64) -> (u16, JsonValue) {
    let envelope = JsonValue::Obj(vec![
        ("spec".into(), JsonValue::Str(spec.into())),
        ("workers".into(), JsonValue::Uint(workers)),
    ]);
    let (status, body) = client::request(
        addr,
        "POST",
        "/jobs",
        Some(envelope.to_string_compact().as_bytes()),
    )
    .expect("submit request");
    let v = json::parse(std::str::from_utf8(&body).expect("utf-8 body")).expect("json body");
    (status, v)
}

fn job_status(addr: &str, id: u64) -> String {
    let (status, body) =
        client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status request");
    assert_eq!(status, 200, "job {id} should exist");
    json::parse(std::str::from_utf8(&body).unwrap())
        .expect("status json")
        .get("status")
        .and_then(JsonValue::as_str)
        .expect("status field")
        .to_string()
}

fn wait_for(addr: &str, id: u64, predicate: impl Fn(&str) -> bool) -> String {
    loop {
        let s = job_status(addr, id);
        if predicate(&s) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn fetch_report(addr: &str, id: u64) -> Vec<u8> {
    let (status, body) =
        client::request(addr, "GET", &format!("/jobs/{id}/report"), None).expect("report request");
    assert_eq!(status, 200, "report for job {id} should be ready");
    body
}

/// The acceptance bar: two concurrent client sessions submitting the
/// same spec get reports byte-identical to each other AND to a direct
/// serial `run_lab` of that spec — the API layer, the worker pool, and
/// the concurrent sessions contribute no bits.
#[test]
fn concurrent_sessions_match_serial_run_byte_for_byte() {
    let spec = LabSpec::parse(QUICK_SPEC).expect("spec parses");
    let reference = run_lab(&spec, 1)
        .expect("serial reference run")
        .canonical_json()
        .to_string_pretty();

    let handle = server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    // Two sessions race: different worker counts per job, submitted
    // concurrently, sharing the pool.
    let reports: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|workers| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let (status, v) = submit(&addr, QUICK_SPEC, workers);
                    assert_eq!(status, 202, "submit accepted: {v:?}");
                    let id = v.get("id").and_then(JsonValue::as_u64).expect("job id");
                    assert_eq!(
                        v.get("schema_version").and_then(JsonValue::as_u64),
                        Some(EVENT_SCHEMA_VERSION)
                    );
                    let state = wait_for(&addr, id, |s| {
                        s == "done" || s == "failed" || s == "cancelled"
                    });
                    assert_eq!(state, "done");
                    fetch_report(&addr, id)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, report) in reports.iter().enumerate() {
        assert_eq!(
            std::str::from_utf8(report).unwrap(),
            reference,
            "session {i}: served report must be byte-identical to the serial run"
        );
    }
    handle.join();
}

/// Backpressure: with one worker and a queue depth of one, a third
/// concurrent submission bounces with 429 while the first two hold the
/// pool and the queue.
#[test]
fn full_queue_rejects_with_429() {
    let handle = server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    let (status, v) = submit(&addr, SLOW_SPEC, 1);
    assert_eq!(status, 202, "{v:?}");
    wait_for(&addr, 1, |s| s == "running");

    let (status, v) = submit(&addr, SLOW_SPEC, 1);
    assert_eq!(status, 202, "one slot in the queue: {v:?}");

    let (status, v) = submit(&addr, SLOW_SPEC, 1);
    assert_eq!(status, 429, "queue full must reject: {v:?}");
    assert!(
        v.get("error").and_then(JsonValue::as_str).is_some(),
        "429 carries an error body"
    );

    // The rejection is visible in /statsz.
    let (status, body) = client::request(&addr, "GET", "/statsz", None).unwrap();
    assert_eq!(status, 200);
    let stats = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(stats.get("rejected").and_then(JsonValue::as_u64), Some(1));

    // Cancel both jobs so join is quick.
    for id in [1, 2] {
        let (status, _) =
            client::request(&addr, "POST", &format!("/jobs/{id}/cancel"), None).unwrap();
        assert_eq!(status, 200);
    }
    wait_for(&addr, 1, |s| s == "cancelled" || s == "done");
    handle.join();
}

/// The event stream replays history, stamps every line with
/// `schema_version`, and terminates with an accounted `stream_end`.
#[test]
fn event_stream_is_versioned_ndjson_with_clean_end() {
    let handle = server::start(ServerConfig::default()).expect("server starts");
    let addr = handle.local_addr().to_string();

    let (status, v) = submit(&addr, QUICK_SPEC, 2);
    assert_eq!(status, 202, "{v:?}");
    wait_for(&addr, 1, |s| s == "done");

    // Subscribing after completion still replays the buffered history.
    let mut lines = Vec::new();
    let status = client::stream(&addr, "/jobs/1/events", |line| {
        lines.push(line.to_string());
    })
    .expect("stream");
    assert_eq!(status, 200);
    // 4 jobs: lab_started + 4x(job_started, job_finished) + lab_finished
    // + stream_end.
    assert_eq!(lines.len(), 11, "lifecycle lines: {lines:#?}");
    for line in &lines {
        let v = json::parse(line).expect("each line is one JSON object");
        assert_eq!(
            v.get("schema_version").and_then(JsonValue::as_u64),
            Some(EVENT_SCHEMA_VERSION),
            "every event is stamped: {line}"
        );
    }
    assert!(lines[0].contains("\"lab_started\""), "{:?}", lines[0]);
    let last = lines.last().unwrap();
    let end = json::parse(last).unwrap();
    assert_eq!(
        end.get("event").and_then(JsonValue::as_str),
        Some("stream_end")
    );
    assert_eq!(end.get("dropped").and_then(JsonValue::as_u64), Some(0));

    // Streaming an unknown job answers 404, not a hang.
    let status = client::stream(&addr, "/jobs/99/events", |_| {}).expect("stream call");
    assert_eq!(status, 404);
    handle.join();
}

/// Graceful shutdown mid-job: the in-flight run is cancelled
/// cooperatively, every persisted file is whole (atomic writes — old
/// or new, never torn), and a restarted registry recovers the state.
#[test]
fn shutdown_mid_job_leaves_no_torn_state() {
    let dir = scratch("shutdown");
    let handle = server::start(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    let (status, v) = submit(&addr, SLOW_SPEC, 1);
    assert_eq!(status, 202, "{v:?}");
    wait_for(&addr, 1, |s| s == "running");

    // Kill the server mid-run. join() drains: cancels the in-flight
    // job and waits for the worker to record a terminal state.
    handle.request_shutdown();
    let summary = handle.join();
    assert_eq!(summary.jobs[0], 1, "one job seen");

    // Every persisted artifact parses whole.
    let spec_text = std::fs::read_to_string(dir.join("job-1.spec")).expect("spec persisted");
    LabSpec::parse(&spec_text).expect("persisted spec re-parses");
    let status_text =
        std::fs::read_to_string(dir.join("job-1.status.json")).expect("status persisted");
    let status_json = json::parse(&status_text).expect("status is whole JSON");
    let state = status_json
        .get("status")
        .and_then(JsonValue::as_str)
        .expect("status field");
    assert!(
        state == "cancelled" || state == "done",
        "terminal state persisted, got {state:?}"
    );
    let journal_path = dir.join("job-1.journal");
    if journal_path.exists() {
        let rec = journal::load(&journal_path).expect("journal header + records load");
        assert_eq!(rec.spec, spec_text, "journal pins the exact spec");
    }

    // A fresh server over the same state dir recovers without error
    // and still answers for the job.
    let handle = server::start(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("restarted server");
    let addr = handle.local_addr().to_string();
    let (code, body) = client::request(&addr, "GET", "/jobs/1", None).unwrap();
    assert_eq!(code, 200, "recovered job is queryable");
    let v = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(1));
    handle.request_shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restart recovery honours the determinism contract: a server killed
/// mid-run re-runs (resuming from the journal) and the eventual report
/// is byte-identical to a serial `run_lab`.
#[test]
fn recovered_job_still_produces_canonical_bytes() {
    let dir = scratch("recover");
    let spec = LabSpec::parse(QUICK_SPEC).unwrap();
    let reference = run_lab(&spec, 1)
        .unwrap()
        .canonical_json()
        .to_string_pretty();

    // First server: accept the job but die before any worker can take
    // it (zero-ish window: shut down immediately after submit).
    let handle = server::start(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();
    let (status, _) = submit(&addr, QUICK_SPEC, 1);
    assert_eq!(status, 202);
    handle.request_shutdown();
    handle.join();

    // Second server: the job comes back queued (it was cancelled only
    // if a worker had already started it — accept either, but a
    // re-submitted run must still match the reference).
    let handle = server::start(ServerConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("restarted server");
    let addr = handle.local_addr().to_string();
    let state = job_status(&addr, 1);
    let id = if state == "queued" || state == "running" || state == "done" {
        1
    } else {
        // The first process got far enough to cancel it; run it again.
        let (status, v) = submit(&addr, QUICK_SPEC, 1);
        assert_eq!(status, 202);
        v.get("id").and_then(JsonValue::as_u64).unwrap()
    };
    let state = wait_for(&addr, id, |s| {
        s == "done" || s == "failed" || s == "cancelled"
    });
    assert_eq!(state, "done");
    let report = fetch_report(&addr, id);
    assert_eq!(
        std::str::from_utf8(&report).unwrap(),
        reference,
        "recovered run is byte-identical to the serial reference"
    );
    handle.request_shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
