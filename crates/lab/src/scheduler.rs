//! Deterministic `std::thread` worker pool over the expanded job list.
//!
//! Determinism holds by construction, not by locking discipline:
//! * every job's seeds come from [`crate::spec::expand`] — a pure
//!   function of the spec, fixed before any thread starts;
//! * each job builds, drives, and drops its own network on its worker
//!   thread; no simulation state is shared;
//! * results land in a slot indexed by the job's matrix index, so the
//!   report order is the matrix order no matter which worker finished
//!   first.
//!
//! The only cross-thread state is the `AtomicUsize` job cursor and the
//! mutex-guarded result slots — neither influences any simulated bit.

use crate::report::{JobRecord, LabReport};
use crate::runner;
use crate::spec::{expand, LabSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Expands `spec` and runs every job on a pool of `workers` threads
/// (clamped to `1..=jobs`). A single-worker run produces a byte-identical
/// canonical report.
///
/// # Errors
///
/// Errors if the spec expands to no jobs, or any job fails (unknown
/// network/benchmark — normally caught at parse time).
pub fn run_lab(spec: &LabSpec, workers: usize) -> Result<LabReport, String> {
    let jobs = expand(spec);
    if jobs.is_empty() {
        return Err("spec expands to zero jobs".into());
    }
    let workers = workers.max(1).min(jobs.len());
    let wall_start = Instant::now();

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<JobRecord, String>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let result = runner::run_job(spec, job);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });

    let mut records = Vec::with_capacity(jobs.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let result = slot
            .into_inner()
            .expect("slot lock")
            .unwrap_or_else(|| Err(format!("job {i} never ran")));
        records.push(result.map_err(|e| format!("job {i}: {e}"))?);
    }

    Ok(LabReport::new(
        spec.clone(),
        records,
        workers,
        wall_start.elapsed().as_secs_f64(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LabSpec {
        LabSpec::parse(
            "name pool-test\nmesh 4x4\nseed 3\nnets optical4 electrical2\n\
             patterns uniform transpose\nrates 0.02 0.04\n\
             warmup 100\nmeasure 300\ndrain 1000\n",
        )
        .unwrap()
    }

    #[test]
    fn parallel_run_matches_serial_byte_for_byte() {
        let spec = small_spec();
        let serial = run_lab(&spec, 1).unwrap();
        let parallel = run_lab(&spec, 8).unwrap();
        assert_eq!(serial.jobs.len(), 8);
        assert_eq!(
            serial.canonical_json().to_string_pretty(),
            parallel.canonical_json().to_string_pretty()
        );
        assert_eq!(serial.workers, 1);
        // Worker count is clamped to the job count.
        assert_eq!(parallel.workers, 8);
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        let report = run_lab(&spec, 64).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn zero_workers_means_one() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        assert_eq!(run_lab(&spec, 0).unwrap().workers, 1);
    }

    #[test]
    fn records_come_back_in_matrix_order() {
        let report = run_lab(&small_spec(), 4).unwrap();
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }
}
