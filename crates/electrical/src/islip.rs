//! The iSLIP allocation algorithm (McKeown), used for both VC allocation
//! and switch allocation in the baseline router (Table 2).
//!
//! Classic grant/accept with rotating pointers: each output grants to the
//! first requesting input at or after its grant pointer; each input
//! accepts grants starting from its accept pointer, up to its capacity
//! (the crossbar input speedup). Pointers advance past accepted partners
//! only for first-iteration matches, preserving iSLIP's desynchronization
//! property.

/// A persistent iSLIP allocator over `n_in` inputs and `n_out` outputs.
#[derive(Debug, Clone)]
pub struct Islip {
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl Islip {
    /// Creates an allocator with all pointers at zero.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_in: usize, n_out: usize) -> Self {
        assert!(n_in > 0 && n_out > 0, "iSLIP dimensions must be positive");
        Islip {
            grant_ptr: vec![0; n_out],
            accept_ptr: vec![0; n_in],
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.accept_ptr.len()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.grant_ptr.len()
    }

    /// Runs `iterations` of iSLIP over the request matrix.
    ///
    /// `requests[i]` lists the outputs input `i` is requesting. Each
    /// output is matched to at most one input; each input to at most
    /// `in_capacity` outputs. Returns `(input, output)` matches.
    ///
    /// # Panics
    ///
    /// Panics if a request names an out-of-range output or
    /// `requests.len() != inputs()`.
    pub fn allocate(
        &mut self,
        requests: &[Vec<usize>],
        in_capacity: usize,
        iterations: usize,
    ) -> Vec<(usize, usize)> {
        assert_eq!(requests.len(), self.inputs(), "one request list per input");
        let n_in = self.inputs();
        let n_out = self.outputs();
        let mut out_matched = vec![false; n_out];
        let mut in_count = vec![0usize; n_in];
        let mut matches = Vec::new();

        for iter in 0..iterations.max(1) {
            // Grant phase: each unmatched output picks one requesting,
            // non-saturated input, round-robin from its pointer.
            let mut grants: Vec<Option<usize>> = vec![None; n_out]; // output -> input
            for out in 0..n_out {
                if out_matched[out] {
                    continue;
                }
                let start = self.grant_ptr[out];
                'scan: for k in 0..n_in {
                    let inp = (start + k) % n_in;
                    if in_count[inp] >= in_capacity {
                        continue;
                    }
                    if requests[inp].iter().any(|&o| {
                        assert!(o < n_out, "request to out-of-range output {o}");
                        o == out
                    }) {
                        grants[out] = Some(inp);
                        break 'scan;
                    }
                }
            }

            // Accept phase: each input accepts up to its remaining
            // capacity, round-robin over outputs from its pointer.
            let mut accepted_any = false;
            #[allow(clippy::needless_range_loop)] // inp indexes two arrays
            for inp in 0..n_in {
                let start = self.accept_ptr[inp];
                for k in 0..n_out {
                    if in_count[inp] >= in_capacity {
                        break;
                    }
                    let out = (start + k) % n_out;
                    if grants[out] == Some(inp) {
                        grants[out] = None;
                        out_matched[out] = true;
                        in_count[inp] += 1;
                        matches.push((inp, out));
                        accepted_any = true;
                        if iter == 0 {
                            // Pointer update rule: one past the accepted
                            // partner, first iteration only.
                            self.grant_ptr[out] = (inp + 1) % n_in;
                            self.accept_ptr[inp] = (out + 1) % n_out;
                        }
                    }
                }
            }
            if !accepted_any {
                break;
            }
        }
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn simple_one_to_one() {
        let mut a = Islip::new(2, 2);
        let m = a.allocate(&[vec![0], vec![1]], 1, 1);
        assert_eq!(sorted(m), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn conflicting_requests_pick_one() {
        let mut a = Islip::new(2, 2);
        let m = a.allocate(&[vec![0], vec![0]], 1, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 0);
    }

    #[test]
    fn pointer_rotation_gives_fairness() {
        // Two inputs fight for output 0 repeatedly; each should win about
        // half the time thanks to the grant pointer update.
        let mut a = Islip::new(2, 1);
        let mut wins = [0usize; 2];
        for _ in 0..10 {
            let m = a.allocate(&[vec![0], vec![0]], 1, 1);
            wins[m[0].0] += 1;
        }
        assert_eq!(wins[0], 5);
        assert_eq!(wins[1], 5);
    }

    #[test]
    fn input_capacity_enforced() {
        let mut a = Islip::new(1, 4);
        let m = a.allocate(&[vec![0, 1, 2, 3]], 2, 4);
        assert_eq!(m.len(), 2, "input capacity caps the matches");
    }

    #[test]
    fn input_speedup_four_matches_four_outputs() {
        let mut a = Islip::new(2, 4);
        let m = a.allocate(&[vec![0, 1, 2, 3], vec![]], 4, 4);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|&(i, _)| i == 0));
    }

    #[test]
    fn multiple_iterations_fill_the_match() {
        // With one iteration, input 0 may grab output 0 and output 1's
        // grant to input 0 is wasted while input 1 sits idle; a second
        // iteration recovers the match.
        let mut a = Islip::new(2, 2);
        let m = a.allocate(&[vec![0, 1], vec![0, 1]], 1, 2);
        assert_eq!(m.len(), 2, "two iterations find the perfect matching");
    }

    #[test]
    fn no_requests_no_matches() {
        let mut a = Islip::new(3, 3);
        assert!(a.allocate(&[vec![], vec![], vec![]], 4, 2).is_empty());
    }

    #[test]
    fn matches_are_conflict_free() {
        let mut a = Islip::new(5, 4);
        let reqs: Vec<Vec<usize>> = (0..5)
            .map(|i| (0..4).filter(|o| (i + o) % 2 == 0).collect())
            .collect();
        for _ in 0..20 {
            let m = a.allocate(&reqs, 4, 3);
            let mut outs: Vec<usize> = m.iter().map(|&(_, o)| o).collect();
            outs.sort_unstable();
            outs.dedup();
            assert_eq!(outs.len(), m.len(), "each output matched at most once");
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_request_panics() {
        let mut a = Islip::new(1, 1);
        let _ = a.allocate(&[vec![5]], 1, 1);
    }
}
