//! Interval-sampled time-series metrics.
//!
//! Aggregate end-of-run numbers hide the paper's most interesting
//! dynamics: the onset of congestion, drop storms after a hotspot forms,
//! buffer occupancy ramping toward saturation. A [`MetricsCollector`]
//! attached to a harness run closes that gap by flushing a
//! [`MetricSample`] every `interval` cycles into a [`MetricsSeries`],
//! which exports as JSON or CSV.
//!
//! The collector is deliberately decoupled from the [`crate::network::Network`]
//! trait: the harness feeds it plain numbers (`offered`, `accepted`,
//! `delivered(latency)`, then `end_cycle(...)` with cumulative counters),
//! so it works identically for the optical and electrical simulators and
//! costs nothing when not attached.

use crate::obs::json::JsonValue;
use crate::stats::LatencyStats;

/// One sample window of the time series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// First cycle covered by this window (inclusive).
    pub cycle_start: u64,
    /// Last cycle covered by this window (inclusive).
    pub cycle_end: u64,
    /// Packets the workload wanted to inject during the window.
    pub offered: u64,
    /// Packets the network accepted into a NIC during the window.
    pub accepted: u64,
    /// Per-destination deliveries completed during the window.
    pub delivered: u64,
    /// Mean latency of deliveries in the window (`None` if none).
    pub mean_latency: Option<f64>,
    /// Estimated p50 latency of deliveries in the window.
    pub p50_latency: Option<u64>,
    /// Estimated p99 latency of deliveries in the window.
    pub p99_latency: Option<u64>,
    /// Packets dropped in the network during the window.
    pub dropped: u64,
    /// Retransmissions issued during the window.
    pub retried: u64,
    /// Destinations terminally given up on during the window (retry cap
    /// / livelock guard under a fault plan).
    pub undeliverable: u64,
    /// Launches steered around faulted links/routers during the window.
    pub rerouted: u64,
    /// NIC-side injection rejections during the window.
    pub nic_rejected: u64,
    /// Packets in flight at the end of the window.
    pub in_flight: u64,
    /// Total buffered flits/packets across routers at the end of the
    /// window (electrical VC occupancy, or Phastlane fallback buffers).
    pub buffer_occupancy: u64,
}

impl MetricSample {
    /// Offered load in packets/node/cycle given the run geometry.
    pub fn offered_rate(&self, nodes: usize) -> f64 {
        self.offered as f64 / (self.cycles() * nodes as u64) as f64
    }

    /// Accepted load in packets/node/cycle given the run geometry.
    pub fn accepted_rate(&self, nodes: usize) -> f64 {
        self.accepted as f64 / (self.cycles() * nodes as u64) as f64
    }

    fn cycles(&self) -> u64 {
        self.cycle_end - self.cycle_start + 1
    }

    /// Column header matching [`to_csv_row`](Self::to_csv_row).
    pub const CSV_HEADER: &'static str = "cycle_start,cycle_end,offered,accepted,delivered,\
mean_latency,p50_latency,p99_latency,dropped,retried,undeliverable,rerouted,nic_rejected,\
in_flight,buffer_occupancy";

    /// One CSV row; empty cells for absent latency figures.
    pub fn to_csv_row(&self) -> String {
        let opt_f = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_default();
        let opt_u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.cycle_start,
            self.cycle_end,
            self.offered,
            self.accepted,
            self.delivered,
            opt_f(self.mean_latency),
            opt_u(self.p50_latency),
            opt_u(self.p99_latency),
            self.dropped,
            self.retried,
            self.undeliverable,
            self.rerouted,
            self.nic_rejected,
            self.in_flight,
            self.buffer_occupancy,
        )
    }

    /// Structured JSON form (insertion-ordered, deterministic).
    pub fn to_json(&self) -> JsonValue {
        let opt_f = |v: Option<f64>| v.map(JsonValue::Num).unwrap_or(JsonValue::Null);
        let opt_u = |v: Option<u64>| v.map(JsonValue::Uint).unwrap_or(JsonValue::Null);
        JsonValue::Obj(vec![
            ("cycle_start".into(), JsonValue::Uint(self.cycle_start)),
            ("cycle_end".into(), JsonValue::Uint(self.cycle_end)),
            ("offered".into(), JsonValue::Uint(self.offered)),
            ("accepted".into(), JsonValue::Uint(self.accepted)),
            ("delivered".into(), JsonValue::Uint(self.delivered)),
            ("mean_latency".into(), opt_f(self.mean_latency)),
            ("p50_latency".into(), opt_u(self.p50_latency)),
            ("p99_latency".into(), opt_u(self.p99_latency)),
            ("dropped".into(), JsonValue::Uint(self.dropped)),
            ("retried".into(), JsonValue::Uint(self.retried)),
            ("undeliverable".into(), JsonValue::Uint(self.undeliverable)),
            ("rerouted".into(), JsonValue::Uint(self.rerouted)),
            ("nic_rejected".into(), JsonValue::Uint(self.nic_rejected)),
            ("in_flight".into(), JsonValue::Uint(self.in_flight)),
            (
                "buffer_occupancy".into(),
                JsonValue::Uint(self.buffer_occupancy),
            ),
        ])
    }
}

/// A completed time series plus the geometry needed to normalize it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSeries {
    /// Sampling interval in cycles.
    pub interval: u64,
    /// Node count of the mesh the run used.
    pub nodes: usize,
    /// The samples, in cycle order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSeries {
    /// Structured JSON form.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("interval".into(), JsonValue::Uint(self.interval)),
            ("nodes".into(), JsonValue::Uint(self.nodes as u64)),
            (
                "samples".into(),
                JsonValue::Arr(self.samples.iter().map(MetricSample::to_json).collect()),
            ),
        ])
    }

    /// CSV form with header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(MetricSample::CSV_HEADER);
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.to_csv_row());
            out.push('\n');
        }
        out
    }
}

/// The end-of-cycle counter snapshot a harness feeds the collector:
/// cumulative network totals plus two instantaneous gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleTotals {
    /// Cumulative packets dropped inside the network.
    pub dropped: u64,
    /// Cumulative retransmissions.
    pub retried: u64,
    /// Cumulative destinations terminally given up on.
    pub undeliverable: u64,
    /// Cumulative fault reroutes.
    pub rerouted: u64,
    /// Packets in flight right now.
    pub in_flight: u64,
    /// Router-buffer occupancy right now.
    pub buffer_occupancy: u64,
}

impl CycleTotals {
    /// Builds the snapshot from a network's cumulative stats plus the two
    /// instantaneous gauges.
    pub fn from_stats(
        stats: &crate::stats::NetworkStats,
        in_flight: u64,
        buffer_occupancy: u64,
    ) -> Self {
        CycleTotals {
            dropped: stats.dropped,
            retried: stats.retransmitted,
            undeliverable: stats.undeliverable,
            rerouted: stats.rerouted,
            in_flight,
            buffer_occupancy,
        }
    }
}

/// Accumulates per-window counters and flushes samples on interval
/// boundaries.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    interval: u64,
    nodes: usize,
    window_start: u64,
    offered: u64,
    accepted: u64,
    nic_rejected: u64,
    latency: LatencyStats,
    // Cumulative counters from the last flush, to turn totals into deltas.
    last_dropped: u64,
    last_retried: u64,
    last_undeliverable: u64,
    last_rerouted: u64,
    samples: Vec<MetricSample>,
}

impl MetricsCollector {
    /// Creates a collector sampling every `interval` cycles on a mesh of
    /// `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64, nodes: usize) -> Self {
        assert!(interval > 0, "sample interval must be positive");
        MetricsCollector {
            interval,
            nodes,
            window_start: 0,
            offered: 0,
            accepted: 0,
            nic_rejected: 0,
            latency: LatencyStats::new(),
            last_dropped: 0,
            last_retried: 0,
            last_undeliverable: 0,
            last_rerouted: 0,
            samples: Vec::new(),
        }
    }

    /// Notes `n` offered injections this cycle.
    #[inline]
    pub fn on_offered(&mut self, n: u64) {
        self.offered += n;
    }

    /// Notes `n` accepted injections this cycle.
    #[inline]
    pub fn on_accepted(&mut self, n: u64) {
        self.accepted += n;
    }

    /// Notes `n` NIC rejections this cycle.
    #[inline]
    pub fn on_rejected(&mut self, n: u64) {
        self.nic_rejected += n;
    }

    /// Notes one delivery with its latency.
    #[inline]
    pub fn on_delivered(&mut self, latency: u64) {
        self.latency.record(latency);
    }

    /// Whether closing `cycle` would fill the current window — callers
    /// use this to fetch (possibly expensive) cumulative network counters
    /// only when a flush is due.
    #[inline]
    pub fn at_boundary(&self, cycle: u64) -> bool {
        cycle + 1 >= self.window_start + self.interval
    }

    /// Closes cycle `cycle`; flushes a sample when the window fills.
    ///
    /// The [`CycleTotals`] counters are *cumulative* — the collector
    /// differences them itself — except the instantaneous `in_flight`
    /// and `buffer_occupancy` snapshots.
    pub fn end_cycle(&mut self, cycle: u64, totals: CycleTotals) {
        if cycle + 1 >= self.window_start + self.interval {
            self.flush(cycle, totals);
        }
    }

    /// Flushes a trailing partial window, if any activity is pending.
    pub fn finish(&mut self, cycle: u64, totals: CycleTotals) {
        if cycle >= self.window_start {
            self.flush(cycle, totals);
        }
    }

    fn flush(&mut self, cycle: u64, totals: CycleTotals) {
        let latency = std::mem::take(&mut self.latency);
        self.samples.push(MetricSample {
            cycle_start: self.window_start,
            cycle_end: cycle,
            offered: std::mem::take(&mut self.offered),
            accepted: std::mem::take(&mut self.accepted),
            delivered: latency.count(),
            mean_latency: latency.mean(),
            p50_latency: (latency.count() > 0)
                .then(|| latency.percentile(50.0))
                .flatten(),
            p99_latency: (latency.count() > 0)
                .then(|| latency.percentile(99.0))
                .flatten(),
            dropped: totals.dropped - self.last_dropped,
            retried: totals.retried - self.last_retried,
            undeliverable: totals.undeliverable - self.last_undeliverable,
            rerouted: totals.rerouted - self.last_rerouted,
            nic_rejected: std::mem::take(&mut self.nic_rejected),
            in_flight: totals.in_flight,
            buffer_occupancy: totals.buffer_occupancy,
        });
        self.last_dropped = totals.dropped;
        self.last_retried = totals.retried;
        self.last_undeliverable = totals.undeliverable;
        self.last_rerouted = totals.rerouted;
        self.window_start = cycle + 1;
    }

    /// Finalizes into the exported series.
    pub fn into_series(self) -> MetricsSeries {
        MetricsSeries {
            interval: self.interval,
            nodes: self.nodes,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(dropped: u64, retried: u64, in_flight: u64, occupancy: u64) -> CycleTotals {
        CycleTotals {
            dropped,
            retried,
            in_flight,
            buffer_occupancy: occupancy,
            ..CycleTotals::default()
        }
    }

    #[test]
    fn windows_flush_on_interval() {
        let mut c = MetricsCollector::new(10, 16);
        for cycle in 0..25 {
            c.on_offered(2);
            c.on_accepted(1);
            if cycle % 5 == 0 {
                c.on_delivered(cycle + 3);
            }
            c.end_cycle(cycle, totals(cycle / 10, 0, 4, 7));
        }
        c.finish(24, totals(2, 0, 4, 7));
        let series = c.into_series();
        assert_eq!(series.samples.len(), 3);
        let s0 = &series.samples[0];
        assert_eq!((s0.cycle_start, s0.cycle_end), (0, 9));
        assert_eq!(s0.offered, 20);
        assert_eq!(s0.accepted, 10);
        assert_eq!(s0.delivered, 2); // cycles 0 and 5
        let s2 = &series.samples[2];
        assert_eq!((s2.cycle_start, s2.cycle_end), (20, 24));
        assert_eq!(s2.offered, 10);
    }

    #[test]
    fn cumulative_counters_become_deltas() {
        let mut c = MetricsCollector::new(4, 4);
        for cycle in 0..8 {
            c.end_cycle(
                cycle,
                CycleTotals {
                    dropped: (cycle + 1) * 3,
                    retried: cycle + 1,
                    undeliverable: cycle.div_ceil(2),
                    rerouted: cycle + 1,
                    ..CycleTotals::default()
                },
            );
        }
        let series = c.into_series();
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].dropped, 12); // totals 3..12
        assert_eq!(series.samples[1].dropped, 12); // totals 15..24
        assert_eq!(series.samples[0].retried, 4);
        assert_eq!(series.samples[1].retried, 4);
        assert_eq!(series.samples[0].undeliverable, 2);
        assert_eq!(series.samples[1].undeliverable, 2);
        assert_eq!(series.samples[0].rerouted, 4);
        assert_eq!(series.samples[1].rerouted, 4);
    }

    #[test]
    fn empty_window_has_no_latency() {
        let mut c = MetricsCollector::new(2, 4);
        c.end_cycle(0, CycleTotals::default());
        c.end_cycle(1, CycleTotals::default());
        let series = c.into_series();
        assert_eq!(series.samples.len(), 1);
        assert_eq!(series.samples[0].mean_latency, None);
        assert_eq!(series.samples[0].p99_latency, None);
    }

    #[test]
    fn rates_normalize_by_nodes_and_cycles() {
        let s = MetricSample {
            cycle_start: 0,
            cycle_end: 9,
            offered: 40,
            accepted: 20,
            delivered: 0,
            mean_latency: None,
            p50_latency: None,
            p99_latency: None,
            dropped: 0,
            retried: 0,
            undeliverable: 0,
            rerouted: 0,
            nic_rejected: 0,
            in_flight: 0,
            buffer_occupancy: 0,
        };
        assert!((s.offered_rate(4) - 1.0).abs() < 1e-12);
        assert!((s.accepted_rate(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_and_json_round() {
        let mut c = MetricsCollector::new(5, 4);
        for cycle in 0..5 {
            c.on_offered(1);
            c.on_accepted(1);
            c.on_delivered(10);
            c.end_cycle(cycle, totals(0, 0, 1, 2));
        }
        let series = c.into_series();
        let csv = series.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(MetricSample::CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("0,4,5,5,5,10.000,"), "{row}");

        let json = series.to_json();
        assert_eq!(json.get("interval").unwrap().as_u64(), Some(5));
        assert_eq!(json.get("samples").unwrap().as_arr().unwrap().len(), 1);
        // Serialization is parseable and stable.
        let text = json.to_string_compact();
        assert_eq!(crate::obs::json::parse(&text).unwrap(), json);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let _ = MetricsCollector::new(0, 4);
    }
}
