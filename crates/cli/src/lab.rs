//! The `phastlane lab` subcommand: run a scenario-spec matrix on a
//! worker pool, record named baselines, and gate regressions.
//!
//! * `lab run FILE` — expand and execute the spec, print a per-job
//!   table, optionally export the canonical report (`--report-out`,
//!   `.json` or `.csv`) and the perf profile (`--perf-out`). The
//!   canonical export is byte-identical for any `--workers` or
//!   `--batch` value (`--batch K` advances up to `K` same-cell
//!   replicas in lockstep per scheduler slot).
//! * `lab record FILE` — run, then write
//!   `<baseline-dir>/<name>.json` (canonical + perf) and a
//!   `BENCH_<name>.json` trajectory point next to the baseline dir.
//! * `lab compare FILE` — run fresh, diff against the recorded
//!   baseline, and **fail** (non-zero exit) on any regression beyond
//!   the `--tol-*` tolerances.

use crate::args::{ArgError, Parsed};
use phastlane_lab::baseline::{self, Tolerances};
use phastlane_lab::journal::{self, Journal};
use phastlane_lab::scheduler::{run_lab_opts, RunOptions};
use phastlane_lab::store::{self, StoreError};
use phastlane_lab::{LabReport, LabSpec};
use phastlane_netsim::obs::json::{self, JsonValue};
use phastlane_netsim::obs::{EventSink, Phase, PhaseProfiler};
use std::path::{Path, PathBuf};

fn read_spec(p: &Parsed) -> Result<LabSpec, ArgError> {
    let path = p
        .positional(2)
        .ok_or_else(|| ArgError("lab run|record|compare <spec-file>".into()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    LabSpec::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))
}

fn parse_tolerances(p: &Parsed) -> Result<Tolerances, ArgError> {
    let d = Tolerances::default();
    Ok(Tolerances {
        mean: p.get_parsed("tol-mean", d.mean)?,
        p99: p.get_parsed("tol-p99", d.p99)?,
        saturation: p.get_parsed("tol-saturation", d.saturation)?,
        throughput: p.get_parsed("tol-throughput", d.throughput)?,
    })
}

fn write_json(path: &str, json: &JsonValue) -> Result<(), ArgError> {
    // Atomic (temp + rename): a crash mid-export leaves the previous
    // file intact, never a torn report.
    store::write_atomic(Path::new(path), json.to_string_pretty().as_bytes())
        .map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// Builds the `--progress[=FILE]` NDJSON sink: a bare `--progress`
/// streams to stderr, `--progress=FILE` to the file. Returns the sink
/// plus its console label.
fn parse_progress(p: &Parsed) -> Result<Option<(EventSink, String)>, ArgError> {
    if let Some(path) = p.get("progress") {
        let file = std::fs::File::create(path)
            .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
        let sink = EventSink::new(Box::new(file), EventSink::DEFAULT_CAPACITY);
        Ok(Some((sink, format!("progress -> {path}"))))
    } else if p.flag("progress") {
        let sink = EventSink::new(Box::new(std::io::stderr()), EventSink::DEFAULT_CAPACITY);
        Ok(Some((sink, "progress -> stderr".into())))
    } else {
        Ok(None)
    }
}

fn execute(p: &Parsed, spec: &LabSpec) -> Result<(LabReport, String), ArgError> {
    let workers: usize = p.get_parsed("workers", 1)?;
    let batch: u32 = p.get_parsed("batch", spec.batch)?;
    if batch == 0 {
        return Err(ArgError("--batch must be at least 1".into()));
    }
    let mut spec = spec.clone();
    spec.batch = batch;
    if p.flag("profile") || p.get("profile-sample").is_some() {
        spec.profile = p.get_parsed("profile-sample", PhaseProfiler::DEFAULT_SAMPLE_EVERY)?;
        if spec.profile == 0 {
            return Err(ArgError("--profile-sample must be positive".into()));
        }
    }
    let progress = parse_progress(p)?;

    // --preflight: statically verify the matrix before spending a
    // single cycle on it. Errors (partitioned pattern pairs, an
    // infeasible optical envelope, out-of-range sabotage) refuse the
    // run with a non-zero exit; warnings are printed and the run
    // proceeds.
    let mut preflight_note = String::new();
    if p.flag("preflight") {
        let findings = phastlane_analyze::preflight(&spec).map_err(ArgError)?;
        let warnings = findings.len();
        preflight_note = format!(
            "preflight: statically clean ({warnings} warning(s))\n{}",
            findings
                .iter()
                .map(|f| format!("  {f}\n"))
                .collect::<String>()
        );
    }

    // --resume JOURNAL: replay the finished jobs of an interrupted run.
    // The journal header pins the exact spec encoding, so resuming with
    // a different spec (or different spec-shaping flags) is an error,
    // not a silently mixed report.
    let mut resume_note = String::new();
    let resumed = match p.get("resume") {
        None => Vec::new(),
        Some(path) => {
            let rec = journal::load(Path::new(path)).map_err(ArgError)?;
            if rec.spec != spec.encode() {
                return Err(ArgError(format!(
                    "journal {path} was written by a different spec; \
                     resume with the same spec file and flags\n\
                     journal spec:\n{}\ncurrent spec:\n{}",
                    rec.spec,
                    spec.encode()
                )));
            }
            resume_note = format!(
                "resumed {} finished job(s) from {path}{}\n",
                rec.records.len(),
                if rec.torn_lines > 0 {
                    format!(" ({} torn line(s) dropped)", rec.torn_lines)
                } else {
                    String::new()
                }
            );
            rec.records
        }
    };

    // --journal FILE: checkpoint every finished job. On resume the
    // recovered records are re-appended first, so the new journal is
    // self-contained.
    let journal = match p.get("journal") {
        None => None,
        Some(path) => {
            let j = Journal::create(Path::new(path), &spec).map_err(ArgError)?;
            for rec in &resumed {
                j.append(rec);
            }
            Some((j, path.to_string()))
        }
    };

    let report = run_lab_opts(
        &spec,
        RunOptions {
            workers,
            progress: progress.as_ref().map(|(s, _)| s),
            journal: journal.as_ref().map(|(j, _)| j),
            resumed,
            cancel: None,
        },
    )
    .map_err(ArgError)?;
    let mut out = format!(
        "lab {}: {} jobs on {} workers ({}x{}, seed {})\n",
        spec.name,
        report.jobs.len(),
        report.workers,
        spec.mesh.width(),
        spec.mesh.height(),
        spec.seed,
    );
    out.push_str(&preflight_note);
    out.push_str(&resume_note);
    out.push_str(&format!(
        "{:>4} {:>12} {:>10} {:>6} {:>9} {:>8} {:>7} {:>9}\n",
        "job", "net", "work", "rate", "latency", "p99", "stable", "outcome"
    ));
    for j in &report.jobs {
        let work = j
            .pattern
            .clone()
            .or_else(|| j.benchmark.clone())
            .unwrap_or_default();
        out.push_str(&format!(
            "{:>4} {:>12} {:>10} {:>6} {:>9} {:>8} {:>7} {:>9}\n",
            j.index,
            j.net,
            work,
            j.rate.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            j.latency
                .mean()
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "-".into()),
            (j.latency.count() > 0)
                .then(|| j.latency.percentile(99.0))
                .flatten()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            j.stable
                .map(|s| if s { "yes" } else { "NO" }.to_string())
                .unwrap_or_else(|| "-".into()),
            j.outcome.label(),
        ));
    }
    out.push_str(&format!(
        "wall: {:.3} s  serial est: {:.3} s  speedup: {:.2}x  {:.0} cycles/s\n",
        report.wall_seconds,
        report.serial_wall_seconds(),
        report.speedup(),
        report.cycles_per_sec(),
    ));
    if let Some(b) = report.merged_phases() {
        out.push_str("phases:");
        for ph in Phase::ALL {
            out.push_str(&format!(" {} {:.1}%", ph.name(), b.share(ph) * 100.0));
        }
        out.push('\n');
    }
    if let Some((sink, label)) = &progress {
        let t = sink.finish();
        out.push_str(&format!(
            "{label}: {} events ({} dropped, {} write errors)\n",
            t.emitted, t.dropped, t.write_errors
        ));
    }
    if let Some((j, path)) = &journal {
        out.push_str(&format!(
            "journal -> {path} ({} record(s), {} write error(s))\n",
            report.jobs.len(),
            j.write_errors()
        ));
    }
    if let Some(path) = p.get("report-out") {
        if path.ends_with(".csv") {
            std::fs::write(path, report.to_csv())
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        } else {
            write_json(path, &report.canonical_json())?;
        }
        out.push_str(&format!("report -> {path}\n"));
    }
    if let Some(path) = p.get("perf-out") {
        write_json(path, &report.perf_json())?;
        out.push_str(&format!("perf -> {path}\n"));
    }
    Ok((report, out))
}

fn baseline_path(p: &Parsed, spec: &LabSpec) -> (PathBuf, String) {
    let dir = PathBuf::from(p.get("baseline-dir").unwrap_or("results/baselines"));
    let name = p.get("name").unwrap_or(&spec.name).to_string();
    (dir.join(format!("{name}.json")), name)
}

/// The commit the bench point was measured at: `GITHUB_SHA` in CI,
/// `git rev-parse HEAD` locally, `"unknown"` outside a checkout.
fn git_commit() -> String {
    std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// A `BENCH_*.json` trajectory point: the perf layer plus enough
/// identity (commit, arena layout, batch/worker configuration) that
/// successive recordings chart simulator throughput over the repo's
/// history and every number is attributable to the code that made it.
fn bench_json(name: &str, report: &LabReport) -> JsonValue {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str(format!("lab-{name}"))),
        ("unix_time".into(), JsonValue::Uint(unix_time)),
        ("commit".into(), JsonValue::Str(git_commit())),
        (
            "config".into(),
            JsonValue::Obj(vec![
                (
                    "arena_layout".into(),
                    JsonValue::Str(phastlane_core::ARENA_LAYOUT.into()),
                ),
                (
                    "batch".into(),
                    JsonValue::Uint(u64::from(report.spec.batch)),
                ),
                ("workers".into(), JsonValue::Uint(report.workers as u64)),
            ]),
        ),
        ("jobs".into(), JsonValue::Uint(report.jobs.len() as u64)),
        ("perf".into(), report.perf_json()),
    ])
}

/// `phastlane lab run|record|compare`.
///
/// # Errors
///
/// Propagates argument/spec/I-O errors; `compare` also errors (non-zero
/// exit) when the fresh run regresses past tolerance.
pub fn cmd_lab(p: &Parsed) -> Result<String, ArgError> {
    match p.positional(1) {
        Some("run") => {
            let spec = read_spec(p)?;
            let (_, out) = execute(p, &spec)?;
            Ok(out)
        }
        Some("record") => {
            let spec = read_spec(p)?;
            let (report, mut out) = execute(p, &spec)?;
            let (path, name) = baseline_path(p, &spec);
            // Baselines are written atomically under a checksum header:
            // a torn or bit-rotted baseline is detected at compare time
            // instead of silently gating against garbage.
            store::write_checksummed(
                &path,
                &baseline::baseline_json(&name, &report).to_string_pretty(),
            )
            .map_err(|e| ArgError(format!("cannot write baseline: {e}")))?;
            out.push_str(&format!("baseline {name} -> {}\n", path.display()));
            let bench_path = match p.get("bench-out") {
                Some(b) => PathBuf::from(b),
                None => path
                    .parent()
                    .and_then(Path::parent)
                    .unwrap_or_else(|| Path::new("."))
                    .join(format!("BENCH_{name}.json")),
            };
            write_json(
                bench_path.to_str().expect("utf-8 path"),
                &bench_json(&name, &report),
            )?;
            out.push_str(&format!("bench point -> {}\n", bench_path.display()));
            Ok(out)
        }
        Some("compare") => {
            let spec = read_spec(p)?;
            let tol = parse_tolerances(p)?;
            let (path, name) = baseline_path(p, &spec);
            let text = match store::read_checksummed(&path) {
                Ok(text) => text,
                Err(StoreError::Missing(_)) => {
                    return Err(ArgError(format!(
                        "cannot read baseline {} (record it first with `lab record`): \
                         no such file",
                        path.display()
                    )))
                }
                Err(e) if e.is_corrupt() => {
                    // Never gate against damaged bytes: move the file
                    // aside and tell the user to re-record.
                    let where_to = match store::quarantine(&path) {
                        Ok(q) => format!("quarantined to {}", q.display()),
                        Err(qe) => format!("quarantine failed ({qe}); inspect it by hand"),
                    };
                    return Err(ArgError(format!(
                        "{e}\nthe damaged baseline was {where_to}; \
                         re-record it with `lab record`"
                    )));
                }
                Err(e) => return Err(ArgError(format!("cannot read baseline: {e}"))),
            };
            let recorded = json::parse(&text).map_err(|e| {
                ArgError(format!(
                    "{} is not a valid baseline (truncated or hand-edited?): {e}\n\
                     re-record it with `lab record`",
                    path.display()
                ))
            })?;
            let (report, mut out) = execute(p, &spec)?;
            let regressions = baseline::compare(&recorded, &report, &tol).map_err(ArgError)?;
            if regressions.is_empty() {
                out.push_str(&format!("baseline {name}: OK, no regressions\n"));
                Ok(out)
            } else {
                let mut msg = format!("baseline {name}: {} regression(s):\n", regressions.len());
                for r in &regressions {
                    msg.push_str(&format!("  {r}\n"));
                }
                Err(ArgError(msg))
            }
        }
        other => Err(ArgError(format!(
            "lab subcommand must be run|record|compare, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(words: &[&str]) -> Parsed {
        Parsed::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("phastlane-lab-cmd-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn write_spec(dir: &Path, body: &str) -> String {
        let path = dir.join("test.lab");
        std::fs::write(&path, body).unwrap();
        path.to_str().unwrap().to_string()
    }

    const SPEC: &str = "name cmd-test\nmesh 4x4\nseed 5\nnets optical4\n\
                        patterns uniform\nrates 0.02 0.05\n\
                        warmup 100\nmeasure 300\ndrain 1000\n";

    #[test]
    fn run_prints_table_and_exports() {
        let dir = scratch("run");
        let spec = write_spec(&dir, SPEC);
        let report = dir.join("report.json");
        let perf = dir.join("perf.json");
        let out = cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--workers",
            "2",
            "--report-out",
            report.to_str().unwrap(),
            "--perf-out",
            perf.to_str().unwrap(),
        ]))
        .expect("runs");
        assert!(out.contains("2 jobs on 2 workers"), "{out}");
        assert!(out.contains("speedup"), "{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"jobs\""));
        assert!(!text.contains("wall"), "canonical export leaks wall clock");
        let perf_text = std::fs::read_to_string(&perf).unwrap();
        assert!(perf_text.contains("speedup"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_flag_keeps_the_canonical_export_identical() {
        let dir = scratch("batch");
        let spec = write_spec(
            &dir,
            "name batch-cli\nmesh 4x4\nnets optical4\npatterns uniform\n\
             rates 0.02\nreplicas 4\nwarmup 100\nmeasure 300\ndrain 1000\n",
        );
        let plain = dir.join("plain.json");
        let batched = dir.join("batched.json");
        cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--report-out",
            plain.to_str().unwrap(),
        ]))
        .expect("unbatched run");
        cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--batch",
            "4",
            "--report-out",
            batched.to_str().unwrap(),
        ]))
        .expect("batched run");
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&batched).unwrap(),
            "--batch must not change a canonical bit"
        );
        let err =
            cmd_lab(&parsed(&["lab", "run", &spec, "--batch", "0"])).expect_err("batch 0 rejected");
        assert!(err.to_string().contains("at least 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_stream_leaves_canonical_export_identical() {
        let dir = scratch("progress");
        let spec = write_spec(&dir, SPEC);
        let silent = dir.join("silent.json");
        let streamed = dir.join("streamed.json");
        let ndjson = dir.join("progress.ndjson");
        cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--report-out",
            silent.to_str().unwrap(),
        ]))
        .expect("silent run");
        let out = cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--workers",
            "2",
            &format!("--progress={}", ndjson.display()),
            "--report-out",
            streamed.to_str().unwrap(),
        ]))
        .expect("streamed run");
        assert!(out.contains("progress ->"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&silent).unwrap(),
            std::fs::read_to_string(&streamed).unwrap(),
            "--progress must not change a canonical bit"
        );
        let text = std::fs::read_to_string(&ndjson).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2 + 2 * 2, "lifecycle events present: {text}");
        assert!(lines[0].contains("\"lab_started\""), "{text}");
        assert!(lines.last().unwrap().contains("\"lab_finished\""), "{text}");
        for line in &lines {
            json::parse(line).expect("each progress line is one JSON object");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_flag_surfaces_phases_in_perf_but_not_canonical() {
        let dir = scratch("profile");
        let spec = write_spec(&dir, SPEC);
        let report = dir.join("report.json");
        let perf = dir.join("perf.json");
        let out = cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--profile",
            "--report-out",
            report.to_str().unwrap(),
            "--perf-out",
            perf.to_str().unwrap(),
        ]))
        .expect("profiled run");
        assert!(out.contains("phases:"), "{out}");
        let canonical = std::fs::read_to_string(&report).unwrap();
        assert!(
            !canonical.contains("phases"),
            "canonical export leaks the profile: {canonical}"
        );
        let perf_text = std::fs::read_to_string(&perf).unwrap();
        assert!(perf_text.contains("\"phases\""), "{perf_text}");
        for name in ["route", "arbitrate", "traverse", "eject", "fault", "drain"] {
            assert!(
                perf_text.contains(name),
                "missing phase {name}: {perf_text}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_point_carries_commit_and_config() {
        let dir = scratch("bench-id");
        let spec = write_spec(&dir, SPEC);
        let bdir = dir.join("baselines");
        let bench = dir.join("BENCH_cmd-test.json");
        cmd_lab(&parsed(&[
            "lab",
            "record",
            &spec,
            "--batch",
            "2",
            "--baseline-dir",
            bdir.to_str().unwrap(),
            "--bench-out",
            bench.to_str().unwrap(),
        ]))
        .expect("records");
        let text = std::fs::read_to_string(&bench).unwrap();
        for key in [
            "\"commit\"",
            "\"config\"",
            "\"arena_layout\"",
            "\"batch\"",
            "\"workers\"",
        ] {
            assert!(text.contains(key), "bench point missing {key}: {text}");
        }
        assert!(
            text.contains(&format!("\"{}\"", phastlane_core::ARENA_LAYOUT)),
            "{text}"
        );
        assert!(text.contains("\"batch\": 2"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_then_compare_passes_clean() {
        let dir = scratch("record-compare");
        let spec = write_spec(&dir, SPEC);
        let bdir = dir.join("baselines");
        let record = parsed(&[
            "lab",
            "record",
            &spec,
            "--baseline-dir",
            bdir.to_str().unwrap(),
        ]);
        let out = cmd_lab(&record).expect("records");
        assert!(out.contains("baseline cmd-test ->"), "{out}");
        assert!(out.contains("bench point ->"), "{out}");
        assert!(bdir.join("cmd-test.json").exists());
        assert!(dir.join("BENCH_cmd-test.json").exists());

        let compare = parsed(&[
            "lab",
            "compare",
            &spec,
            "--baseline-dir",
            bdir.to_str().unwrap(),
        ]);
        let out = cmd_lab(&compare).expect("zero-drift compare passes");
        assert!(out.contains("no regressions"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_fails_on_injected_regression() {
        let dir = scratch("regression");
        let spec = write_spec(&dir, SPEC);
        let bdir = dir.join("baselines");
        cmd_lab(&parsed(&[
            "lab",
            "record",
            &spec,
            "--baseline-dir",
            bdir.to_str().unwrap(),
        ]))
        .expect("records");

        // Inject a regression: halve every baseline latency so the fresh
        // (unchanged) run looks twice as slow. Read through the
        // checksum layer and write back headerless (the legacy format,
        // still accepted).
        let bpath = bdir.join("cmd-test.json");
        let text = store::read_checksummed(&bpath).unwrap();
        let mut recorded = json::parse(&text).unwrap();
        fn halve_latencies(v: &mut JsonValue) {
            match v {
                JsonValue::Obj(pairs) => {
                    for (k, val) in pairs.iter_mut() {
                        if k == "latency" {
                            if let JsonValue::Obj(lat) = val {
                                for (lk, lv) in lat.iter_mut() {
                                    let halved = match (lk.as_str(), &*lv) {
                                        ("mean", JsonValue::Num(n)) => {
                                            Some(JsonValue::Num(n / 2.0))
                                        }
                                        ("p99" | "p50", JsonValue::Uint(n)) => {
                                            Some(JsonValue::Uint(n / 2))
                                        }
                                        _ => None,
                                    };
                                    if let Some(h) = halved {
                                        *lv = h;
                                    }
                                }
                            }
                        } else {
                            halve_latencies(val);
                        }
                    }
                }
                JsonValue::Arr(items) => items.iter_mut().for_each(halve_latencies),
                _ => {}
            }
        }
        halve_latencies(&mut recorded);
        std::fs::write(&bpath, recorded.to_string_pretty()).unwrap();

        let err = cmd_lab(&parsed(&[
            "lab",
            "compare",
            &spec,
            "--baseline-dir",
            bdir.to_str().unwrap(),
        ]))
        .expect_err("doctored baseline must flag a regression");
        assert!(err.to_string().contains("regression"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_without_baseline_is_a_clear_error() {
        let dir = scratch("no-baseline");
        let spec = write_spec(&dir, SPEC);
        let err = cmd_lab(&parsed(&[
            "lab",
            "compare",
            &spec,
            "--baseline-dir",
            dir.join("nowhere").to_str().unwrap(),
        ]))
        .expect_err("missing baseline");
        assert!(err.to_string().contains("record it first"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_journal_to_a_byte_identical_report() {
        let dir = scratch("resume");
        let spec = write_spec(&dir, SPEC);
        let full = dir.join("full.json");
        let resumed = dir.join("resumed.json");
        let journal = dir.join("run.ndjson");

        // Uninterrupted run (no journal) is the reference.
        cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--report-out",
            full.to_str().unwrap(),
        ]))
        .expect("reference run");

        // Journaled run; then chop the journal down to one finished job
        // to simulate a SIGKILL partway through.
        let out = cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .expect("journaled run");
        assert!(out.contains("journal ->"), "{out}");
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 records: {text}");
        std::fs::write(&journal, format!("{}\n{}\n", lines[0], lines[1])).unwrap();

        let out = cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--resume",
            journal.to_str().unwrap(),
            "--report-out",
            resumed.to_str().unwrap(),
        ]))
        .expect("resumed run");
        assert!(out.contains("resumed 1 finished job(s)"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&resumed).unwrap(),
            "resume must reproduce the uninterrupted report byte-for-byte"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_mismatched_spec() {
        let dir = scratch("resume-mismatch");
        let spec = write_spec(&dir, SPEC);
        let journal = dir.join("run.ndjson");
        cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--journal",
            journal.to_str().unwrap(),
        ]))
        .expect("journaled run");
        // Same journal, different spec: refuse to mix runs.
        let other = dir.join("other.lab");
        std::fs::write(&other, SPEC.replace("rates 0.02 0.05", "rates 0.02 0.06")).unwrap();
        let err = cmd_lab(&parsed(&[
            "lab",
            "run",
            other.to_str().unwrap(),
            "--resume",
            journal.to_str().unwrap(),
        ]))
        .expect_err("mismatched spec accepted");
        assert!(err.to_string().contains("different spec"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_baseline_is_quarantined_not_compared() {
        let dir = scratch("corrupt-baseline");
        let spec = write_spec(&dir, SPEC);
        let bdir = dir.join("baselines");
        cmd_lab(&parsed(&[
            "lab",
            "record",
            &spec,
            "--baseline-dir",
            bdir.to_str().unwrap(),
        ]))
        .expect("records");
        // Tear the baseline: flip a byte inside the checksummed payload.
        let bpath = bdir.join("cmd-test.json");
        let mut bytes = std::fs::read(&bpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&bpath, &bytes).unwrap();

        let err = cmd_lab(&parsed(&[
            "lab",
            "compare",
            &spec,
            "--baseline-dir",
            bdir.to_str().unwrap(),
        ]))
        .expect_err("corrupt baseline compared");
        let msg = err.to_string();
        assert!(msg.contains("corrupt"), "{msg}");
        assert!(msg.contains("quarantined"), "{msg}");
        assert!(!bpath.exists(), "bad file moved aside");
        assert!(bdir.join("cmd-test.json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sabotaged_jobs_surface_terminal_outcomes_in_the_report() {
        let dir = scratch("sabotage");
        let spec = write_spec(
            &dir,
            "name sabotage-cli\nmesh 4x4\nnets optical4\npatterns uniform\n\
             rates 0.02 0.05 0.08\nwarmup 50\nmeasure 100\ndrain 400\n\
             retry-backoff-ms 1\nsabotage panic@0 livelock@2\n",
        );
        let report = dir.join("report.json");
        let out = cmd_lab(&parsed(&[
            "lab",
            "run",
            &spec,
            "--workers",
            "2",
            "--report-out",
            report.to_str().unwrap(),
        ]))
        .expect("sabotaged lab still finishes");
        assert!(out.contains("panicked"), "{out}");
        assert!(out.contains("timed_out"), "{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"panicked\""), "{text}");
        assert!(text.contains("\"timed_out\""), "{text}");
        assert!(text.contains("livelock"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preflight_annotates_a_clean_spec() {
        let dir = scratch("preflight-clean");
        let spec = write_spec(&dir, SPEC);
        let out = cmd_lab(&parsed(&["lab", "run", &spec, "--preflight"])).expect("clean spec runs");
        assert!(out.contains("preflight: statically clean"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preflight_refuses_a_statically_doomed_spec() {
        let dir = scratch("preflight-doomed");
        // Intensity 1.0 activates every samplable fault: the worst-case
        // static view partitions pairs, so the matrix is doomed before
        // cycle 0 and --preflight must refuse it (non-zero exit via Err).
        let spec = write_spec(
            &dir,
            "name doomed\nmesh 4x4\nseed 7\nnets optical4\npatterns transpose\n\
             rates 0.02\nintensities 1.0\nwarmup 50\nmeasure 100\ndrain 400\n",
        );
        let err = cmd_lab(&parsed(&["lab", "run", &spec, "--preflight"]))
            .expect_err("doomed spec must be refused");
        let msg = err.to_string();
        assert!(msg.contains("statically doomed"), "{msg}");
        // Without the gate the same spec is accepted (and would burn
        // cycles discovering the partition dynamically).
        cmd_lab(&parsed(&["lab", "run", &spec])).expect("ungated run proceeds");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_subcommand_and_missing_spec() {
        assert!(cmd_lab(&parsed(&["lab"])).is_err());
        assert!(cmd_lab(&parsed(&["lab", "frobnicate"])).is_err());
        assert!(cmd_lab(&parsed(&["lab", "run"])).is_err());
        assert!(cmd_lab(&parsed(&["lab", "run", "/no/such/file.lab"])).is_err());
    }
}
