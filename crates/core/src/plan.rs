//! Flight plans: the per-cycle optical traversal a launched packet
//! attempts.
//!
//! A launch covers up to `max_hops` hops of the packet's dimension-order
//! path in a single cycle (§2.1.3). The plan lists, for every router
//! touched, how the packet enters, whether the local node receives a copy
//! (multicast tap), and how it leaves — forward, final accept, or an
//! interim stop where the packet is electrically buffered and relaunched
//! in a later cycle.

use phastlane_netsim::geometry::{Direction, Mesh, NodeId};
use phastlane_netsim::routing::{classify_turn, xy_route_into, Turn};

/// Why a plan ends at its last router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopKind {
    /// The last delivery target: the packet is received and consumed.
    Accept,
    /// An interim node: the packet is buffered and relaunched later
    /// (its Local control bit is set but more route remains).
    Interim,
}

/// How the packet leaves a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepExit {
    /// Continue through the given output port.
    Forward(Direction),
    /// Stop here.
    Stop(StopKind),
}

/// One router touched by a flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// The router.
    pub router: NodeId,
    /// Input direction the packet arrives from (`None` at the launch
    /// router, where the packet enters from the electrical buffers).
    pub entry: Option<Direction>,
    /// Whether this router's local node receives a copy via a broadcast
    /// tap resonator (multicast target en route, §2.1.4).
    pub tap: bool,
    /// How the packet leaves.
    pub exit: StepExit,
}

impl PlanStep {
    /// The turn class of a forwarding step, used for fixed-priority
    /// arbitration (straight beats turns). Launch steps have no entry and
    /// are classed separately by the router (buffered packets have
    /// priority).
    pub fn turn(&self) -> Option<Turn> {
        match (self.entry, self.exit) {
            (Some(from), StepExit::Forward(to)) => Some(classify_turn(from, to)),
            _ => None,
        }
    }
}

/// The traversal a single launch attempts in one cycle.
///
/// The `Default` plan is empty and only valid as pooled storage for a
/// later [`Plan::rebuild_with`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    steps: Vec<PlanStep>,
}

impl Plan {
    /// Builds a plan from `from` through `targets` (in path order),
    /// covering at most `max_hops` hops. `multicast` marks en-route
    /// targets as taps.
    ///
    /// The concatenated XY paths between consecutive waypoints must not
    /// fold back on themselves (no U-turns); the multicast splitter
    /// guarantees this by ordering targets monotonically along a column.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty, contains `from`, or produces a
    /// U-turn.
    pub fn build(
        mesh: Mesh,
        from: NodeId,
        targets: &[NodeId],
        multicast: bool,
        max_hops: u32,
    ) -> Plan {
        let mut plan = Plan { steps: Vec::new() };
        let mut dirs = Vec::new();
        plan.rebuild_with(&mut dirs, mesh, from, targets, multicast, max_hops);
        plan
    }

    /// Rebuilds this plan in place, reusing its step storage and the
    /// caller's `dirs` scratch buffer — the hot path builds one plan per
    /// launch, so this avoids two allocations per launch.
    ///
    /// Same contract and panics as [`Plan::build`].
    pub fn rebuild_with(
        &mut self,
        dirs: &mut Vec<Direction>,
        mesh: Mesh,
        from: NodeId,
        targets: &[NodeId],
        multicast: bool,
        max_hops: u32,
    ) {
        assert!(!targets.is_empty(), "plan needs at least one target");
        assert!(max_hops > 0, "max_hops must be positive");

        // Full hop direction list through all targets, and the set of
        // nodes that are targets.
        dirs.clear();
        let mut cursor = from;
        for &t in targets {
            assert!(t != cursor, "target {t} coincides with current position");
            xy_route_into(mesh, cursor, t, dirs);
            cursor = t;
        }
        debug_assert!(
            dirs.windows(2).all(|w| w[1] != w[0].opposite()),
            "multicast target order produced a U-turn from {from} through {targets:?}"
        );

        let total_hops = dirs.len() as u32;
        let seg_hops = total_hops.min(max_hops) as usize;

        let steps = &mut self.steps;
        steps.clear();
        steps.reserve(seg_hops + 1);
        steps.push(PlanStep {
            router: from,
            entry: None,
            tap: false,
            exit: StepExit::Forward(dirs[0]),
        });
        let mut node = from;
        for (i, &dir) in dirs.iter().take(seg_hops).enumerate() {
            node = mesh.neighbor(node, dir).expect("route stays in mesh");
            let is_last_of_segment = i + 1 == seg_hops;
            let exit = if is_last_of_segment {
                if (i as u32) + 1 == total_hops {
                    StepExit::Stop(StopKind::Accept)
                } else {
                    StepExit::Stop(StopKind::Interim)
                }
            } else {
                StepExit::Forward(dirs[i + 1])
            };
            // A target reached mid-flight is a tap; the final Accept
            // consumes the packet at the last target directly. The
            // target scan is skipped outright for unicast plans (the
            // overwhelmingly common case on the hot path).
            let tap =
                multicast && exit != StepExit::Stop(StopKind::Accept) && targets.contains(&node);
            steps.push(PlanStep {
                router: node,
                entry: Some(dir),
                tap,
                exit,
            });
        }
    }

    /// The steps, launch router first.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Number of hops this plan covers (steps minus the launch router).
    pub fn hops(&self) -> u32 {
        (self.steps.len() - 1) as u32
    }

    /// Output port of the launch router.
    pub fn first_exit(&self) -> Direction {
        match self.steps[0].exit {
            StepExit::Forward(d) => d,
            StepExit::Stop(_) => unreachable!("launch step always forwards"),
        }
    }

    /// Whether the plan ends in an interim stop (more route remains after
    /// this cycle).
    pub fn ends_at_interim(&self) -> bool {
        matches!(
            self.steps.last().expect("plan non-empty").exit,
            StepExit::Stop(StopKind::Interim)
        )
    }

    /// The delivery targets this plan reaches (taps plus a final accept).
    pub fn deliveries(&self) -> Vec<NodeId> {
        self.steps
            .iter()
            .filter(|s| s.tap || s.exit == StepExit::Stop(StopKind::Accept))
            .map(|s| s.router)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phastlane_netsim::geometry::Coord;

    fn mesh() -> Mesh {
        Mesh::PAPER
    }

    fn vd(ids: &[u16]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn short_unicast_fits_one_segment() {
        let p = Plan::build(mesh(), NodeId(0), &vd(&[3]), false, 4);
        assert_eq!(p.hops(), 3);
        assert!(!p.ends_at_interim());
        assert_eq!(p.deliveries(), vec![NodeId(3)]);
        assert_eq!(p.first_exit(), Direction::East);
    }

    #[test]
    fn long_unicast_truncates_at_interim() {
        // 0 -> 63 is 14 hops; with 4 hops/cycle the first segment stops at
        // the 4th router along the XY path.
        let p = Plan::build(mesh(), NodeId(0), &vd(&[63]), false, 4);
        assert_eq!(p.hops(), 4);
        assert!(p.ends_at_interim());
        assert_eq!(p.steps().last().unwrap().router, NodeId(4));
        assert!(p.deliveries().is_empty());
    }

    #[test]
    fn exact_boundary_is_accept_not_interim() {
        let p = Plan::build(mesh(), NodeId(0), &vd(&[4]), false, 4);
        assert_eq!(p.hops(), 4);
        assert!(!p.ends_at_interim());
        assert_eq!(p.deliveries(), vec![NodeId(4)]);
    }

    #[test]
    fn multicast_taps_en_route_targets() {
        // Down column 2 from (2,0): targets (2,1), (2,2), (2,3).
        let m = mesh();
        let src = m.node_at(Coord { x: 2, y: 0 });
        let t = |y| m.node_at(Coord { x: 2, y }).0;
        let p = Plan::build(m, src, &vd(&[t(1), t(2), t(3)]), true, 8);
        assert_eq!(p.hops(), 3);
        assert_eq!(
            p.deliveries(),
            vec![NodeId(t(1)), NodeId(t(2)), NodeId(t(3))]
        );
        // First two are taps, last is an accept.
        let taps: Vec<bool> = p.steps()[1..].iter().map(|s| s.tap).collect();
        assert_eq!(taps, vec![true, true, false]);
        assert_eq!(
            p.steps().last().unwrap().exit,
            StepExit::Stop(StopKind::Accept)
        );
    }

    #[test]
    fn multicast_interim_on_truncation() {
        // Row traversal then a long column, truncated mid-column.
        let m = mesh();
        let src = m.node_at(Coord { x: 0, y: 0 });
        let targets = vd(&[
            m.node_at(Coord { x: 3, y: 2 }).0,
            m.node_at(Coord { x: 3, y: 6 }).0,
        ]);
        let p = Plan::build(m, src, &targets, true, 5);
        assert_eq!(p.hops(), 5);
        assert!(p.ends_at_interim());
        // The tap at (3,2) happens inside the segment (3 + 2 = 5 hops is
        // the segment end, which is the tap router -> tap + interim).
        let last = p.steps().last().unwrap();
        assert_eq!(last.router, m.node_at(Coord { x: 3, y: 2 }));
        assert!(last.tap, "interim router that is also a target still taps");
    }

    #[test]
    fn entry_directions_chain() {
        let p = Plan::build(mesh(), NodeId(0), &vd(&[18]), false, 8); // (0,0)->(2,2)
        let steps = p.steps();
        assert_eq!(steps[0].entry, None);
        for w in steps.windows(2) {
            if let StepExit::Forward(d) = w[0].exit {
                assert_eq!(w[1].entry, Some(d));
            }
        }
    }

    #[test]
    fn turn_classification_on_xy_corner() {
        // (0,0) -> (2,2): east, east, then south = a turn at (2,0).
        let p = Plan::build(mesh(), NodeId(0), &vd(&[18]), false, 8);
        let turns: Vec<Option<Turn>> = p.steps().iter().map(|s| s.turn()).collect();
        assert_eq!(turns[0], None); // launch
        assert_eq!(turns[1], Some(Turn::Straight));
        assert_eq!(turns[2], Some(Turn::Right)); // east -> south is a right turn
    }

    #[test]
    fn rebuild_with_matches_fresh_build() {
        // Reusing the step and direction buffers must be invisible.
        let mut dirs = Vec::new();
        let mut p = Plan::build(mesh(), NodeId(0), &vd(&[63]), false, 4);
        p.rebuild_with(&mut dirs, mesh(), NodeId(5), &vd(&[7]), false, 4);
        assert_eq!(p, Plan::build(mesh(), NodeId(5), &vd(&[7]), false, 4));
        p.rebuild_with(&mut dirs, mesh(), NodeId(0), &vd(&[18]), true, 8);
        assert_eq!(p, Plan::build(mesh(), NodeId(0), &vd(&[18]), true, 8));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let _ = Plan::build(mesh(), NodeId(0), &[], false, 4);
    }

    #[test]
    #[should_panic(expected = "coincides")]
    fn self_target_rejected() {
        let _ = Plan::build(mesh(), NodeId(0), &vd(&[0]), false, 4);
    }
}
