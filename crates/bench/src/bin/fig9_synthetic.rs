//! Figure 9: average packet latency as a function of injection rate for
//! the Bit Comp, Bit Reverse, Shuffle, and Transpose synthetic patterns,
//! comparing the optical configurations against the electrical baselines.
//!
//! Usage: `cargo run --release -p phastlane-bench --bin fig9_synthetic
//! [--quick]`

use phastlane_bench::chart::{render_log_y, Series};
use phastlane_bench::{print_row, quick_flag, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_netsim::harness::SyntheticOptions;
use phastlane_netsim::sweep::{latency_sweep, saturation, Saturation, SweepPoint};
use phastlane_traffic::patterns::Pattern;
use phastlane_traffic::synthetic::BernoulliTraffic;

fn main() {
    let quick = quick_flag();
    let draw_charts = std::env::args().any(|a| a == "--chart");
    let opts = if quick {
        SyntheticOptions {
            warmup: 300,
            measure: 1_000,
            drain: 3_000,
        }
    } else {
        SyntheticOptions {
            warmup: 1_000,
            measure: 4_000,
            drain: 12_000,
        }
    };
    let rates: Vec<f64> = if quick {
        vec![0.02, 0.06, 0.10, 0.16, 0.22, 0.30]
    } else {
        vec![
            0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.13, 0.16, 0.20, 0.24, 0.28, 0.34, 0.40,
        ]
    };

    println!("Figure 9: average packet latency (cycles) vs injection rate");
    println!("(packets/node/cycle; '-' marks saturated points)\n");

    for pattern in Pattern::FIGURE9 {
        println!("--- {} ---", pattern.label());
        let widths: Vec<usize> = std::iter::once(7)
            .chain(Config::FIGURE9.iter().map(|c| c.label().len().max(8)))
            .collect();
        let mut header = vec!["rate".to_string()];
        header.extend(Config::FIGURE9.iter().map(|c| c.label().to_string()));
        print_row(&header, &widths);

        let mut curves: Vec<Vec<SweepPoint>> = Vec::new();
        for &cfg in &Config::FIGURE9 {
            let points = latency_sweep(
                &rates,
                || cfg.build(),
                |rate| BernoulliTraffic::new(Mesh::PAPER, pattern, rate, 0x51CA + cfg as u64),
                opts,
            );
            curves.push(points);
        }
        for (ri, &rate) in rates.iter().enumerate() {
            let mut cells = vec![format!("{rate:.2}")];
            for curve in &curves {
                let p = &curve[ri];
                if p.is_stable() {
                    cells.push(format!("{:.1}", p.mean_latency()));
                } else {
                    cells.push("-".to_string());
                }
            }
            print_row(&cells, &widths);
        }
        let mut cells = vec!["sat.".to_string()];
        for curve in &curves {
            match saturation(curve) {
                Saturation::Stable(r) => cells.push(format!("{r:.2}")),
                Saturation::SaturatedFromStart(low) => cells.push(format!("<{low:.2}")),
                Saturation::NotSwept => cells.push("?".to_string()),
            }
        }
        print_row(&cells, &widths);
        if draw_charts {
            let markers = ['o', '4', '8', 'x', '#'];
            let series: Vec<Series> = Config::FIGURE9
                .iter()
                .zip(markers)
                .zip(&curves)
                .map(|((cfg, marker), curve)| Series {
                    label: cfg.label().to_string(),
                    marker,
                    points: curve
                        .iter()
                        .filter(|p| p.is_stable())
                        .map(|p| (p.offered_rate, p.mean_latency()))
                        .collect(),
                })
                .collect();
            println!("\n{}", render_log_y(&series, 56, 12));
        }
        println!();
    }
    println!("paper: optical ~5-10x lower latency than electrical, with");
    println!("slightly better saturation bandwidth.");
}
