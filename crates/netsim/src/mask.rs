//! A fixed-capacity node bitset supporting meshes of up to 256 nodes —
//! the "tens and eventually hundreds of processing cores" the paper's
//! introduction targets.

use crate::geometry::NodeId;
use std::fmt;

/// Number of nodes a [`NodeMask`] can address.
pub const MASK_CAPACITY: usize = 256;
const WORDS: usize = MASK_CAPACITY / 64;

/// A set of nodes as a 256-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeMask {
    words: [u64; WORDS],
}

impl NodeMask {
    /// The empty set.
    pub const EMPTY: NodeMask = NodeMask { words: [0; WORDS] };

    /// Builds a mask from nodes.
    ///
    /// # Panics
    ///
    /// Panics if any node index is ≥ [`MASK_CAPACITY`].
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut m = NodeMask::EMPTY;
        for n in nodes {
            m.insert(n);
        }
        m
    }

    /// Inserts a node.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of capacity.
    pub fn insert(&mut self, node: NodeId) {
        let i = node.index();
        assert!(i < MASK_CAPACITY, "node {node} exceeds mask capacity");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes a node (no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        let i = node.index();
        if i < MASK_CAPACITY {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Whether the node is present.
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        i < MASK_CAPACITY && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set intersection.
    #[must_use]
    pub fn and(&self, other: &NodeMask) -> NodeMask {
        let mut out = NodeMask::EMPTY;
        for i in 0..WORDS {
            out.words[i] = self.words[i] & other.words[i];
        }
        out
    }

    /// Set union.
    #[must_use]
    pub fn or(&self, other: &NodeMask) -> NodeMask {
        let mut out = NodeMask::EMPTY;
        for i in 0..WORDS {
            out.words[i] = self.words[i] | other.words[i];
        }
        out
    }

    /// Elements of `self` not in `other`.
    #[must_use]
    pub fn minus(&self, other: &NodeMask) -> NodeMask {
        let mut out = NodeMask::EMPTY;
        for i in 0..WORDS {
            out.words[i] = self.words[i] & !other.words[i];
        }
        out
    }

    /// Whether the two sets share any node.
    pub fn intersects(&self, other: &NodeMask) -> bool {
        !self.and(other).is_empty()
    }

    /// Iterates the nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..WORDS).flat_map(move |w| {
            let mut bits = self.words[w];
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(NodeId((w * 64 + b as usize) as u16))
            })
        })
    }
}

impl FromIterator<NodeId> for NodeMask {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeMask::from_nodes(iter)
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut m = NodeMask::EMPTY;
        assert!(m.is_empty());
        m.insert(NodeId(0));
        m.insert(NodeId(63));
        m.insert(NodeId(64));
        m.insert(NodeId(255));
        assert_eq!(m.len(), 4);
        for n in [0u16, 63, 64, 255] {
            assert!(m.contains(NodeId(n)));
        }
        assert!(!m.contains(NodeId(100)));
        m.remove(NodeId(64));
        assert!(!m.contains(NodeId(64)));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a = NodeMask::from_nodes([NodeId(1), NodeId(2), NodeId(200)]);
        let b = NodeMask::from_nodes([NodeId(2), NodeId(3)]);
        assert_eq!(a.and(&b), NodeMask::from_nodes([NodeId(2)]));
        assert_eq!(
            a.or(&b),
            NodeMask::from_nodes([NodeId(1), NodeId(2), NodeId(3), NodeId(200)])
        );
        assert_eq!(a.minus(&b), NodeMask::from_nodes([NodeId(1), NodeId(200)]));
        assert!(a.intersects(&b));
        assert!(!a.minus(&b).intersects(&b));
    }

    #[test]
    fn iter_ascending_across_words() {
        let m = NodeMask::from_nodes([NodeId(200), NodeId(5), NodeId(64), NodeId(63)]);
        let v: Vec<u16> = m.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![5, 63, 64, 200]);
    }

    #[test]
    fn display_lists_members() {
        let m = NodeMask::from_nodes([NodeId(3), NodeId(1)]);
        assert_eq!(m.to_string(), "{1,3}");
        assert_eq!(NodeMask::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_rejected() {
        let mut m = NodeMask::EMPTY;
        m.insert(NodeId(256));
    }

    #[test]
    fn from_iterator() {
        let m: NodeMask = (0..10u16).map(NodeId).collect();
        assert_eq!(m.len(), 10);
    }
}
