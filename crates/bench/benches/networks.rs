//! Microbenchmarks of the two network simulators: cycle throughput
//! under load and end-to-end replay of a small coherence trace (the
//! kernel behind Figures 10 and 11). Plain `main` + the in-tree
//! [`phastlane_bench::timing`] runner; no external bench framework.

use phastlane_bench::timing::bench;
use phastlane_bench::Config;
use phastlane_netsim::harness::{run_trace, TraceOptions};
use phastlane_netsim::{Mesh, Network, NewPacket, NodeId};
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn loaded_network(cfg: Config) -> Box<dyn Network> {
    let mut net = cfg.build();
    for i in 0..64u16 {
        let dst = NodeId((i * 23 + 9) % 64);
        if NodeId(i) != dst {
            let _ = net.inject(NewPacket::unicast(NodeId(i), dst));
        }
    }
    net
}

fn bench_step() {
    for cfg in [Config::Optical4, Config::Electrical3] {
        bench(&format!("network_step/{}", cfg.label()), || {
            let mut net = loaded_network(cfg);
            for _ in 0..10 {
                net.step();
            }
            net.cycle()
        });
    }
}

fn bench_trace_replay() {
    let mut profile = splash2::benchmark("LU").expect("known benchmark");
    profile.misses_per_core = 4;
    let trace = generate_trace(Mesh::PAPER, &profile);
    for cfg in [Config::Optical4, Config::Electrical3] {
        bench(&format!("trace_replay_lu4/{}", cfg.label()), || {
            let mut net = cfg.build();
            run_trace(&mut net, &trace, TraceOptions::default()).completion_cycle
        });
    }
}

fn bench_broadcast() {
    for cfg in [Config::Optical4, Config::Electrical3] {
        bench(&format!("single_broadcast/{}", cfg.label()), || {
            let mut net = cfg.build();
            net.inject(NewPacket::broadcast(
                NodeId(27),
                phastlane_netsim::PacketKind::ReadRequest,
            ))
            .expect("NIC room");
            while net.in_flight() > 0 {
                net.step();
            }
            net.drain_deliveries().len()
        });
    }
}

fn main() {
    bench_step();
    bench_trace_replay();
    bench_broadcast();
}
