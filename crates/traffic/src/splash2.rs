//! Calibrated profiles for the ten SPLASH2 benchmarks of Table 3.
//!
//! The paper traced SPLASH2 with SESC on a 64-core system with reduced
//! cache sizes (Table 4). We cannot run SESC, so each benchmark is
//! characterized by a coherence-traffic profile (see
//! [`crate::coherence::BenchmarkProfile`]) calibrated to reproduce the
//! *relative* behaviours §5 reports:
//!
//! * most benchmarks are network-latency-bound with shared data served
//!   cache-to-cache, giving Phastlane >1.5x network speedups;
//! * the lightweight, dependence-chained codes (Raytrace, the two Water
//!   codes) are most latency-sensitive, landing >2.8x;
//! * Ocean and FMM are barrier-bursty with hot shared structures: their
//!   broadcast storms overflow Phastlane's 10-entry buffers, causing
//!   drop/retransmit cascades until buffers grow to 64/32 entries;
//!   Barnes and Cholesky are moderately bursty and buffer-sensitive.
//!
//! Absolute speedups depend on the authors' unavailable traces; the
//! calibration targets the ordering and rough magnitudes.

use crate::coherence::BenchmarkProfile;

/// The ten SPLASH2 benchmarks in the paper's Table 3 order.
pub fn all_benchmarks() -> Vec<BenchmarkProfile> {
    vec![
        BenchmarkProfile {
            name: "Barnes",
            misses_per_core: 200,
            write_fraction: 0.30,
            shared_fraction: 0.75,
            writeback_fraction: 0.30,
            mean_gap: 30.0,
            barrier_every: 40,
            hotspot_weight: 0.15,
            outstanding: 1,
            active_cores: 64,
            seed: 0x0B42_0001,
        },
        BenchmarkProfile {
            name: "Cholesky",
            misses_per_core: 180,
            write_fraction: 0.25,
            shared_fraction: 0.70,
            writeback_fraction: 0.25,
            mean_gap: 35.0,
            barrier_every: 36,
            hotspot_weight: 0.20,
            outstanding: 1,
            active_cores: 48,
            seed: 0x0B42_0002,
        },
        BenchmarkProfile {
            name: "FFT",
            misses_per_core: 220,
            write_fraction: 0.35,
            shared_fraction: 0.80,
            writeback_fraction: 0.30,
            mean_gap: 25.0,
            barrier_every: 110,
            hotspot_weight: 0.05,
            outstanding: 1,
            active_cores: 64,
            seed: 0x0B42_0003,
        },
        BenchmarkProfile {
            name: "LU",
            misses_per_core: 200,
            write_fraction: 0.30,
            shared_fraction: 0.75,
            writeback_fraction: 0.25,
            mean_gap: 28.0,
            barrier_every: 100,
            hotspot_weight: 0.10,
            outstanding: 1,
            active_cores: 64,
            seed: 0x0B42_0004,
        },
        BenchmarkProfile {
            name: "Ocean",
            misses_per_core: 220,
            write_fraction: 0.40,
            shared_fraction: 0.60,
            writeback_fraction: 0.35,
            mean_gap: 14.0,
            barrier_every: 10,
            hotspot_weight: 0.40,
            outstanding: 6,
            active_cores: 64,
            seed: 0x0B42_0005,
        },
        BenchmarkProfile {
            name: "Radix",
            misses_per_core: 260,
            write_fraction: 0.45,
            shared_fraction: 0.80,
            writeback_fraction: 0.40,
            mean_gap: 20.0,
            barrier_every: 130,
            hotspot_weight: 0.05,
            outstanding: 2,
            active_cores: 64,
            seed: 0x0B42_0006,
        },
        BenchmarkProfile {
            name: "Raytrace",
            misses_per_core: 160,
            write_fraction: 0.15,
            shared_fraction: 0.95,
            writeback_fraction: 0.15,
            mean_gap: 4.0,
            barrier_every: 0,
            hotspot_weight: 0.10,
            outstanding: 1,
            active_cores: 24,
            seed: 0x0B42_0007,
        },
        BenchmarkProfile {
            name: "Water-NSquared",
            misses_per_core: 140,
            write_fraction: 0.20,
            shared_fraction: 0.95,
            writeback_fraction: 0.20,
            mean_gap: 2.0,
            barrier_every: 0,
            hotspot_weight: 0.05,
            outstanding: 1,
            active_cores: 20,
            seed: 0x0B42_0008,
        },
        BenchmarkProfile {
            name: "Water-Spatial",
            misses_per_core: 140,
            write_fraction: 0.20,
            shared_fraction: 0.95,
            writeback_fraction: 0.20,
            mean_gap: 3.0,
            barrier_every: 0,
            hotspot_weight: 0.05,
            outstanding: 1,
            active_cores: 22,
            seed: 0x0B42_0009,
        },
        BenchmarkProfile {
            name: "FMM",
            misses_per_core: 200,
            write_fraction: 0.35,
            shared_fraction: 0.65,
            writeback_fraction: 0.30,
            mean_gap: 15.0,
            barrier_every: 12,
            hotspot_weight: 0.40,
            outstanding: 6,
            active_cores: 64,
            seed: 0x0B42_000A,
        },
    ]
}

/// Looks up a benchmark profile by (case-insensitive) name.
pub fn benchmark(name: &str) -> Option<BenchmarkProfile> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::generate_trace;
    use phastlane_netsim::geometry::Mesh;

    #[test]
    fn ten_benchmarks_match_table3() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "Barnes",
                "Cholesky",
                "FFT",
                "LU",
                "Ocean",
                "Radix",
                "Raytrace",
                "Water-NSquared",
                "Water-Spatial",
                "FMM"
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(benchmark("ocean").is_some());
        assert!(benchmark("OCEAN").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn bursty_benchmarks_are_ocean_and_fmm() {
        // Smallest barrier phases = most frequent broadcast storms.
        let mut by_barrier: Vec<_> = all_benchmarks()
            .into_iter()
            .filter(|b| b.barrier_every > 0)
            .collect();
        by_barrier.sort_by_key(|b| b.barrier_every);
        let top2: Vec<&str> = by_barrier[..2].iter().map(|b| b.name).collect();
        assert!(top2.contains(&"Ocean"));
        assert!(top2.contains(&"FMM"));
    }

    #[test]
    fn every_profile_generates_a_valid_trace() {
        for p in all_benchmarks() {
            let mut small = p.clone();
            small.misses_per_core = 5; // keep the test fast
            let t = generate_trace(Mesh::PAPER, &small);
            assert!(t.validate().is_ok(), "{}", p.name);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<u64> = all_benchmarks().iter().map(|b| b.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10);
    }
}
