//! Arbitration-policy alternatives (§2.1.1, footnote 3, and §7's future
//! work).
//!
//! The paper chose *rotating priority* for selecting buffered packets and
//! *fixed priority* (straight beats turns) for the optical path, noting
//! in footnote 3 that "a more complicated scheme such as round-robin
//! yielded no performance advantage over fixed-priority, while increasing
//! crossbar latency", and listing arbitration alternatives as future
//! work (§7). This module makes both choices configurable so the claims
//! can be re-examined (see the `ablations` experiment binary).

use crate::router::Entry;
use std::fmt;

/// How a router's arbiter picks buffered packets for its output ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbitrationPolicy {
    /// The paper's scheme: a pointer rotates over the five queues each
    /// cycle.
    #[default]
    RotatingPriority,
    /// Always scan N, S, E, W, Local in that order (unfair under load).
    FixedOrder,
    /// Pick the queue whose head packet has waited longest (age-based).
    OldestFirst,
}

impl ArbitrationPolicy {
    /// All policies, for sweeps.
    pub const ALL: [ArbitrationPolicy; 3] = [
        ArbitrationPolicy::RotatingPriority,
        ArbitrationPolicy::FixedOrder,
        ArbitrationPolicy::OldestFirst,
    ];

    /// The queue visit order for this cycle given the rotating pointer
    /// state and the current queue heads.
    pub fn queue_order(self, rotate: [usize; 5], heads: [Option<&Entry>; 5]) -> [usize; 5] {
        match self {
            ArbitrationPolicy::RotatingPriority => rotate,
            ArbitrationPolicy::FixedOrder => [0, 1, 2, 3, 4],
            ArbitrationPolicy::OldestFirst => {
                let mut order = [0usize, 1, 2, 3, 4];
                // Sort by the head's injection cycle; empty queues last.
                order.sort_by_key(|&q| heads[q].map_or(u64::MAX, |e| e.core.injected_cycle));
                order
            }
        }
    }
}

impl fmt::Display for ArbitrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArbitrationPolicy::RotatingPriority => "rotating-priority",
            ArbitrationPolicy::FixedOrder => "fixed-order",
            ArbitrationPolicy::OldestFirst => "oldest-first",
        };
        f.write_str(s)
    }
}

/// How same-cycle contention between optical packets is resolved at a
/// router output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PathPriority {
    /// The paper's scheme: straight beats left beats right, ties broken
    /// by a fixed input-port order. Cheapest control path.
    #[default]
    Fixed,
    /// Round-robin over input ports, rotating each cycle (the footnote-3
    /// alternative; the paper found no performance advantage).
    RoundRobin,
}

impl PathPriority {
    /// Both schemes, for sweeps.
    pub const ALL: [PathPriority; 2] = [PathPriority::Fixed, PathPriority::RoundRobin];

    /// Priority tuple for a contender (lower wins). `turn_class` is
    /// 1 = straight, 2 = left, 3 = right; `entry_index` identifies the
    /// input port; `cycle` rotates the round-robin pointer.
    pub fn rank(self, turn_class: u8, entry_index: u8, cycle: u64) -> (u8, u8) {
        match self {
            PathPriority::Fixed => (turn_class, entry_index),
            PathPriority::RoundRobin => {
                // Ignore the turn class; rotate which input port wins.
                let rotated = (u64::from(entry_index) + 4 - (cycle % 4)) % 4;
                (1, rotated as u8)
            }
        }
    }
}

impl fmt::Display for PathPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PathPriority::Fixed => "fixed",
            PathPriority::RoundRobin => "round-robin",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PacketCore;
    use phastlane_netsim::packet::{PacketId, PacketKind};
    use phastlane_netsim::NodeId;

    fn entry(injected: u64) -> Entry {
        Entry {
            uid: injected,
            core: PacketCore {
                id: PacketId(injected),
                src: NodeId(0),
                kind: PacketKind::Data,
                multicast: false,
                injected_cycle: injected,
            },
            targets: [NodeId(1)].into_iter().collect(),
            ready_at: 0,
            attempts: 0,
        }
    }

    #[test]
    fn rotating_uses_rotation() {
        let heads: [Option<&Entry>; 5] = [None; 5];
        let order = ArbitrationPolicy::RotatingPriority.queue_order([2, 3, 4, 0, 1], heads);
        assert_eq!(order, [2, 3, 4, 0, 1]);
    }

    #[test]
    fn fixed_order_ignores_rotation() {
        let heads: [Option<&Entry>; 5] = [None; 5];
        let order = ArbitrationPolicy::FixedOrder.queue_order([2, 3, 4, 0, 1], heads);
        assert_eq!(order, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn oldest_first_orders_by_age() {
        let e_new = entry(100);
        let e_old = entry(5);
        let e_mid = entry(50);
        let heads: [Option<&Entry>; 5] = [Some(&e_new), None, Some(&e_old), Some(&e_mid), None];
        let order = ArbitrationPolicy::OldestFirst.queue_order([0, 1, 2, 3, 4], heads);
        assert_eq!(&order[..3], &[2, 3, 0], "oldest heads first");
    }

    #[test]
    fn fixed_path_priority_prefers_straight() {
        let p = PathPriority::Fixed;
        assert!(
            p.rank(1, 3, 7) < p.rank(2, 0, 7),
            "straight beats left regardless of port"
        );
        assert!(p.rank(2, 1, 7) < p.rank(3, 0, 7), "left beats right");
        assert!(
            p.rank(1, 0, 7) < p.rank(1, 1, 7),
            "ties broken by port order"
        );
    }

    #[test]
    fn round_robin_rotates_winner() {
        let p = PathPriority::RoundRobin;
        // At cycle 0 port 0 wins; at cycle 1 port 1 wins; etc.
        for cycle in 0..8u64 {
            let winner = (0..4u8)
                .min_by_key(|&e| p.rank(1, e, cycle))
                .expect("non-empty");
            assert_eq!(u64::from(winner), cycle % 4);
        }
    }

    #[test]
    fn round_robin_ignores_turn_class() {
        let p = PathPriority::RoundRobin;
        assert_eq!(p.rank(1, 2, 0), p.rank(3, 2, 0));
    }

    #[test]
    fn displays() {
        assert_eq!(
            ArbitrationPolicy::RotatingPriority.to_string(),
            "rotating-priority"
        );
        assert_eq!(PathPriority::RoundRobin.to_string(), "round-robin");
    }
}
