//! The predecoded Router Control bits carried optically with each packet
//! (§2.1, Figure 3).
//!
//! Each packet carries up to 14 *groups* of five control bits — Straight,
//! Left, Right, Local, and Multicast — one group per router it may
//! traverse. The groups ride on two control waveguides: C0 holds Groups
//! 1–7 on wavelengths λ1–λ35, C1 holds Groups 8–14. Each router consumes
//! Group 1 to set its turn/receive resonators, then *frequency-translates*
//! the remaining C0 groups down five wavelengths onto the output C1
//! waveguide while the physical C1 waveguide shifts into the C0 position —
//! lining the next router's group up at Group 1 again.
//!
//! The simulator's flight plans are built first (they know geometry); this
//! module encodes a plan into control groups and decodes them back, so
//! tests can verify the optical control encoding is faithful and lossless.
//!
//! Groups here are ordered by *consumption* (router 1, router 2, …). The
//! physical shift/translate hardware actually consumes waveguide
//! positions in the interleaved order 1, 8, 2, 9, …; the mapping from
//! consumption order to physical position — which the source uses when
//! driving its modulators — is [`crate::channels::group_position_for_router`].

use crate::plan::{Plan, PlanStep, StepExit, StopKind};
use phastlane_netsim::geometry::Direction;
use phastlane_netsim::routing::{classify_turn, Turn};

/// Maximum control groups a packet can carry: 70 bits / 5 = 14, enough
/// for the 14-hop worst-case path of an 8x8 mesh.
pub const MAX_GROUPS: usize = 14;
/// Groups carried per control waveguide (35-way WDM / 5 bits).
pub const GROUPS_PER_WAVEGUIDE: usize = 7;

/// One router's five predecoded control bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControlGroup {
    /// Continue straight through the router.
    pub straight: bool,
    /// Turn left (relative to travel direction).
    pub left: bool,
    /// Turn right.
    pub right: bool,
    /// Receive the packet at this router (destination or interim node).
    pub local: bool,
    /// Multicast: the local node receives a copy; combined with `local`
    /// this router is a multicast delivery endpoint.
    pub multicast: bool,
}

impl ControlGroup {
    /// At most one of straight/left/right may be set, and a group with
    /// none of them set must have `local` set (the packet stops).
    pub fn is_well_formed(&self) -> bool {
        let dirs = u8::from(self.straight) + u8::from(self.left) + u8::from(self.right);
        dirs <= 1 && (dirs == 1 || self.local)
    }

    /// The five bits in wire order (Straight, Left, Right, Local,
    /// Multicast).
    pub fn bits(&self) -> [bool; 5] {
        [
            self.straight,
            self.left,
            self.right,
            self.local,
            self.multicast,
        ]
    }
}

/// The full control payload of a packet: Groups 1..=N.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteControl {
    groups: Vec<ControlGroup>,
}

/// Error decoding a control group against an entry direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "control decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// The routing action a router takes after decoding Group 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedAction {
    /// Forward out of the given port; `tap` means the local node takes a
    /// multicast copy as the packet passes.
    Forward {
        /// Output direction.
        out: Direction,
        /// Broadcast tap for the local node.
        tap: bool,
    },
    /// Receive and consume the packet (final destination / last multicast
    /// target).
    Accept,
    /// Receive and buffer the packet; this router assumes responsibility
    /// for the rest of the route.
    InterimStop {
        /// Whether the local node also keeps a multicast copy.
        tap: bool,
    },
}

impl RouteControl {
    /// Encodes the control groups for a plan: one group per router after
    /// the launch router (the source drives its own output mux directly).
    ///
    /// # Panics
    ///
    /// Panics if the plan needs more than [`MAX_GROUPS`] groups.
    pub fn encode(plan: &Plan) -> RouteControl {
        let steps = &plan.steps()[1..];
        let mut groups: Vec<ControlGroup> = steps.iter().map(Self::encode_step).collect();
        // A plan ending at an interim node stands for a longer route: the
        // full packet control would carry further groups (ending in the
        // final destination's Local bit), and it is exactly the presence
        // of a later Local bit that tells the interim node to assume
        // responsibility rather than consume the packet (§2.1.3). Model
        // the continuation as one trailing group.
        if plan.ends_at_interim() {
            groups.push(ControlGroup {
                local: true,
                ..ControlGroup::default()
            });
        }
        assert!(
            groups.len() <= MAX_GROUPS,
            "route of {} groups exceeds the {MAX_GROUPS}-group control budget",
            groups.len()
        );
        RouteControl { groups }
    }

    fn encode_step(step: &PlanStep) -> ControlGroup {
        let mut g = ControlGroup {
            multicast: step.tap,
            ..ControlGroup::default()
        };
        match step.exit {
            StepExit::Forward(out) => {
                let entry = step.entry.expect("non-launch steps have an entry");
                match classify_turn(entry, out) {
                    Turn::Straight => g.straight = true,
                    Turn::Left => g.left = true,
                    Turn::Right => g.right = true,
                }
            }
            StepExit::Stop(kind) => {
                g.local = true;
                if kind == StopKind::Accept {
                    // Final multicast target: Local + Multicast both set.
                    // (For unicast the Multicast bit simply stays clear.)
                }
            }
        }
        g
    }

    /// Group 1 — the group the current router consumes.
    pub fn group1(&self) -> Option<ControlGroup> {
        self.groups.first().copied()
    }

    /// Number of groups remaining.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups remain.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The frequency translation performed at each output port: Group 1
    /// is consumed, Groups 2..N shift into positions 1..N-1 (C0's
    /// λ6–λ35 translate to λ1–λ30 on the outgoing C1, which physically
    /// becomes C0).
    pub fn translate(&self) -> RouteControl {
        RouteControl {
            groups: self.groups.iter().skip(1).copied().collect(),
        }
    }

    /// Decodes Group 1 relative to the packet's entry direction.
    ///
    /// An interim stop is a Local bit with more groups remaining; the
    /// final accept is a Local bit on the last group.
    ///
    /// # Errors
    ///
    /// Returns an error if no groups remain or Group 1 is malformed.
    pub fn decode(&self, entry: Direction) -> Result<DecodedAction, DecodeError> {
        let g = self
            .group1()
            .ok_or_else(|| DecodeError("no control groups remain".into()))?;
        if !g.is_well_formed() {
            return Err(DecodeError(format!("malformed group {g:?}")));
        }
        if g.local {
            return Ok(if self.len() == 1 {
                DecodedAction::Accept
            } else {
                DecodedAction::InterimStop { tap: g.multicast }
            });
        }
        let out = if g.straight {
            entry
        } else if g.left {
            turn_left(entry)
        } else {
            turn_right(entry)
        };
        Ok(DecodedAction::Forward {
            out,
            tap: g.multicast,
        })
    }

    /// The 35 bit values on the C0 waveguide (Groups 1–7), λ1 first.
    /// Absent groups read as zero.
    pub fn c0_bits(&self) -> [bool; 35] {
        self.waveguide_bits(0)
    }

    /// The 35 bit values on the C1 waveguide (Groups 8–14).
    pub fn c1_bits(&self) -> [bool; 35] {
        self.waveguide_bits(GROUPS_PER_WAVEGUIDE)
    }

    fn waveguide_bits(&self, first_group: usize) -> [bool; 35] {
        let mut out = [false; 35];
        for (slot, g) in self
            .groups
            .iter()
            .skip(first_group)
            .take(GROUPS_PER_WAVEGUIDE)
            .enumerate()
        {
            out[slot * 5..slot * 5 + 5].copy_from_slice(&g.bits());
        }
        out
    }
}

/// Direction after a left turn while travelling in `dir`.
fn turn_left(dir: Direction) -> Direction {
    match dir {
        Direction::North => Direction::West,
        Direction::West => Direction::South,
        Direction::South => Direction::East,
        Direction::East => Direction::North,
    }
}

/// Direction after a right turn while travelling in `dir`.
fn turn_right(dir: Direction) -> Direction {
    turn_left(dir).opposite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use phastlane_netsim::geometry::{Mesh, NodeId};

    fn vd(ids: &[u16]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    /// Walks the control groups through decode/translate and checks each
    /// decoded action against the plan it was encoded from.
    fn roundtrip(plan: &Plan) {
        let mut ctl = RouteControl::encode(plan);
        for step in &plan.steps()[1..] {
            let entry = step.entry.expect("entry set after launch");
            let action = ctl.decode(entry).expect("decodable");
            match step.exit {
                StepExit::Forward(out) => {
                    assert_eq!(action, DecodedAction::Forward { out, tap: step.tap })
                }
                StepExit::Stop(StopKind::Accept) => assert_eq!(action, DecodedAction::Accept),
                StepExit::Stop(StopKind::Interim) => {
                    assert_eq!(action, DecodedAction::InterimStop { tap: step.tap })
                }
            }
            ctl = ctl.translate();
        }
        if plan.ends_at_interim() {
            assert_eq!(
                ctl.len(),
                1,
                "continuation sentinel remains after an interim stop"
            );
        } else {
            assert!(ctl.is_empty(), "all groups consumed");
        }
    }

    #[test]
    fn unicast_roundtrip() {
        let plan = Plan::build(Mesh::PAPER, NodeId(0), &vd(&[18]), false, 8);
        roundtrip(&plan);
    }

    #[test]
    fn interim_roundtrip() {
        let plan = Plan::build(Mesh::PAPER, NodeId(0), &vd(&[63]), false, 4);
        roundtrip(&plan);
    }

    #[test]
    fn multicast_roundtrip() {
        let plan = Plan::build(Mesh::PAPER, NodeId(2), &vd(&[10, 18, 26]), true, 8);
        roundtrip(&plan);
    }

    #[test]
    fn corner_to_corner_uses_all_14_groups() {
        // 14-hop path with an unbounded segment = 14 groups, the budget.
        let plan = Plan::build(Mesh::PAPER, NodeId(0), &vd(&[63]), false, 14);
        let ctl = RouteControl::encode(&plan);
        assert_eq!(ctl.len(), 14);
        roundtrip(&plan);
    }

    #[test]
    fn c0_holds_first_seven_groups() {
        let plan = Plan::build(Mesh::PAPER, NodeId(0), &vd(&[63]), false, 14);
        let ctl = RouteControl::encode(&plan);
        let c0 = ctl.c0_bits();
        let c1 = ctl.c1_bits();
        // Group 1 of this route is "straight east" -> Straight bit on λ1.
        assert!(c0[0]);
        // Groups 8-14 exist, so C1 is not all zero.
        assert!(c1.iter().any(|&b| b));
        // After 7 translations, old group 8 is the new group 1.
        let mut t = ctl.clone();
        for _ in 0..7 {
            t = t.translate();
        }
        assert_eq!(t.c0_bits()[..5], c1[..5]);
    }

    #[test]
    fn translate_consumes_groups() {
        let plan = Plan::build(Mesh::PAPER, NodeId(0), &vd(&[3]), false, 8);
        let ctl = RouteControl::encode(&plan);
        assert_eq!(ctl.len(), 3);
        assert_eq!(ctl.translate().len(), 2);
        assert_eq!(ctl.translate().translate().translate().len(), 0);
    }

    #[test]
    fn decode_empty_errors() {
        let err = RouteControl::default()
            .decode(Direction::North)
            .unwrap_err();
        assert!(err.to_string().contains("no control groups"));
    }

    #[test]
    fn malformed_group_rejected() {
        let g = ControlGroup {
            straight: true,
            left: true,
            ..Default::default()
        };
        assert!(!g.is_well_formed());
        let ctl = RouteControl { groups: vec![g] };
        assert!(ctl.decode(Direction::North).is_err());
    }

    #[test]
    fn stop_only_group_is_well_formed() {
        let g = ControlGroup {
            local: true,
            ..Default::default()
        };
        assert!(g.is_well_formed());
        let g2 = ControlGroup::default();
        assert!(!g2.is_well_formed(), "no direction and no local is dead");
    }

    #[test]
    fn turn_helpers_are_inverse() {
        for d in Direction::ALL {
            assert_eq!(turn_right(turn_left(d)), d);
            assert_eq!(turn_left(turn_right(d)), d);
            assert_eq!(classify_turn(d, turn_left(d)), Turn::Left);
            assert_eq!(classify_turn(d, turn_right(d)), Turn::Right);
        }
    }
}
