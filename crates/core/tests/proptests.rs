//! Property-based tests of the Phastlane building blocks: flight plans,
//! control-bit encoding, multicast splitting, and drop return paths.

use phastlane_core::control::{DecodedAction, RouteControl};
use phastlane_core::dropnet::{ReturnPath, ReturnPathRegistry};
use phastlane_core::multicast::split_multicast;
use phastlane_core::plan::{Plan, StepExit, StopKind};
use phastlane_netsim::geometry::{Mesh, NodeId};
use proptest::prelude::*;
use std::collections::VecDeque;

fn mesh() -> Mesh {
    Mesh::PAPER
}

fn arb_pair() -> impl Strategy<Value = (NodeId, NodeId)> {
    (0u16..64, 0u16..64)
        .prop_filter("distinct", |(a, b)| a != b)
        .prop_map(|(a, b)| (NodeId(a), NodeId(b)))
}

fn arb_targets() -> impl Strategy<Value = (NodeId, Vec<NodeId>)> {
    (0u16..64, proptest::collection::hash_set(0u16..64, 1..20)).prop_map(|(src, set)| {
        (
            NodeId(src),
            set.into_iter().filter(|&d| d != src).map(NodeId).collect(),
        )
    })
}

proptest! {
    /// Unicast plans: segment length respects the hop limit; the plan
    /// either accepts at the destination or stops at an interim node
    /// exactly `max_hops` in.
    #[test]
    fn unicast_plan_respects_hop_limit((src, dst) in arb_pair(), max_hops in 1u32..9) {
        let targets: VecDeque<NodeId> = [dst].into_iter().collect();
        let plan = Plan::build(mesh(), src, &targets, false, max_hops);
        prop_assert!(plan.hops() <= max_hops);
        let dist = mesh().distance(src, dst);
        if dist <= max_hops {
            prop_assert!(!plan.ends_at_interim());
            prop_assert_eq!(plan.deliveries(), vec![dst]);
        } else {
            prop_assert!(plan.ends_at_interim());
            prop_assert_eq!(plan.hops(), max_hops);
            prop_assert!(plan.deliveries().is_empty());
        }
    }

    /// Control encoding roundtrips: decoding group 1 at each router and
    /// frequency-translating reproduces the plan exactly.
    #[test]
    fn control_roundtrip((src, dst) in arb_pair(), max_hops in 1u32..15) {
        let targets: VecDeque<NodeId> = [dst].into_iter().collect();
        let plan = Plan::build(mesh(), src, &targets, false, max_hops);
        let mut ctl = RouteControl::encode(&plan);
        for step in &plan.steps()[1..] {
            let entry = step.entry.expect("hop steps have entries");
            let action = ctl.decode(entry).expect("well-formed control");
            match step.exit {
                StepExit::Forward(out) => prop_assert_eq!(
                    action,
                    DecodedAction::Forward { out, tap: step.tap }
                ),
                StepExit::Stop(StopKind::Accept) => {
                    prop_assert_eq!(action, DecodedAction::Accept)
                }
                StepExit::Stop(StopKind::Interim) => prop_assert_eq!(
                    action,
                    DecodedAction::InterimStop { tap: step.tap }
                ),
            }
            ctl = ctl.translate();
        }
    }

    /// Multicast splitting covers each target exactly once, every message
    /// builds a valid plan, and the message count never exceeds the
    /// paper's 16.
    #[test]
    fn multicast_split_partitions((src, targets) in arb_targets()) {
        prop_assume!(!targets.is_empty());
        let messages = split_multicast(mesh(), src, &targets);
        prop_assert!(messages.len() <= 16);
        let mut covered: Vec<NodeId> = messages.iter().flatten().copied().collect();
        covered.sort_unstable();
        let mut expected = targets.clone();
        expected.sort_unstable();
        prop_assert_eq!(covered, expected);
        for msg in &messages {
            // Every message must be plannable (ordering contract).
            let plan = Plan::build(mesh(), src, msg, true, 14);
            prop_assert!(plan.hops() >= 1);
        }
    }

    /// A full-length multicast plan delivers exactly the message's
    /// targets.
    #[test]
    fn multicast_plan_delivers_targets((src, targets) in arb_targets()) {
        prop_assume!(!targets.is_empty());
        for msg in split_multicast(mesh(), src, &targets) {
            let plan = Plan::build(mesh(), src, &msg, true, 14);
            if !plan.ends_at_interim() {
                let mut delivered = plan.deliveries();
                delivered.sort_unstable();
                let mut expect: Vec<NodeId> = msg.iter().copied().collect();
                expect.sort_unstable();
                prop_assert_eq!(delivered, expect);
            }
        }
    }

    /// Return paths terminate at the launching node and have the same
    /// length as the forward trail; paths from disjoint forward paths
    /// never collide in the registry.
    #[test]
    fn return_path_reverses_forward((src, dst) in arb_pair()) {
        let targets: VecDeque<NodeId> = [dst].into_iter().collect();
        let plan = Plan::build(mesh(), src, &targets, false, 8);
        let trail: Vec<_> = plan
            .steps()
            .iter()
            .filter_map(|s| match s.exit {
                StepExit::Forward(d) => Some((s.router, d)),
                StepExit::Stop(_) => None,
            })
            .collect();
        prop_assume!(!trail.is_empty());
        let rp = ReturnPath::from_forward_trail(mesh(), &trail);
        prop_assert_eq!(rp.len(), trail.len());
        prop_assert_eq!(rp.destination(mesh()), src);
        let mut reg = ReturnPathRegistry::new();
        prop_assert!(reg.register(&rp).is_ok());
        // Registering the same path again must collide.
        prop_assert!(reg.register(&rp).is_err());
    }
}
