//! Minimal wall-clock microbenchmark runner for the `benches/` targets
//! (which use `harness = false` and plain `main` functions, keeping the
//! workspace free of external bench frameworks).
//!
//! Methodology: run the closure for a warm-up period, then repeat timed
//! batches and report the **minimum** per-iteration time — the least
//! noisy point estimate for short deterministic kernels.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measurement batch.
const BATCH_TARGET: Duration = Duration::from_millis(50);
/// Number of measured batches; the minimum is reported.
const BATCHES: u32 = 7;

/// One measured benchmark result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations executed across all batches.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second at the best observed rate.
    pub fn per_sec(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1e9 / self.ns_per_iter
        } else {
            0.0
        }
    }
}

/// Times `f`, printing a `name ... ns/iter` line, and returns the
/// measurement. The closure's return value is passed through
/// [`black_box`] so the work is not optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up + calibration: find an iteration count filling a batch.
    let calib_start = Instant::now();
    let mut calib_iters = 0u64;
    while calib_start.elapsed() < BATCH_TARGET {
        black_box(f());
        calib_iters += 1;
    }
    let per_batch = calib_iters.max(1);

    let mut best = f64::INFINITY;
    let mut total_iters = calib_iters;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / per_batch as f64;
        best = best.min(ns);
        total_iters += per_batch;
    }

    let m = Measurement {
        ns_per_iter: best,
        iters: total_iters,
    };
    println!(
        "{name:<40} {:>14.1} ns/iter  ({:>12.0} /s)",
        m.ns_per_iter,
        m.per_sec()
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut acc = 0u64;
        let m = bench("noop_add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(m.ns_per_iter >= 0.0);
        assert!(m.iters > 0);
        assert!(m.per_sec() > 0.0);
    }
}
