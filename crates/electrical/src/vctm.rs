//! Virtual Circuit Tree Multicasting (Jerger et al., ISCA 2008), the
//! broadcast mechanism the paper adds to its electrical baseline (§4).
//!
//! A multicast flit follows a dimension-order tree rooted at its source:
//! along the source's row in both directions, branching north/south into
//! each column. At each tree node the flit forks one copy per child
//! branch whose subtree still contains targets, and delivers locally if
//! this node is a target. Trees are deterministic from (source, current
//! node), which models VCTM's steady state where every tree is already
//! installed — a simplification that *favours the baseline* (no setup
//! unicasts).
//!
//! Target sets are [`NodeMask`] bitsets, sized for meshes up to 256
//! nodes.

use phastlane_netsim::geometry::{Coord, Direction, Mesh, NodeId};
use phastlane_netsim::mask::NodeMask;

/// A set of multicast target nodes.
pub type TargetMask = NodeMask;

/// Builds a mask from a list of nodes.
pub fn mask_of(nodes: &[NodeId]) -> TargetMask {
    NodeMask::from_nodes(nodes.iter().copied())
}

/// Whether `node` is in `mask`.
pub fn mask_contains(mask: TargetMask, node: NodeId) -> bool {
    mask.contains(node)
}

/// Number of targets in a mask.
pub fn mask_len(mask: TargetMask) -> usize {
    mask.len()
}

/// One child branch of the multicast tree at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeBranch {
    /// Output direction of the branch.
    pub out: Direction,
    /// Targets covered by the branch's subtree.
    pub submask: TargetMask,
}

/// The multicast tree decision at node `at` for a tree rooted at `src`:
/// the child branches (with non-empty subtrees) and whether `at` itself
/// is a delivery target.
///
/// # Panics
///
/// Panics if the mesh exceeds the 256-node mask capacity.
pub fn tree_fork(mesh: Mesh, src: NodeId, at: NodeId, mask: TargetMask) -> (Vec<TreeBranch>, bool) {
    assert!(
        mesh.nodes() <= phastlane_netsim::mask::MASK_CAPACITY,
        "target masks support up to 256 nodes"
    );
    let s = mesh.coord(src);
    let a = mesh.coord(at);
    let deliver = mask_contains(mask, at);

    let mut branches = Vec::new();
    let mut push = |out: Direction, pred: &dyn Fn(Coord) -> bool| {
        let submask = region_mask(mesh, pred).and(&mask);
        if !submask.is_empty() {
            branches.push(TreeBranch { out, submask });
        }
    };

    if a.y == s.y {
        // On the source row: row continuation(s) plus column branches.
        if at == src {
            push(Direction::East, &|c| c.x > s.x);
            push(Direction::West, &|c| c.x < s.x);
        } else if a.x > s.x {
            push(Direction::East, &|c| c.x > a.x);
        } else {
            push(Direction::West, &|c| c.x < a.x);
        }
        push(Direction::North, &|c| c.x == a.x && c.y < a.y);
        push(Direction::South, &|c| c.x == a.x && c.y > a.y);
    } else if a.y < s.y {
        // Above the source row: continue north only.
        push(Direction::North, &|c| c.x == a.x && c.y < a.y);
    } else {
        push(Direction::South, &|c| c.x == a.x && c.y > a.y);
    }
    (branches, deliver)
}

fn region_mask(mesh: Mesh, pred: &dyn Fn(Coord) -> bool) -> TargetMask {
    NodeMask::from_nodes(mesh.iter_nodes().filter(|&n| pred(mesh.coord(n))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broadcast_mask(mesh: Mesh, src: NodeId) -> TargetMask {
        mask_of(&mesh.iter_nodes().filter(|&n| n != src).collect::<Vec<_>>())
    }

    /// Walks the whole tree, asserting every target is delivered exactly
    /// once and branches never revisit nodes.
    fn walk(mesh: Mesh, src: NodeId, mask: TargetMask) -> Vec<NodeId> {
        let mut delivered = Vec::new();
        let mut frontier = vec![(src, mask)];
        let mut visited = std::collections::HashSet::new();
        while let Some((at, m)) = frontier.pop() {
            assert!(visited.insert((at, m)), "revisited {at}");
            let (branches, deliver) = tree_fork(mesh, src, at, m);
            if deliver {
                delivered.push(at);
            }
            // Branch submasks partition the remaining targets.
            let mut seen = if deliver {
                NodeMask::from_nodes([at])
            } else {
                NodeMask::EMPTY
            };
            for b in &branches {
                assert!(
                    !seen.intersects(&b.submask),
                    "overlapping branch submasks at {at}"
                );
                seen = seen.or(&b.submask);
                let next = mesh.neighbor(at, b.out).expect("branch stays in mesh");
                frontier.push((next, b.submask));
            }
            assert_eq!(
                seen, m,
                "branches + local delivery must cover the mask at {at}"
            );
        }
        delivered.sort_unstable();
        delivered
    }

    #[test]
    fn broadcast_tree_covers_all_nodes_from_every_source() {
        let mesh = Mesh::PAPER;
        for src in mesh.iter_nodes() {
            let mask = broadcast_mask(mesh, src);
            let delivered = walk(mesh, src, mask);
            assert_eq!(delivered.len(), 63, "src {src}");
        }
    }

    #[test]
    fn subset_tree_covers_exactly_the_subset() {
        let mesh = Mesh::PAPER;
        let targets = [NodeId(3), NodeId(42), NodeId(17), NodeId(60)];
        let mask = mask_of(&targets);
        let delivered = walk(mesh, NodeId(9), mask);
        let mut expect: Vec<NodeId> = targets.to_vec();
        expect.sort_unstable();
        assert_eq!(delivered, expect);
    }

    #[test]
    fn source_in_mask_is_ignored_by_fork_children() {
        let mesh = Mesh::PAPER;
        // A mask containing the source: tree_fork at src reports
        // deliver=true (caller decides), children exclude it.
        let mask = mask_of(&[NodeId(0), NodeId(1)]);
        let (branches, deliver) = tree_fork(mesh, NodeId(0), NodeId(0), mask);
        assert!(deliver);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].out, Direction::East);
        assert_eq!(branches[0].submask, mask_of(&[NodeId(1)]));
    }

    #[test]
    fn off_row_nodes_continue_along_column_only() {
        let mesh = Mesh::PAPER;
        let src = NodeId(0); // (0,0)
        let at = mesh.node_at(Coord { x: 0, y: 2 });
        let mask = broadcast_mask(mesh, src);
        let (branches, _) = tree_fork(mesh, src, at, mask);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].out, Direction::South);
    }

    #[test]
    fn mask_helpers() {
        let m = mask_of(&[NodeId(0), NodeId(63)]);
        assert!(mask_contains(m, NodeId(0)));
        assert!(mask_contains(m, NodeId(63)));
        assert!(!mask_contains(m, NodeId(5)));
        assert_eq!(mask_len(m), 2);
    }

    #[test]
    fn empty_mask_no_branches() {
        let (branches, deliver) = tree_fork(Mesh::PAPER, NodeId(5), NodeId(5), NodeMask::EMPTY);
        assert!(branches.is_empty());
        assert!(!deliver);
    }

    #[test]
    fn broadcast_tree_covers_a_16x16_mesh() {
        // "Tens and eventually hundreds of processing cores": the tree
        // generalizes past 64 nodes.
        let mesh = Mesh::new(16, 16);
        let src = NodeId(100);
        let mask = NodeMask::from_nodes(mesh.iter_nodes().filter(|&n| n != src));
        let delivered = walk(mesh, src, mask);
        assert_eq!(delivered.len(), 255);
    }
}
