//! A minimal open-addressing hash map for `u64` keys on the simulator
//! hot path.
//!
//! `std::collections::HashMap` pays SipHash plus a DoS-resistant random
//! state on every probe; the simulator's keyed lookups (outstanding
//! packet counts, harness generation stamps) are all small integer keys
//! on trusted data, so a Fibonacci-multiplicative hash with linear
//! probing and backward-shift deletion is both faster and — unlike
//! `HashMap` — fully deterministic in memory layout. The map is
//! keyed-access only (no iteration), which is exactly the access pattern
//! the hot path needs: deterministic simulation must never depend on
//! hash iteration order.

/// An open-addressing `u64 -> V` map with linear probing.
#[derive(Debug, Clone)]
pub struct FastMap<V> {
    /// Power-of-two slot array; `None` is an empty slot (no tombstones —
    /// removal backward-shifts the probe chain).
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

/// Fibonacci hashing multiplier (2^64 / phi), spreads sequential keys.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl<V> Default for FastMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FastMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        FastMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // slots.len() is a power of two; multiply-shift keeps the high
        // bits, which is where the Fibonacci multiplier mixes entropy.
        let shift = 64 - self.slots.len().trailing_zeros();
        (key.wrapping_mul(FIB) >> shift) as usize
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        // Grow at 50% load so probe chains stay short.
        if self.slots.is_empty() || (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
                empty @ None => {
                    *empty = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Looks up a key.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, v)) if *k == key => return Some(v),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// Looks up a key for mutation.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => break,
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => break,
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
        let (_, value) = self.slots[i].take().expect("found above");
        self.len -= 1;
        // Backward-shift deletion: close the probe chain so later lookups
        // never cross a hole they should not.
        let mut hole = i;
        let mut j = (i + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = self.home(*k);
            // Move the entry into the hole iff the hole lies between its
            // home slot and its current slot (cyclically).
            if ((j.wrapping_sub(home)) & mask) >= ((j.wrapping_sub(hole)) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7, "b"), Some("a"));
        assert_eq!(m.get(7), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(7), Some("b"));
        assert_eq!(m.remove(7), None);
        assert!(m.is_empty());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m = FastMap::new();
        m.insert(3, 10u64);
        *m.get_mut(3).unwrap() += 5;
        assert_eq!(m.get(3), Some(&15));
        assert_eq!(m.get_mut(99), None);
    }

    #[test]
    fn sequential_keys_survive_growth() {
        // Sequential packet ids are the dominant workload.
        let mut m = FastMap::new();
        for k in 0..10_000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(&(k * 3)));
        }
        for k in (0..10_000u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k * 3));
        }
        for k in 0..10_000u64 {
            let expect = (k % 2 == 1).then_some(k * 3);
            assert_eq!(m.get(k).copied(), expect);
        }
    }

    #[test]
    fn randomized_against_std_hashmap() {
        // Drive both maps with the same operation stream and require
        // identical observable behavior, including backward-shift
        // deletion correctness under heavy churn.
        let mut rng = SimRng::seed_from_u64(0xFA57_AAAA);
        let mut fast: FastMap<u64> = FastMap::new();
        let mut refr: HashMap<u64, u64> = HashMap::new();
        for step in 0..50_000u64 {
            // Small key space forces collisions and probe chains.
            let key = rng.next_u64() % 512;
            match rng.next_u64() % 3 {
                0 => assert_eq!(fast.insert(key, step), refr.insert(key, step)),
                1 => assert_eq!(fast.remove(key), refr.remove(&key)),
                _ => assert_eq!(fast.get(key), refr.get(&key)),
            }
            assert_eq!(fast.len(), refr.len());
        }
        for key in 0..512u64 {
            assert_eq!(fast.get(key), refr.get(&key));
        }
    }
}
