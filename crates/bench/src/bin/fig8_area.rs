//! Figure 8: impact of the number of wavelengths on the router area
//! components and the total area.

use phastlane_bench::print_row;
use phastlane_photonics::area::{
    area_sweet_spot, RouterArea, NODE_AREA_1CORE, NODE_AREA_2CORE, NODE_AREA_4CORE,
};
use phastlane_photonics::wdm::WdmConfig;

fn main() {
    println!("Figure 8: router area components vs wavelengths (mm^2)\n");
    let widths = [6, 12, 10, 8, 8, 18];
    print_row(
        &[
            "wdm".into(),
            "turn-region".into(),
            "ports".into(),
            "fixed".into(),
            "total".into(),
            "fits node".into(),
        ],
        &widths,
    );
    for wdm in WdmConfig::SWEEP {
        let a = RouterArea::for_wdm(wdm);
        let fits = if a.fits(NODE_AREA_1CORE) {
            "1-core (3.5mm^2)"
        } else if a.fits(NODE_AREA_2CORE) {
            "2-core (4.5mm^2)"
        } else if a.fits(NODE_AREA_4CORE) {
            "4-core (6.5mm^2)"
        } else {
            "none"
        };
        print_row(
            &[
                wdm.payload_wdm.to_string(),
                format!("{:.3}", a.turn_region.value()),
                format!("{:.3}", a.ports.value()),
                format!("{:.3}", a.fixed.value()),
                format!("{:.3}", a.total().value()),
                fits.to_string(),
            ],
            &widths,
        );
    }
    let best = area_sweet_spot(&WdmConfig::SWEEP).expect("non-empty sweep");
    println!("\nsweet spot: {} wavelengths (paper: 64)", best.payload_wdm);
}
