//! Figure 10: network speedup of the optical configurations relative to
//! the 3-cycle electrical baseline, over the ten SPLASH2 benchmarks.
//!
//! Usage: `cargo run --release -p phastlane-bench --bin fig10_splash2
//! [--quick]`

use phastlane_bench::report::{csv_arg, CsvTable};
use phastlane_bench::{print_row, quick_flag, run_on, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    let scale = if quick_flag() { 0.1 } else { 1.0 };
    let configs = Config::FIGURE10;
    let widths: Vec<usize> = std::iter::once(14)
        .chain(configs.iter().map(|c| c.label().len().max(7)))
        .collect();

    println!("Figure 10: network speedup vs Electrical3 (higher is better)");
    println!("(scale = {scale}; drops shown for Optical4 where non-zero)\n");
    let mut header = vec!["benchmark".to_string()];
    header.extend(configs.iter().map(|c| c.label().to_string()));
    print_row(&header, &widths);

    let mut geo_means: Vec<f64> = vec![0.0; configs.len()];
    let mut count = 0usize;
    let mut csv = CsvTable::new(
        std::iter::once("benchmark".to_string())
            .chain(configs.iter().map(|c| c.label().to_string())),
    );
    for profile in splash2::all_benchmarks() {
        let profile = phastlane_bench::scaled_profile(&profile, scale);
        let trace = generate_trace(Mesh::PAPER, &profile);
        let baseline = run_on(Config::Electrical3, &trace);
        let base_cycles = baseline.result.completion_cycle.max(1);

        let mut cells = vec![profile.name.to_string()];
        for (i, &cfg) in configs.iter().enumerate() {
            let out = if cfg == Config::Electrical3 {
                baseline.clone()
            } else {
                run_on(cfg, &trace)
            };
            assert!(
                !out.result.timed_out,
                "{} timed out on {}",
                cfg.label(),
                profile.name
            );
            let speedup = base_cycles as f64 / out.result.completion_cycle.max(1) as f64;
            geo_means[i] += speedup.ln();
            let mut cell = format!("{speedup:.2}");
            if cfg == Config::Optical4 && out.stats.dropped > 0 {
                cell.push_str(&format!(" (d{})", out.stats.dropped));
            }
            cells.push(cell);
        }
        count += 1;
        csv.push(
            cells
                .iter()
                .map(|c| c.split(' ').next().unwrap_or(c).to_string()),
        );
        print_row(&cells, &widths);
    }
    if let Some(path) = csv_arg() {
        csv.write_to(&path).expect("write CSV");
        println!("(csv written to {})", path.display());
    }

    let mut cells = vec!["geomean".to_string()];
    for g in &geo_means {
        cells.push(format!("{:.2}", (g / count as f64).exp()));
    }
    println!();
    print_row(&cells, &widths);
}
