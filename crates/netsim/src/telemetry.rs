//! Link-level telemetry: per-directed-link traversal counters and ASCII
//! heatmap rendering, for understanding *where* a network congests
//! (e.g. the column-entry turn ports during Phastlane broadcast storms).

use crate::geometry::{Direction, Mesh, NodeId, Port};

/// Traversal counters per directed link `(from, direction)`.
///
/// Stored as a dense array indexed by `node * 4 + direction` — the hot
/// path records a traversal per optical hop, so this must be a plain
/// add, not a hash probe. The array grows on demand to the highest node
/// seen; absent entries read as zero, exactly like the former map.
#[derive(Debug, Clone, Default)]
pub struct LinkCounters {
    counts: Vec<u64>,
}

/// Flattened index of the directed link `(from, dir)`. Direction order
/// matches [`Port::index`] (N, S, E, W), which is also `Direction`'s
/// declaration (and `Ord`) order.
#[inline]
fn link_index(from: NodeId, dir: Direction) -> usize {
    from.index() * 4 + Port::Dir(dir).index()
}

impl LinkCounters {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one traversal of the link leaving `from` toward `dir`.
    #[inline]
    pub fn record(&mut self, from: NodeId, dir: Direction) {
        let idx = link_index(from, dir);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The count for one link.
    pub fn get(&self, from: NodeId, dir: Direction) -> u64 {
        self.counts.get(link_index(from, dir)).copied().unwrap_or(0)
    }

    /// Total traversals.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `n` busiest links, descending. Ties break by node id, then
    /// direction — a total order, and never-traversed links are omitted
    /// (they were absent from the former map).
    pub fn hottest(&self, n: usize) -> Vec<((NodeId, Direction), u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| ((NodeId((i / 4) as u16), Direction::ALL[i % 4]), c))
            .collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0 .0.cmp(&b.0 .0))
                .then(a.0 .1.cmp(&b.0 .1))
        });
        v.truncate(n);
        v
    }

    /// Outbound traversals summed per node.
    pub fn per_node(&self, mesh: Mesh) -> Vec<u64> {
        let mut out = vec![0u64; mesh.nodes()];
        for (i, &c) in self.counts.iter().enumerate() {
            let from = NodeId((i / 4) as u16);
            if mesh.contains(from) {
                out[from.index()] += c;
            }
        }
        out
    }

    /// Renders per-node outbound load as an ASCII intensity grid.
    pub fn heatmap(&self, mesh: Mesh) -> String {
        render_heatmap(mesh, &self.per_node(mesh))
    }
}

/// Intensity ramp, low to high.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders arbitrary per-node values as a `width x height` intensity
/// grid (row 0 on top), with the scale printed underneath.
///
/// # Panics
///
/// Panics if `values.len() != mesh.nodes()`.
pub fn render_heatmap(mesh: Mesh, values: &[u64]) -> String {
    assert_eq!(values.len(), mesh.nodes(), "one value per node");
    let max = values.iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for y in 0..mesh.height() {
        let mut row = String::new();
        for x in 0..mesh.width() {
            let v = values[usize::from(y) * usize::from(mesh.width()) + usize::from(x)];
            let idx = if max == 0 {
                0
            } else {
                ((v as f64 / max as f64) * (RAMP.len() - 1) as f64).round() as usize
            };
            row.push(RAMP[idx] as char);
            row.push(' ');
        }
        out.push_str(row.trim_end());
        out.push('\n');
    }
    out.push_str(&format!("scale: ' '=0 .. '@'={max}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = LinkCounters::new();
        c.record(NodeId(0), Direction::East);
        c.record(NodeId(0), Direction::East);
        c.record(NodeId(1), Direction::South);
        assert_eq!(c.get(NodeId(0), Direction::East), 2);
        assert_eq!(c.get(NodeId(0), Direction::West), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn hottest_orders_descending() {
        let mut c = LinkCounters::new();
        for _ in 0..5 {
            c.record(NodeId(3), Direction::North);
        }
        for _ in 0..9 {
            c.record(NodeId(7), Direction::West);
        }
        c.record(NodeId(1), Direction::East);
        let h = c.hottest(2);
        assert_eq!(h[0], ((NodeId(7), Direction::West), 9));
        assert_eq!(h[1], ((NodeId(3), Direction::North), 5));
    }

    #[test]
    fn hottest_ties_break_deterministically() {
        // Four same-count links on two nodes: the order must be fully
        // determined — (count desc, node asc, direction asc) — no matter
        // how the HashMap happens to iterate.
        let mut c = LinkCounters::new();
        for (node, dir) in [
            (NodeId(5), Direction::West),
            (NodeId(5), Direction::North),
            (NodeId(2), Direction::South),
            (NodeId(2), Direction::East),
        ] {
            c.record(node, dir);
        }
        let h = c.hottest(4);
        assert_eq!(
            h.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![
                (NodeId(2), Direction::East.min(Direction::South)),
                (NodeId(2), Direction::East.max(Direction::South)),
                (NodeId(5), Direction::North.min(Direction::West)),
                (NodeId(5), Direction::North.max(Direction::West)),
            ]
        );
        // Stability across repeated calls.
        assert_eq!(c.hottest(4), h);
    }

    #[test]
    fn per_node_sums_outbound() {
        let mut c = LinkCounters::new();
        c.record(NodeId(0), Direction::East);
        c.record(NodeId(0), Direction::South);
        let v = c.per_node(Mesh::new(2, 2));
        assert_eq!(v, vec![2, 0, 0, 0]);
    }

    #[test]
    fn heatmap_shape_and_scale() {
        let mesh = Mesh::new(3, 2);
        let hm = render_heatmap(mesh, &[0, 5, 10, 0, 0, 10]);
        let lines: Vec<&str> = hm.lines().collect();
        assert_eq!(lines.len(), 3);
        // values 0,5,10 map to ' ', '+', '@' on the 10-step ramp.
        assert_eq!(lines[0], "  + @");
        assert_eq!(lines[1], "    @");
        assert!(lines[2].contains("'@'=10"));
    }

    #[test]
    fn all_zero_heatmap_is_blank() {
        let hm = render_heatmap(Mesh::new(2, 1), &[0, 0]);
        assert!(hm.starts_with('\n'), "blank row trims to empty: {hm:?}");
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn wrong_length_rejected() {
        let _ = render_heatmap(Mesh::new(2, 2), &[1, 2, 3]);
    }
}
