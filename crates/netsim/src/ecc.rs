//! SECDED error protection for packet payloads.
//!
//! The Phastlane packet carries "Error Detection/Correction and
//! miscellaneous bits" alongside the 64-byte cache line (§2.1). This
//! module implements the standard Hamming(72,64) single-error-correct /
//! double-error-detect code used for that purpose: each 64-bit payload
//! word gets seven Hamming check bits plus one overall parity bit, so a
//! cache line costs 8 x 8 = 64 check bits of the packet's header
//! overhead.
//!
//! Optical links flip bits when a receiver is run close to its
//! sensitivity floor; SECDED lets the NIC correct the common single
//! upsets locally and only retransmit on (rare) double errors.

use std::fmt;

/// Number of check bits per 64-bit word (7 Hamming + overall parity).
pub const CHECK_BITS: u32 = 8;

/// A 64-bit word with its SECDED check byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeWord {
    /// The data word.
    pub data: u64,
    /// Check bits: low 7 = Hamming syndrome bits, bit 7 = overall parity.
    pub check: u8,
}

/// Outcome of decoding a possibly-corrupted code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected.
    Clean(u64),
    /// A single-bit error was corrected (data or check bit).
    Corrected(u64),
    /// An uncorrectable (double) error was detected.
    Uncorrectable,
}

impl Decoded {
    /// The recovered data, if any.
    pub fn data(self) -> Option<u64> {
        match self {
            Decoded::Clean(d) | Decoded::Corrected(d) => Some(d),
            Decoded::Uncorrectable => None,
        }
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decoded::Clean(_) => f.write_str("clean"),
            Decoded::Corrected(_) => f.write_str("corrected"),
            Decoded::Uncorrectable => f.write_str("uncorrectable"),
        }
    }
}

/// Position (1-based, Hamming convention) of the i-th data bit within
/// the 71-bit Hamming code word: positions 1..=71 that are not powers of
/// two (the 7 power-of-two positions hold the check bits), which leaves
/// exactly 64 data positions.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..=71).filter(|p| !p.is_power_of_two())
}

/// Computes the seven Hamming check bits over the data word laid out at
/// the non-power-of-two positions.
fn hamming_bits(data: u64) -> u8 {
    let mut check = 0u8;
    for (i, pos) in data_positions().enumerate() {
        if data >> i & 1 == 1 {
            // This data bit participates in every check whose index bit
            // is set in its position.
            check ^= (pos & 0x7F) as u8;
        }
    }
    check
}

/// Encodes a data word.
pub fn encode(data: u64) -> CodeWord {
    let hamming = hamming_bits(data);
    // Overall parity covers data plus the seven Hamming bits.
    let parity = ((data.count_ones() + u32::from(hamming).count_ones()) & 1) as u8;
    CodeWord {
        data,
        check: hamming | (parity << 7),
    }
}

/// Decodes a code word, correcting single-bit errors.
pub fn decode(cw: CodeWord) -> Decoded {
    let expect = hamming_bits(cw.data);
    let syndrome = (expect ^ cw.check) & 0x7F;
    let parity_now = ((cw.data.count_ones()
        + u32::from(cw.check & 0x7F).count_ones()
        + u32::from(cw.check >> 7))
        & 1) as u8;
    // parity_now is 0 when total ones (incl. stored parity) are even.
    let parity_error = parity_now != 0;

    match (syndrome, parity_error) {
        (0, false) => Decoded::Clean(cw.data),
        (0, true) => {
            // The overall parity bit itself flipped.
            Decoded::Corrected(cw.data)
        }
        (s, true) => {
            // Single error at Hamming position s: either a check bit
            // (power of two) or a data bit.
            let pos = u32::from(s);
            if pos.is_power_of_two() || pos > 71 {
                // A check bit flipped; data is intact.
                return Decoded::Corrected(cw.data);
            }
            let index = data_positions().position(|p| p == pos);
            match index {
                Some(i) => Decoded::Corrected(cw.data ^ (1u64 << i)),
                None => Decoded::Uncorrectable,
            }
        }
        (_, false) => Decoded::Uncorrectable, // non-zero syndrome, even parity = double error
    }
}

/// A protected 64-byte cache line: eight code words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectedLine {
    words: [CodeWord; 8],
}

impl ProtectedLine {
    /// Encodes a cache line.
    pub fn encode(line: [u64; 8]) -> Self {
        ProtectedLine {
            words: line.map(encode),
        }
    }

    /// Decodes, correcting up to one flipped bit per word.
    ///
    /// Returns the line and how many words needed correction, or `None`
    /// if any word had an uncorrectable error.
    pub fn decode(self) -> Option<([u64; 8], u32)> {
        let mut out = [0u64; 8];
        let mut corrected = 0;
        for (slot, cw) in out.iter_mut().zip(self.words) {
            match decode(cw) {
                Decoded::Clean(d) => *slot = d,
                Decoded::Corrected(d) => {
                    *slot = d;
                    corrected += 1;
                }
                Decoded::Uncorrectable => return None,
            }
        }
        Some((out, corrected))
    }

    /// Flips one bit of the stored code: `word` selects the code word,
    /// `bit` 0..63 a data bit, 64..71 a check bit.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8` or `bit >= 72`.
    pub fn flip_bit(&mut self, word: usize, bit: u32) {
        assert!(bit < 72, "bit index out of range");
        let cw = &mut self.words[word];
        if bit < 64 {
            cw.data ^= 1 << bit;
        } else {
            cw.check ^= 1 << (bit - 64);
        }
    }

    /// Total ECC overhead bits for the line.
    pub const OVERHEAD_BITS: u32 = 8 * CHECK_BITS;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }
    }

    #[test]
    fn every_single_data_bit_flip_corrects() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        for bit in 0..64 {
            let mut cw = encode(data);
            cw.data ^= 1 << bit;
            assert_eq!(decode(cw), Decoded::Corrected(data), "bit {bit}");
        }
    }

    #[test]
    fn every_single_check_bit_flip_corrects() {
        let data = 0x0123_4567_89AB_CDEFu64;
        for bit in 0..8 {
            let mut cw = encode(data);
            cw.check ^= 1 << bit;
            assert_eq!(decode(cw), Decoded::Corrected(data), "check bit {bit}");
        }
    }

    #[test]
    fn double_errors_detected_not_miscorrected() {
        let data = 0xFFFF_0000_1234_5678u64;
        for a in 0..64u32 {
            for b in (a + 1)..64 {
                let mut cw = encode(data);
                cw.data ^= (1 << a) | (1 << b);
                assert_eq!(
                    decode(cw),
                    Decoded::Uncorrectable,
                    "double flip ({a},{b}) must be detected"
                );
            }
        }
    }

    #[test]
    fn data_plus_check_double_error_detected() {
        let data = 0x1111_2222_3333_4444u64;
        for d in [0u32, 17, 63] {
            for c in 0..7u32 {
                let mut cw = encode(data);
                cw.data ^= 1 << d;
                cw.check ^= 1 << c;
                assert_eq!(
                    decode(cw),
                    Decoded::Uncorrectable,
                    "data {d} + check {c} must be detected"
                );
            }
        }
    }

    #[test]
    fn protected_line_roundtrip_and_correction() {
        let line = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut p = ProtectedLine::encode(line);
        assert_eq!(p.decode(), Some((line, 0)));
        // One flip in each of three different words: all corrected.
        p.flip_bit(0, 5);
        p.flip_bit(3, 63);
        p.flip_bit(7, 70); // a check bit
        assert_eq!(p.decode(), Some((line, 3)));
    }

    #[test]
    fn protected_line_double_flip_fails() {
        let mut p = ProtectedLine::encode([0xAA; 8]);
        p.flip_bit(2, 10);
        p.flip_bit(2, 20);
        assert_eq!(p.decode(), None);
    }

    #[test]
    fn overhead_matches_packet_budget() {
        // 64 check bits of the packet's 70-bit header/misc budget
        // (§2.1's "Error Detection/Correction and miscellaneous bits").
        assert_eq!(ProtectedLine::OVERHEAD_BITS, 64);
    }

    #[test]
    fn decoded_accessors() {
        assert_eq!(Decoded::Clean(7).data(), Some(7));
        assert_eq!(Decoded::Corrected(9).data(), Some(9));
        assert_eq!(Decoded::Uncorrectable.data(), None);
        assert_eq!(Decoded::Uncorrectable.to_string(), "uncorrectable");
    }
}
