//! The matching HTTP/1.1 client: one request per connection, chunked
//! decoding for event streams, and a bounded connect-retry so callers
//! racing server startup (CI smoke, tests) need no external wait loop.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request socket timeout. Individual requests are short — long
/// work is polled via repeated status calls, not one long request.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Read timeout while watching an event stream: lifecycle events can be
/// minutes apart on a big matrix.
const STREAM_TIMEOUT: Duration = Duration::from_secs(300);

/// Connect attempts (spaced [`RETRY_DELAY`] apart) before giving up.
const CONNECT_RETRIES: u32 = 25;
const RETRY_DELAY: Duration = Duration::from_millis(200);

/// Connects with bounded retries, absorbing the startup race when the
/// server was launched an instant ago.
fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..CONNECT_RETRIES {
        if attempt > 0 {
            std::thread::sleep(RETRY_DELAY);
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
    }
    Err(format!("cannot connect to {addr}: {last}"))
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(), String> {
    let body = body.unwrap_or(&[]);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: phastlane\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .and_then(|()| stream.write_all(body))
    .and_then(|()| stream.flush())
    .map_err(|e| format!("write to server failed: {e}"))
}

/// Reads the status line + headers; returns (status, headers).
fn read_head(r: &mut impl BufRead) -> Result<(u16, Vec<(String, String)>), String> {
    let mut line = String::new();
    r.read_line(&mut line)
        .map_err(|e| format!("read error: {e}"))?;
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)
            .map_err(|e| format!("read error: {e}"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((n, v)) = line.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Reads one chunk of a chunked body; `Ok(None)` on the terminal chunk.
fn read_chunk(r: &mut impl BufRead) -> Result<Option<Vec<u8>>, String> {
    let mut size_line = String::new();
    r.read_line(&mut size_line)
        .map_err(|e| format!("read error: {e}"))?;
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| format!("bad chunk size {size_line:?}"))?;
    if size == 0 {
        return Ok(None);
    }
    let mut chunk = vec![0u8; size + 2]; // payload + CRLF
    r.read_exact(&mut chunk)
        .map_err(|e| format!("short chunk: {e}"))?;
    chunk.truncate(size);
    Ok(Some(chunk))
}

/// One complete HTTP exchange: connect (with retries), send, read the
/// whole response. Returns `(status, body)`.
///
/// # Errors
///
/// Connection, protocol, or I/O failures — HTTP error *statuses* are
/// returned, not turned into `Err`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, Vec<u8>), String> {
    let mut stream = connect(addr)?;
    stream
        .set_read_timeout(Some(REQUEST_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(REQUEST_TIMEOUT)))
        .map_err(|e| format!("socket setup failed: {e}"))?;
    send_request(&mut stream, method, path, body)?;
    let mut r = BufReader::new(stream);
    let (status, headers) = read_head(&mut r)?;
    let mut out = Vec::new();
    if header(&headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        while let Some(chunk) = read_chunk(&mut r)? {
            out.extend_from_slice(&chunk);
        }
    } else if let Some(len) = header(&headers, "content-length") {
        let len: usize = len.parse().map_err(|_| "bad content-length".to_string())?;
        out.resize(len, 0);
        r.read_exact(&mut out)
            .map_err(|e| format!("short body: {e}"))?;
    } else {
        r.read_to_end(&mut out)
            .map_err(|e| format!("read error: {e}"))?;
    }
    Ok((status, out))
}

/// Streams a chunked NDJSON response, invoking `on_line` per complete
/// line as it arrives. Returns the HTTP status (lines are only
/// delivered for 200s).
///
/// # Errors
///
/// Connection, protocol, or I/O failures.
pub fn stream(addr: &str, path: &str, mut on_line: impl FnMut(&str)) -> Result<u16, String> {
    let mut stream = connect(addr)?;
    stream
        .set_read_timeout(Some(STREAM_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(REQUEST_TIMEOUT)))
        .map_err(|e| format!("socket setup failed: {e}"))?;
    send_request(&mut stream, "GET", path, None)?;
    let mut r = BufReader::new(stream);
    let (status, headers) = read_head(&mut r)?;
    if status != 200 {
        return Ok(status);
    }
    let chunked =
        header(&headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let mut pending = Vec::new();
    loop {
        let bytes = if chunked {
            match read_chunk(&mut r)? {
                Some(c) => c,
                None => break,
            }
        } else {
            let mut buf = vec![0u8; 4096];
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    buf.truncate(n);
                    buf
                }
                Err(e) => return Err(format!("read error: {e}")),
            }
        };
        pending.extend_from_slice(&bytes);
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let rest = pending.split_off(pos + 1);
            let mut line = std::mem::replace(&mut pending, rest);
            line.pop();
            on_line(&String::from_utf8_lossy(&line));
        }
    }
    if !pending.is_empty() {
        on_line(&String::from_utf8_lossy(&pending));
    }
    Ok(status)
}
