//! The lab scenario-spec format and its expansion into a job matrix.
//!
//! A spec is a plain text file in the same hand-rolled style as
//! [`phastlane_netsim::fault::FaultPlan::parse`] (the build is offline —
//! no serde): one `key value...` pair per line, `#` comments, every key
//! optional with a sensible default, unknown or duplicate keys rejected.
//!
//! ```text
//! # fig9-shuffle.lab — one Figure 9 panel as a lab matrix
//! name fig9-shuffle
//! mesh 8x8
//! seed 7
//! nets optical4 electrical3
//! patterns shuffle
//! rates 0.02 0.06 0.10 0.16 0.22 0.30
//! warmup 500
//! measure 2000
//! drain 6000
//! ```
//!
//! [`expand`] unrolls the matrix — networks × patterns × rates ×
//! intensities × replicas, then networks × benchmarks × intensities ×
//! replicas for the optional replay jobs — into an ordered [`JobSpec`]
//! list. Job order, and therefore every derived seed, is a pure function
//! of the spec: the scheduler may execute jobs on any thread in any
//! order without perturbing a single result bit.

use crate::runner;
use phastlane_netsim::geometry::Mesh;
use phastlane_traffic::{splash2, Pattern};

/// A declarative description of an experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LabSpec {
    /// Experiment name (used in reports and baseline files).
    pub name: String,
    /// Mesh every job runs on.
    pub mesh: Mesh,
    /// Master seed; every job derives its own stream from it.
    pub seed: u64,
    /// Network configuration names (see [`runner::NETWORKS`]).
    pub nets: Vec<String>,
    /// Synthetic traffic patterns.
    pub patterns: Vec<Pattern>,
    /// Injection rates (packets per node per cycle) for synthetic jobs.
    pub rates: Vec<f64>,
    /// Fault intensities in `[0, 1]`; `0.0` means no fault plan.
    pub intensities: Vec<f64>,
    /// Seed replicas per matrix cell.
    pub replicas: u32,
    /// Synthetic warm-up cycles.
    pub warmup: u64,
    /// Synthetic measurement-window cycles.
    pub measure: u64,
    /// Synthetic drain cycles.
    pub drain: u64,
    /// Retry cap before a destination is declared undeliverable. When
    /// unset, faulted jobs (intensity > 0) default to 50 like the
    /// `chaos` soak; fault-free jobs run uncapped.
    pub retry_limit: Option<u32>,
    /// SPLASH2 benchmarks to replay (empty = no replay jobs).
    pub benchmarks: Vec<String>,
    /// Miss-count scale factor for replay jobs.
    pub scale: f64,
    /// Replay cycle limit (livelock guard).
    pub max_cycles: u64,
    /// Lockstep replica batch size: up to this many consecutive
    /// same-cell synthetic replicas advance through one driver loop
    /// (see `phastlane_netsim::harness::run_synthetic_lockstep`).
    ///
    /// Pure execution strategy, like the worker count: results are
    /// bit-identical for any value, so it is **excluded** from
    /// [`encode`](LabSpec::encode) and therefore from the canonical
    /// report and baseline identity.
    pub batch: u32,
    /// Hot-loop phase-profiler wall-sampling stride: `0` (the default)
    /// runs unprofiled; `N > 0` attaches a
    /// [`phastlane_netsim::obs::PhaseProfiler`] to every job's network,
    /// timing one cycle in `N`.
    ///
    /// Profiling is pure observation — job results are bit-identical
    /// with it on or off — so like `batch` it is **excluded** from
    /// [`encode`](LabSpec::encode); the breakdown lands in the perf
    /// layer only.
    pub profile: u32,
    /// Watchdog cycle budget per job: a job still running after this
    /// many cycles is stopped with a `TimedOut` outcome. Fires at a
    /// cycle-deterministic point, so the resulting record is
    /// reproducible. `None` = unbounded (the synthetic hard end /
    /// `max-cycles` still apply).
    pub cycle_budget: Option<u64>,
    /// Watchdog livelock window: a job with work pending but no packet
    /// injected, delivered, or terminally failed for this many cycles is
    /// stopped with a `TimedOut` outcome. Cycle-deterministic.
    pub livelock_window: Option<u64>,
    /// Watchdog wall-clock allowance per job attempt, in seconds. A
    /// safety valve only — when it fires the partial record is
    /// machine-dependent, unlike the cycle-based verdicts.
    pub wall_budget: Option<f64>,
    /// Bounded retries for transiently-failed jobs (panics and
    /// non-deterministic timeouts re-execute up to this many extra
    /// times, with seeded backoff). Deterministic verdicts (cycle
    /// budget, livelock) never retry — they would reproduce exactly.
    pub retries: u32,
    /// Base backoff between retries, milliseconds (doubled per attempt,
    /// plus a seeded jitter below one base unit).
    pub retry_backoff_ms: u64,
    /// Deliberate job failures for harness testing: the listed matrix
    /// indices panic or livelock on purpose, exercising the supervision
    /// path end-to-end. Changes outcomes, so (unlike `batch`/`profile`)
    /// it **is** part of [`encode`](LabSpec::encode) when non-empty.
    pub sabotage: Vec<Sabotage>,
}

/// The failure a sabotaged job simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageKind {
    /// The job panics as soon as it starts.
    Panic,
    /// The job's routers all wedge, so packets queue but never move —
    /// the watchdog's livelock detector must fire.
    Livelock,
}

/// One deliberately-failing job (`panic@3` / `livelock@5` in specs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sabotage {
    /// What goes wrong.
    pub kind: SabotageKind,
    /// Matrix index of the victim job.
    pub index: usize,
}

impl Sabotage {
    /// Parses one `kind@index` token (`panic@3`, `livelock@5`).
    ///
    /// # Errors
    ///
    /// Errors on an unknown kind or a malformed index.
    pub fn parse(token: &str) -> Result<Sabotage, String> {
        let (kind, index) = token
            .split_once('@')
            .ok_or_else(|| format!("sabotage expects kind@index, got {token:?}"))?;
        let kind = match kind {
            "panic" => SabotageKind::Panic,
            "livelock" => SabotageKind::Livelock,
            other => return Err(format!("unknown sabotage kind {other:?}")),
        };
        let index = index
            .parse()
            .map_err(|_| format!("bad sabotage index in {token:?}"))?;
        Ok(Sabotage { kind, index })
    }

    fn encode(&self) -> String {
        let kind = match self.kind {
            SabotageKind::Panic => "panic",
            SabotageKind::Livelock => "livelock",
        };
        format!("{kind}@{}", self.index)
    }
}

impl Default for LabSpec {
    fn default() -> Self {
        LabSpec {
            name: "lab".into(),
            mesh: Mesh::PAPER,
            seed: 7,
            nets: vec!["optical4".into()],
            patterns: vec![Pattern::Uniform],
            rates: vec![0.05],
            intensities: vec![0.0],
            replicas: 1,
            warmup: 500,
            measure: 2_000,
            drain: 6_000,
            retry_limit: None,
            benchmarks: Vec::new(),
            scale: 0.05,
            max_cycles: 10_000_000,
            batch: 1,
            profile: 0,
            cycle_budget: None,
            livelock_window: None,
            wall_budget: None,
            retries: 0,
            retry_backoff_ms: 50,
            sabotage: Vec::new(),
        }
    }
}

impl LabSpec {
    /// Parses a spec from its text form.
    ///
    /// # Errors
    ///
    /// Returns a line-tagged message on unknown/duplicate keys, bad
    /// values, unknown networks/patterns/benchmarks, or out-of-range
    /// rates and intensities.
    pub fn parse(text: &str) -> Result<LabSpec, String> {
        let mut spec = LabSpec::default();
        let mut seen: Vec<(String, usize)> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lab spec line {}: {msg}: {raw:?}", ln + 1);
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line has a first word");
            let values: Vec<&str> = words.collect();
            if let Some((_, first)) = seen.iter().find(|(k, _)| k == key) {
                return Err(err(&format!("duplicate key (first set at line {first})")));
            }
            seen.push((key.to_string(), ln + 1));
            if values.is_empty() {
                return Err(err("key needs at least one value"));
            }
            let one = || -> Result<&str, String> {
                if values.len() == 1 {
                    Ok(values[0])
                } else {
                    Err(err("key takes exactly one value"))
                }
            };
            match key {
                "name" => spec.name = one()?.to_string(),
                "mesh" => {
                    let v = one()?;
                    let (w, h) = v.split_once('x').ok_or_else(|| err("mesh expects WxH"))?;
                    let w: u16 = w.parse().map_err(|_| err("bad mesh width"))?;
                    let h: u16 = h.parse().map_err(|_| err("bad mesh height"))?;
                    if w == 0 || h == 0 {
                        return Err(err("mesh dimensions must be positive"));
                    }
                    spec.mesh = Mesh::new(w, h);
                }
                "seed" => spec.seed = one()?.parse().map_err(|_| err("bad seed"))?,
                "nets" => {
                    for v in &values {
                        if !runner::known_network(v) {
                            return Err(err(&format!(
                                "unknown network {v:?}; known: {}",
                                runner::NETWORKS.join(" ")
                            )));
                        }
                    }
                    spec.nets = values.iter().map(|v| v.to_lowercase()).collect();
                }
                "patterns" => {
                    spec.patterns = values
                        .iter()
                        .map(|v| {
                            Pattern::from_name(v)
                                .ok_or_else(|| err(&format!("unknown pattern {v:?}")))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "rates" => {
                    spec.rates = parse_f64_list(&values, 0.0..=1.0)
                        .map_err(|m| err(&format!("bad rate: {m}")))?;
                }
                "intensities" => {
                    spec.intensities = parse_f64_list(&values, 0.0..=1.0)
                        .map_err(|m| err(&format!("bad intensity: {m}")))?;
                }
                "replicas" => {
                    spec.replicas = one()?.parse().map_err(|_| err("bad replicas"))?;
                    if spec.replicas == 0 {
                        return Err(err("replicas must be positive"));
                    }
                }
                "warmup" => spec.warmup = one()?.parse().map_err(|_| err("bad warmup"))?,
                "measure" => {
                    spec.measure = one()?.parse().map_err(|_| err("bad measure"))?;
                    if spec.measure == 0 {
                        return Err(err("measure must be positive"));
                    }
                }
                "drain" => spec.drain = one()?.parse().map_err(|_| err("bad drain"))?,
                "retry-limit" => {
                    spec.retry_limit = Some(one()?.parse().map_err(|_| err("bad retry-limit"))?);
                }
                "benchmarks" => {
                    for v in &values {
                        if splash2::benchmark(v).is_none() {
                            return Err(err(&format!("unknown benchmark {v:?}")));
                        }
                    }
                    spec.benchmarks = values.iter().map(|v| v.to_string()).collect();
                }
                "scale" => {
                    spec.scale = one()?.parse().map_err(|_| err("bad scale"))?;
                    if spec.scale <= 0.0 || !spec.scale.is_finite() {
                        return Err(err("scale must be positive"));
                    }
                }
                "max-cycles" => {
                    spec.max_cycles = one()?.parse().map_err(|_| err("bad max-cycles"))?;
                    if spec.max_cycles == 0 {
                        return Err(err("max-cycles must be positive"));
                    }
                }
                "batch" => {
                    spec.batch = one()?.parse().map_err(|_| err("bad batch"))?;
                    if spec.batch == 0 {
                        return Err(err("batch must be positive"));
                    }
                }
                "profile" => {
                    spec.profile = one()?.parse().map_err(|_| err("bad profile"))?;
                }
                "cycle-budget" => {
                    let b: u64 = one()?.parse().map_err(|_| err("bad cycle-budget"))?;
                    if b == 0 {
                        return Err(err("cycle-budget must be positive"));
                    }
                    spec.cycle_budget = Some(b);
                }
                "livelock-window" => {
                    let w: u64 = one()?.parse().map_err(|_| err("bad livelock-window"))?;
                    if w == 0 {
                        return Err(err("livelock-window must be positive"));
                    }
                    spec.livelock_window = Some(w);
                }
                "wall-budget" => {
                    let s: f64 = one()?.parse().map_err(|_| err("bad wall-budget"))?;
                    if !s.is_finite() || s <= 0.0 {
                        return Err(err("wall-budget must be positive seconds"));
                    }
                    spec.wall_budget = Some(s);
                }
                "retries" => {
                    spec.retries = one()?.parse().map_err(|_| err("bad retries"))?;
                }
                "retry-backoff-ms" => {
                    spec.retry_backoff_ms =
                        one()?.parse().map_err(|_| err("bad retry-backoff-ms"))?;
                }
                "sabotage" => {
                    spec.sabotage = values
                        .iter()
                        .map(|v| Sabotage::parse(v).map_err(|m| err(&m)))
                        .collect::<Result<_, _>>()?;
                }
                _ => return Err(err("unknown key")),
            }
        }
        Ok(spec)
    }

    /// Renders the spec back to its [`parse`](LabSpec::parse) text form.
    ///
    /// `batch` and `profile` are deliberately omitted: like the worker
    /// count they are execution/observation strategy, not experiment
    /// identity, and the encoding doubles as the canonical report's
    /// spec string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let join_f = |v: &[f64]| v.iter().map(f64::to_string).collect::<Vec<_>>().join(" ");
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!(
            "mesh {}x{}\n",
            self.mesh.width(),
            self.mesh.height()
        ));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("nets {}\n", self.nets.join(" ")));
        out.push_str(&format!(
            "patterns {}\n",
            self.patterns
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(" ")
        ));
        out.push_str(&format!("rates {}\n", join_f(&self.rates)));
        out.push_str(&format!("intensities {}\n", join_f(&self.intensities)));
        out.push_str(&format!("replicas {}\n", self.replicas));
        out.push_str(&format!("warmup {}\n", self.warmup));
        out.push_str(&format!("measure {}\n", self.measure));
        out.push_str(&format!("drain {}\n", self.drain));
        if let Some(r) = self.retry_limit {
            out.push_str(&format!("retry-limit {r}\n"));
        }
        if !self.benchmarks.is_empty() {
            out.push_str(&format!("benchmarks {}\n", self.benchmarks.join(" ")));
            out.push_str(&format!("scale {}\n", self.scale));
        }
        out.push_str(&format!("max-cycles {}\n", self.max_cycles));
        // Supervision keys are emitted only when non-default, so specs
        // that never used them keep their exact pre-existing encoding —
        // and with it the identity of every committed baseline.
        if let Some(b) = self.cycle_budget {
            out.push_str(&format!("cycle-budget {b}\n"));
        }
        if let Some(w) = self.livelock_window {
            out.push_str(&format!("livelock-window {w}\n"));
        }
        if let Some(s) = self.wall_budget {
            out.push_str(&format!("wall-budget {s}\n"));
        }
        if self.retries > 0 {
            out.push_str(&format!("retries {}\n", self.retries));
        }
        if self.retry_backoff_ms != 50 {
            out.push_str(&format!("retry-backoff-ms {}\n", self.retry_backoff_ms));
        }
        if !self.sabotage.is_empty() {
            let tokens: Vec<String> = self.sabotage.iter().map(Sabotage::encode).collect();
            out.push_str(&format!("sabotage {}\n", tokens.join(" ")));
        }
        out
    }

    /// The sabotage entry for a job index, if any.
    pub fn sabotage_for(&self, index: usize) -> Option<SabotageKind> {
        self.sabotage
            .iter()
            .find(|s| s.index == index)
            .map(|s| s.kind)
    }

    /// Number of jobs the matrix expands to.
    pub fn job_count(&self) -> usize {
        let cells = self.nets.len() * self.patterns.len() * self.rates.len();
        let replays = self.nets.len() * self.benchmarks.len();
        (cells + replays) * self.intensities.len() * self.replicas as usize
    }
}

fn parse_f64_list(
    values: &[&str],
    range: std::ops::RangeInclusive<f64>,
) -> Result<Vec<f64>, String> {
    values
        .iter()
        .map(|v| {
            let x: f64 = v.parse().map_err(|_| format!("{v:?} is not a number"))?;
            if range.contains(&x) {
                Ok(x)
            } else {
                Err(format!("{x} outside [{}, {}]", range.start(), range.end()))
            }
        })
        .collect()
}

/// What one job runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Work {
    /// An open-loop synthetic run.
    Synthetic {
        /// Traffic pattern.
        pattern: Pattern,
        /// Injection rate (packets per node per cycle).
        rate: f64,
    },
    /// A closed-loop SPLASH2 trace replay.
    Replay {
        /// Benchmark name (see [`phastlane_traffic::splash2`]).
        benchmark: String,
    },
}

/// One fully-resolved job of the expanded matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the expanded matrix (stable across runs).
    pub index: usize,
    /// Network configuration name.
    pub net: String,
    /// The workload.
    pub work: Work,
    /// Fault intensity (`0.0` = no fault plan).
    pub intensity: f64,
    /// Seed replica within the matrix cell.
    pub replica: u32,
    /// Workload RNG seed, derived from the spec seed and `index`.
    pub seed: u64,
    /// Fault-plan/fault-path RNG seed, derived from the spec seed and
    /// `replica` only, so every cell of one replica degrades under the
    /// *same* fault plan (comparable curves).
    pub fault_seed: u64,
}

/// Derives an independent seed stream from a base seed and a stream
/// index. The derivation is a pure function of its arguments — thread
/// scheduling can never influence it.
///
/// Delegates to [`phastlane_netsim::rng::derive_stream`], the
/// workspace's one seed-derivation function; its output stream is
/// pinned there by unit tests, so committed baselines keep their seeds.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    phastlane_netsim::rng::derive_stream(base, stream)
}

/// Expands a spec into its ordered job list: synthetic cells first
/// (nets × patterns × rates × intensities × replicas, inner-to-outer in
/// that reading order), then replay cells (nets × benchmarks ×
/// intensities × replicas).
pub fn expand(spec: &LabSpec) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(spec.job_count());
    let push = |net: &str, work: Work, intensity: f64, replica: u32, jobs: &mut Vec<JobSpec>| {
        let index = jobs.len();
        jobs.push(JobSpec {
            index,
            net: net.to_string(),
            work,
            intensity,
            replica,
            seed: derive_seed(spec.seed, index as u64),
            fault_seed: derive_seed(spec.seed, 0xFA17_0000 + u64::from(replica)),
        });
    };
    for net in &spec.nets {
        for &pattern in &spec.patterns {
            for &rate in &spec.rates {
                for &intensity in &spec.intensities {
                    for replica in 0..spec.replicas {
                        push(
                            net,
                            Work::Synthetic { pattern, rate },
                            intensity,
                            replica,
                            &mut jobs,
                        );
                    }
                }
            }
        }
    }
    for net in &spec.nets {
        for benchmark in &spec.benchmarks {
            for &intensity in &spec.intensities {
                for replica in 0..spec.replicas {
                    push(
                        net,
                        Work::Replay {
                            benchmark: benchmark.clone(),
                        },
                        intensity,
                        replica,
                        &mut jobs,
                    );
                }
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
name smoke
mesh 4x4
seed 11
nets optical4 electrical3
patterns uniform transpose
rates 0.02 0.05   # trailing comment
intensities 0.0 0.25
replicas 2
warmup 100
measure 400
drain 1000
retry-limit 20
benchmarks FFT
scale 0.1
max-cycles 500000
";

    #[test]
    fn parse_reads_every_key() {
        let spec = LabSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.mesh, Mesh::new(4, 4));
        assert_eq!(spec.seed, 11);
        assert_eq!(spec.nets, vec!["optical4", "electrical3"]);
        assert_eq!(spec.patterns, vec![Pattern::Uniform, Pattern::Transpose]);
        assert_eq!(spec.rates, vec![0.02, 0.05]);
        assert_eq!(spec.intensities, vec![0.0, 0.25]);
        assert_eq!(spec.replicas, 2);
        assert_eq!((spec.warmup, spec.measure, spec.drain), (100, 400, 1000));
        assert_eq!(spec.retry_limit, Some(20));
        assert_eq!(spec.benchmarks, vec!["FFT"]);
        assert_eq!(spec.scale, 0.1);
        assert_eq!(spec.max_cycles, 500_000);
    }

    #[test]
    fn encode_roundtrips() {
        let spec = LabSpec::parse(SAMPLE).unwrap();
        let reparsed = LabSpec::parse(&spec.encode()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn batch_parses_but_stays_out_of_the_canonical_encoding() {
        let spec = LabSpec::parse("mesh 4x4\nbatch 8\n").unwrap();
        assert_eq!(spec.batch, 8);
        assert!(!spec.encode().contains("batch"), "{}", spec.encode());
        // Reparsing the encoding resets batch to its default: the
        // canonical identity of a run is batch-independent.
        assert_eq!(LabSpec::parse(&spec.encode()).unwrap().batch, 1);
    }

    #[test]
    fn profile_parses_but_stays_out_of_the_canonical_encoding() {
        let spec = LabSpec::parse("mesh 4x4\nprofile 32\n").unwrap();
        assert_eq!(spec.profile, 32);
        assert!(!spec.encode().contains("profile"), "{}", spec.encode());
        // Profiling is observation, not identity: reparsing the
        // encoding resets it to off.
        assert_eq!(LabSpec::parse(&spec.encode()).unwrap().profile, 0);
    }

    #[test]
    fn supervision_keys_parse_and_encode_only_when_set() {
        // Defaults leave the encoding untouched: committed baselines
        // recorded before these keys existed must keep their identity.
        let plain = LabSpec::parse("mesh 4x4\n").unwrap();
        for key in [
            "cycle-budget",
            "livelock-window",
            "wall-budget",
            "retries",
            "retry-backoff-ms",
            "sabotage",
        ] {
            assert!(!plain.encode().contains(key), "{key} leaked into encode");
        }
        let spec = LabSpec::parse(
            "mesh 4x4\ncycle-budget 5000\nlivelock-window 2000\n\
             wall-budget 1.5\nretries 2\nretry-backoff-ms 10\n\
             sabotage panic@0 livelock@3\n",
        )
        .unwrap();
        assert_eq!(spec.cycle_budget, Some(5000));
        assert_eq!(spec.livelock_window, Some(2000));
        assert_eq!(spec.wall_budget, Some(1.5));
        assert_eq!(spec.retries, 2);
        assert_eq!(spec.retry_backoff_ms, 10);
        assert_eq!(spec.sabotage_for(0), Some(SabotageKind::Panic));
        assert_eq!(spec.sabotage_for(3), Some(SabotageKind::Livelock));
        assert_eq!(spec.sabotage_for(1), None);
        // Non-default values round-trip through the encoding.
        assert_eq!(LabSpec::parse(&spec.encode()).unwrap(), spec);
    }

    #[test]
    fn supervision_keys_reject_garbage() {
        for bad in [
            "cycle-budget 0",
            "cycle-budget many",
            "livelock-window 0",
            "wall-budget -1",
            "wall-budget NaN",
            "wall-budget inf",
            "retries -1",
            "sabotage panic",     // missing @index
            "sabotage explode@1", // unknown kind
            "sabotage panic@minus-one",
        ] {
            assert!(LabSpec::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn defaults_apply_for_empty_spec() {
        let spec = LabSpec::parse("# nothing\n").unwrap();
        assert_eq!(spec, LabSpec::default());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "warp 1",                   // unknown key
            "nets warp-drive",          // unknown network
            "patterns zigzag",          // unknown pattern
            "benchmarks NotABenchmark", // unknown benchmark
            "rates 1.5",                // out of range
            "intensities -0.1",         // out of range
            "mesh 4",                   // malformed
            "mesh 0x4",                 // zero dimension
            "replicas 0",               // zero
            "measure 0",                // zero
            "batch 0",                  // zero
            "seed",                     // missing value
            "seed 1 2",                 // too many values
            "seed 1\nseed 2",           // duplicate
        ] {
            assert!(LabSpec::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn duplicate_keys_report_both_lines() {
        // A duplicate key is a hard, line-numbered error that names where
        // the key was first set — last-wins silent overrides would make a
        // fat-fingered spec run the wrong matrix.
        let err = LabSpec::parse("seed 1\nseed 2\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("duplicate key"), "{err}");
        assert!(err.contains("first set at line 1"), "{err}");
        // Comments and blanks don't shift the reported lines.
        let err = LabSpec::parse("# header\n\nmesh 4x4\nseed 1\n\nmesh 8x8\n").unwrap_err();
        assert!(err.contains("line 6"), "{err}");
        assert!(err.contains("first set at line 3"), "{err}");
        // Values never alias keys: repeating a *value* is fine.
        assert!(LabSpec::parse("rates 0.02 0.02\n").is_ok());
    }

    #[test]
    fn expansion_covers_the_matrix_in_stable_order() {
        let spec = LabSpec::parse(SAMPLE).unwrap();
        let jobs = expand(&spec);
        // 2 nets x 2 patterns x 2 rates x 2 intensities x 2 replicas
        // + 2 nets x 1 benchmark x 2 intensities x 2 replicas
        assert_eq!(jobs.len(), 32 + 8);
        assert_eq!(jobs.len(), spec.job_count());
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
        // First job is the first cell; replicas vary fastest.
        assert_eq!(jobs[0].net, "optical4");
        assert!(matches!(
            &jobs[0].work,
            Work::Synthetic { pattern: Pattern::Uniform, rate } if *rate == 0.02
        ));
        assert_eq!((jobs[0].intensity, jobs[0].replica), (0.0, 0));
        assert_eq!((jobs[1].intensity, jobs[1].replica), (0.0, 1));
        assert_eq!((jobs[2].intensity, jobs[2].replica), (0.25, 0));
        // Replay jobs come after every synthetic job.
        assert!(matches!(&jobs[32].work, Work::Replay { benchmark } if benchmark == "FFT"));
        // Expansion is deterministic.
        assert_eq!(expand(&spec), jobs);
    }

    #[test]
    fn derived_seeds_are_distinct_and_deterministic() {
        let spec = LabSpec::parse(SAMPLE).unwrap();
        let jobs = expand(&spec);
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs.len(), "every job gets its own seed");
        assert_eq!(derive_seed(11, 3), derive_seed(11, 3));
        assert_ne!(derive_seed(11, 3), derive_seed(12, 3));
        // Fault seeds depend only on the replica.
        assert_eq!(jobs[0].fault_seed, jobs[4].fault_seed);
        assert_ne!(jobs[0].fault_seed, jobs[1].fault_seed);
    }
}
