//! Property-based tests of the simulation substrate.

use phastlane_netsim::geometry::{Coord, Direction, Mesh, NodeId};
use phastlane_netsim::packet::DestSet;
use phastlane_netsim::routing::{classify_turn, xy_first_hop, xy_path_nodes, xy_route, Turn};
use phastlane_netsim::stats::LatencyStats;
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Mesh> {
    (1u16..=12, 1u16..=12).prop_map(|(w, h)| Mesh::new(w, h))
}

fn arb_mesh_and_pair() -> impl Strategy<Value = (Mesh, NodeId, NodeId)> {
    arb_mesh().prop_flat_map(|mesh| {
        let n = mesh.nodes() as u16;
        (Just(mesh), 0..n, 0..n).prop_map(|(m, a, b)| (m, NodeId(a), NodeId(b)))
    })
}

proptest! {
    /// XY routes have exactly Manhattan-distance length and stay inside
    /// the mesh.
    #[test]
    fn route_length_is_manhattan((mesh, src, dst) in arb_mesh_and_pair()) {
        let route = xy_route(mesh, src, dst);
        prop_assert_eq!(route.len() as u32, mesh.distance(src, dst));
        let mut cur = src;
        for dir in &route {
            cur = mesh.neighbor(cur, *dir).expect("route stays inside mesh");
        }
        prop_assert_eq!(cur, dst);
    }

    /// XY routes never U-turn and turn at most once.
    #[test]
    fn route_turns_at_most_once((mesh, src, dst) in arb_mesh_and_pair()) {
        let route = xy_route(mesh, src, dst);
        let mut turns = 0;
        for w in route.windows(2) {
            prop_assert_ne!(w[1], w[0].opposite(), "U-turn");
            if classify_turn(w[0], w[1]) != Turn::Straight {
                turns += 1;
            }
        }
        prop_assert!(turns <= 1);
    }

    /// The first hop reported matches the route, and the node path ends
    /// at the destination.
    #[test]
    fn first_hop_and_path_consistent((mesh, src, dst) in arb_mesh_and_pair()) {
        let route = xy_route(mesh, src, dst);
        prop_assert_eq!(xy_first_hop(mesh, src, dst), route.first().copied());
        let path = xy_path_nodes(mesh, src, dst);
        prop_assert_eq!(path.len(), route.len());
        if src != dst {
            prop_assert_eq!(*path.last().unwrap(), dst);
        }
    }

    /// Coordinates roundtrip through node ids for any mesh.
    #[test]
    fn coord_roundtrip(mesh in arb_mesh()) {
        for node in mesh.iter_nodes() {
            let c = mesh.coord(node);
            prop_assert!(c.x < mesh.width() && c.y < mesh.height());
            prop_assert_eq!(mesh.node_at(c), node);
        }
    }

    /// Distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn distance_is_a_metric((mesh, a, b) in arb_mesh_and_pair(), c_raw in 0u16..144) {
        let c = NodeId(c_raw % mesh.nodes() as u16);
        prop_assert_eq!(mesh.distance(a, b), mesh.distance(b, a));
        prop_assert_eq!(mesh.distance(a, b) == 0, a == b);
        prop_assert!(mesh.distance(a, b) <= mesh.distance(a, c) + mesh.distance(c, b));
    }

    /// Neighbour relationships are involutive and stay in bounds.
    #[test]
    fn neighbors_involutive(mesh in arb_mesh()) {
        for node in mesh.iter_nodes() {
            for dir in Direction::ALL {
                if let Some(n) = mesh.neighbor(node, dir) {
                    prop_assert!(mesh.contains(n));
                    prop_assert_eq!(mesh.neighbor(n, dir.opposite()), Some(node));
                    let (ca, cb) = (mesh.coord(node), mesh.coord(n));
                    prop_assert_eq!(
                        (i32::from(ca.x) - i32::from(cb.x)).abs()
                            + (i32::from(ca.y) - i32::from(cb.y)).abs(),
                        1
                    );
                }
            }
        }
    }

    /// DestSet expansion never contains the source, never duplicates,
    /// and broadcast covers everything else.
    #[test]
    fn dest_expansion_invariants(
        src in 0u16..64,
        list in proptest::collection::vec(0u16..64, 0..10),
    ) {
        let src = NodeId(src);
        let sets = [
            DestSet::Broadcast,
            DestSet::Multicast(list.iter().map(|&d| NodeId(d)).collect()),
        ];
        for set in sets {
            let expanded = set.expand(src, 64);
            prop_assert!(!expanded.contains(&src));
            let mut dedup = expanded.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), expanded.len(), "no duplicates");
            if matches!(set, DestSet::Broadcast) {
                prop_assert_eq!(expanded.len(), 63);
            }
        }
    }

    /// Merging latency summaries equals recording into one.
    #[test]
    fn latency_merge_equivalent(
        a in proptest::collection::vec(0u64..10_000, 0..40),
        b in proptest::collection::vec(0u64..10_000, 0..40),
    ) {
        let mut merged = LatencyStats::new();
        let mut left = LatencyStats::new();
        let mut right = LatencyStats::new();
        for &v in &a {
            left.record(v);
            merged.record(v);
        }
        for &v in &b {
            right.record(v);
            merged.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left, merged);
    }

    /// Transposing a coordinate twice is the identity (sanity of Coord).
    #[test]
    fn coord_transpose_involutive(x in 0u16..12, y in 0u16..12) {
        let mesh = Mesh::new(12, 12);
        let n = mesh.node_at(Coord { x, y });
        let t = mesh.node_at(Coord { x: y, y: x });
        let tt = {
            let c = mesh.coord(t);
            mesh.node_at(Coord { x: c.y, y: c.x })
        };
        prop_assert_eq!(tt, n);
    }
}

mod ecc_props {
    use phastlane_netsim::ecc::{decode, encode, Decoded};
    use proptest::prelude::*;

    proptest! {
        /// Clean code words always decode to themselves.
        #[test]
        fn clean_roundtrip(data in any::<u64>()) {
            prop_assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }

        /// Any single bit flip (data or check) is corrected back to the
        /// original data.
        #[test]
        fn single_flip_corrected(data in any::<u64>(), bit in 0u32..72) {
            let mut cw = encode(data);
            if bit < 64 {
                cw.data ^= 1 << bit;
            } else {
                cw.check ^= 1 << (bit - 64);
            }
            prop_assert_eq!(decode(cw), Decoded::Corrected(data));
        }

        /// Any double flip across data and check bits is detected, never
        /// silently miscorrected.
        #[test]
        fn double_flip_detected(data in any::<u64>(), a in 0u32..72, b in 0u32..72) {
            prop_assume!(a != b);
            let mut cw = encode(data);
            for bit in [a, b] {
                if bit < 64 {
                    cw.data ^= 1 << bit;
                } else {
                    cw.check ^= 1 << (bit - 64);
                }
            }
            prop_assert_eq!(decode(cw), Decoded::Uncorrectable);
        }
    }
}
