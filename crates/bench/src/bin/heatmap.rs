//! Link-load heatmaps: where does each network congest under a
//! broadcast-storm workload? Renders per-node outbound link load as an
//! ASCII intensity grid and lists the hottest links.
//!
//! Usage: `cargo run --release -p phastlane-bench --bin heatmap
//! [--quick]`

use phastlane_bench::{quick_flag, run_on, scaled_profile, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_netsim::harness::{run_trace, TraceOptions};
use phastlane_netsim::network::Network;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    let scale = if quick_flag() { 0.1 } else { 0.3 };
    let profile = scaled_profile(&splash2::benchmark("Ocean").unwrap(), scale);
    let trace = generate_trace(Mesh::PAPER, &profile);
    println!("link-load heatmaps for {} (scale {scale})\n", profile.name);

    for cfg in [Config::Optical4, Config::Electrical3] {
        let mut net = cfg.build();
        let r = run_trace(&mut net, &trace, TraceOptions::default());
        let links = net.link_counters();
        println!(
            "=== {} ({} cycles, {} link traversals) ===",
            cfg.label(),
            r.completion_cycle,
            links.total()
        );
        println!("{}", links.heatmap(Mesh::PAPER));
        println!("hottest links:");
        for ((from, dir), count) in links.hottest(6) {
            println!("  {from} -{dir}>  {count}");
        }
        println!();
    }
    let _ = run_on; // shared harness kept for symmetry with other bins
    println!("Phastlane's load concentrates on row ports near broadcast");
    println!("sources (16 multicast launches each) and the hot coordinator");
    println!("column; the electrical VCTM tree spreads the same broadcast");
    println!("over fewer, more uniform link traversals.");
}
