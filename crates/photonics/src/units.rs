//! Physical-quantity newtypes used throughout the photonics models.
//!
//! Keeping picoseconds, millimetres, milliwatts, and square millimetres as
//! distinct types prevents the classic unit-mixup bugs in loss-budget and
//! delay arithmetic (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw scalar value in the canonical unit.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of this quantity.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// A time duration in picoseconds.
    Picoseconds,
    "ps"
);
quantity!(
    /// A length in millimetres.
    Millimeters,
    "mm"
);
quantity!(
    /// An optical or electrical power in milliwatts.
    Milliwatts,
    "mW"
);
quantity!(
    /// An area in square millimetres.
    SquareMillimeters,
    "mm^2"
);
quantity!(
    /// An energy in picojoules.
    Picojoules,
    "pJ"
);

impl Milliwatts {
    /// Converts to watts.
    pub fn as_watts(self) -> f64 {
        self.0 / 1000.0
    }

    /// Creates a power from a value in watts.
    pub fn from_watts(w: f64) -> Self {
        Self(w * 1000.0)
    }
}

impl Picoseconds {
    /// Converts to nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Picojoules {
    /// Energy dissipated by `power` over `time`.
    ///
    /// mW x ps = 1e-3 J/s x 1e-12 s = 1e-15 J = 1e-3 pJ.
    pub fn from_power_time(power: Milliwatts, time: Picoseconds) -> Self {
        Self(power.0 * time.0 * 1e-3)
    }
}

/// A CMOS technology node, identified by its feature size in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TechNode(pub u32);

impl TechNode {
    /// The 45 nm node (first Kirman et al. anchor point).
    pub const NM45: TechNode = TechNode(45);
    /// The 32 nm node.
    pub const NM32: TechNode = TechNode(32);
    /// The 22 nm node (last anchor point).
    pub const NM22: TechNode = TechNode(22);
    /// The 16 nm node that the Phastlane paper targets.
    pub const NM16: TechNode = TechNode(16);

    /// Feature size in nanometres as a float, for curve fitting.
    pub fn nanometers(self) -> f64 {
        f64::from(self.0)
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Picoseconds(10.0);
        let b = Picoseconds(2.5);
        assert_eq!((a + b).value(), 12.5);
        assert_eq!((a - b).value(), 7.5);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((a / 2.0).value(), 5.0);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Picoseconds = [1.0, 2.0, 3.0].iter().map(|&v| Picoseconds(v)).sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn watts_conversion() {
        let p = Milliwatts::from_watts(32.0);
        assert_eq!(p.value(), 32_000.0);
        assert_eq!(p.as_watts(), 32.0);
    }

    #[test]
    fn energy_from_power_time() {
        // 1 mW for 1000 ps = 1e-3 W * 1e-9 s = 1e-12 J = 1 pJ.
        let e = Picojoules::from_power_time(Milliwatts(1.0), Picoseconds(1000.0));
        assert!((e.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Picoseconds(3.141_25)), "3.14 ps");
        assert_eq!(format!("{}", TechNode::NM16), "16nm");
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Picoseconds(-3.0).abs().value(), 3.0);
        assert_eq!(Picoseconds(1.0).max(Picoseconds(2.0)).value(), 2.0);
        assert_eq!(Picoseconds(1.0).min(Picoseconds(2.0)).value(), 1.0);
    }

    #[test]
    fn tech_node_ordering() {
        assert!(TechNode::NM16 < TechNode::NM22);
        assert_eq!(TechNode::NM45.nanometers(), 45.0);
    }
}
