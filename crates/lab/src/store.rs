//! Durable, corruption-evident file storage for lab artifacts.
//!
//! Two failure modes threaten stored baselines and journals: a crash
//! mid-write leaving a torn file, and silent on-disk corruption read
//! back as gospel. This module closes both:
//!
//! * [`write_atomic`] — write to a temp file in the target directory,
//!   then `rename` over the destination. Readers see either the old
//!   bytes or the new bytes, never a mix.
//! * [`write_checksummed`] / [`read_checksummed`] — prefix the payload
//!   with a `#phastlane-store crc32=...` header line and verify it on
//!   read. A torn or bit-flipped file fails with
//!   [`StoreError::Corrupt`], never a silent bad comparison.
//! * [`quarantine`] — move a corrupt file aside (`.corrupt` suffix) so
//!   the bad bytes are preserved for forensics without being re-read.
//!
//! Canonical report files stay plain (CI byte-compares them with
//! `cmp`); the checksum header is for the baseline store and other
//! internal artifacts where Phastlane owns both writer and reader.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a checksummed store file's header line.
pub const HEADER_PREFIX: &str = "#phastlane-store crc32=";

/// CRC-32 (IEEE 802.3, polynomial `0xEDB8_8320`), bitwise — no table,
/// no dependency. Plenty fast for kilobyte-scale artifacts and stable
/// across platforms, which is all a torn-write detector needs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What went wrong reading a stored artifact. Split so callers can give
/// a missing baseline a different (friendlier) message than a corrupt
/// one.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not exist.
    Missing(PathBuf),
    /// The file exists but its contents are torn, truncated, or fail
    /// the checksum; the string says how.
    Corrupt(PathBuf, String),
    /// Any other I/O failure.
    Io(PathBuf, io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Missing(p) => write!(f, "{} does not exist", p.display()),
            StoreError::Corrupt(p, why) => write!(f, "{} is corrupt: {why}", p.display()),
            StoreError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl StoreError {
    /// Whether this is the corruption variant (vs. missing / plain IO).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StoreError::Corrupt(..))
    }
}

fn io_error(path: &Path, e: io::Error) -> StoreError {
    if e.kind() == io::ErrorKind::NotFound {
        StoreError::Missing(path.to_path_buf())
    } else {
        StoreError::Io(path.to_path_buf(), e)
    }
}

/// Writes `bytes` to `path` atomically: the full payload lands in a
/// sibling temp file (same directory, so the `rename` cannot cross
/// filesystems), is flushed and synced, then renamed over the target.
/// A crash at any point leaves either the previous file or the new one
/// — never a prefix.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing, or renaming.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent).map_err(|e| StoreError::Io(path.to_path_buf(), e))?;
    }
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "store".into());
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    let mut f = fs::File::create(&tmp).map_err(|e| StoreError::Io(tmp.clone(), e))?;
    let write = f
        .write_all(bytes)
        .and_then(|()| f.flush())
        .and_then(|()| f.sync_all());
    if let Err(e) = write {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::Io(tmp, e));
    }
    drop(f);
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StoreError::Io(path.to_path_buf(), e)
    })
}

/// Atomically writes `payload` to `path` under a
/// `#phastlane-store crc32=...` header covering every payload byte.
///
/// # Errors
///
/// Same as [`write_atomic`].
pub fn write_checksummed(path: &Path, payload: &str) -> Result<(), StoreError> {
    let framed = format!(
        "{HEADER_PREFIX}{:08x}\n{payload}",
        crc32(payload.as_bytes())
    );
    write_atomic(path, framed.as_bytes())
}

/// Reads a file written by [`write_checksummed`] and verifies the
/// checksum. A headerless file is accepted as a legacy artifact and
/// returned whole (pre-checksum baselines keep working); a file *with*
/// a header whose digest does not match its payload is
/// [`StoreError::Corrupt`].
///
/// # Errors
///
/// [`StoreError::Missing`] if absent, [`StoreError::Corrupt`] on a
/// malformed header or checksum mismatch, [`StoreError::Io`] otherwise.
pub fn read_checksummed(path: &Path) -> Result<String, StoreError> {
    let bytes = fs::read(path).map_err(|e| io_error(path, e))?;
    let corrupt = |why: String| StoreError::Corrupt(path.to_path_buf(), why);
    // Bit rot does not respect UTF-8 boundaries: a flipped byte that
    // breaks the encoding is corruption, not a plain I/O failure.
    let raw = String::from_utf8(bytes)
        .map_err(|e| corrupt(format!("not valid UTF-8 ({e}) — bit rot or a binary file")))?;
    let Some(rest) = raw.strip_prefix(HEADER_PREFIX) else {
        return Ok(raw);
    };
    let Some((digest, payload)) = rest.split_once('\n') else {
        return Err(corrupt("checksum header line is unterminated".into()));
    };
    let expected = u32::from_str_radix(digest.trim(), 16)
        .map_err(|_| corrupt(format!("unparseable checksum {digest:?} in header")))?;
    let actual = crc32(payload.as_bytes());
    if actual != expected {
        return Err(corrupt(format!(
            "checksum mismatch (header {expected:08x}, content {actual:08x}) — torn write or bit rot"
        )));
    }
    Ok(payload.to_string())
}

/// Moves a corrupt file aside to `<name>.corrupt` (overwriting any
/// previous quarantine of the same file) and returns the new path. The
/// bad bytes stay on disk for inspection; the original name is freed so
/// a fresh artifact can be recorded.
///
/// # Errors
///
/// Any I/O failure renaming.
pub fn quarantine(path: &Path) -> Result<PathBuf, StoreError> {
    let mut name = path.as_os_str().to_owned();
    name.push(".corrupt");
    let dest = PathBuf::from(name);
    fs::rename(path, &dest).map_err(|e| io_error(path, e))?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("phastlane-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checksummed_round_trip_and_corruption_detection() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("baseline.json");
        write_checksummed(&path, "{\"x\": 1}\n").unwrap();
        assert_eq!(read_checksummed(&path).unwrap(), "{\"x\": 1}\n");

        // Flip one payload byte: the read must fail loudly.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let err = read_checksummed(&path).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // Truncation mid-payload is also caught.
        write_checksummed(&path, "{\"x\": 1}\n").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_checksummed(&path).unwrap_err().is_corrupt());

        // A byte flip that breaks UTF-8 is corruption too, not plain IO.
        write_checksummed(&path, "{\"x\": 1}\n").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = read_checksummed(&path).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        assert!(err.to_string().contains("UTF-8"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_headerless_files_read_whole() {
        let dir = tmp_dir("legacy");
        let path = dir.join("old.json");
        fs::write(&path, "{\"legacy\": true}").unwrap();
        assert_eq!(read_checksummed(&path).unwrap(), "{\"legacy\": true}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_not_corrupt() {
        let err = read_checksummed(Path::new("/nonexistent/phastlane/x.json")).unwrap_err();
        assert!(matches!(err, StoreError::Missing(_)), "{err}");
        assert!(!err.is_corrupt());
    }

    #[test]
    fn quarantine_moves_the_bad_file_aside() {
        let dir = tmp_dir("quarantine");
        let path = dir.join("bad.json");
        fs::write(&path, "torn").unwrap();
        let moved = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(moved.exists());
        assert!(moved.to_string_lossy().ends_with("bad.json.corrupt"));
        assert_eq!(fs::read_to_string(&moved).unwrap(), "torn");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = tmp_dir("atomic");
        let path = dir.join("report.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second version, longer").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second version, longer");
        // No temp litter left behind.
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
