//! Deterministic `std::thread` worker pool over the expanded job list.
//!
//! Determinism holds by construction, not by locking discipline:
//! * every job's seeds come from [`crate::spec::expand`] — a pure
//!   function of the spec, fixed before any thread starts;
//! * each job builds, drives, and drops its own network on its worker
//!   thread; no simulation state is shared;
//! * results land in a slot indexed by the job's matrix index, so the
//!   report order is the matrix order no matter which worker finished
//!   first.
//!
//! The only cross-thread state is the `AtomicUsize` job cursor and the
//! mutex-guarded result slots — neither influences any simulated bit.

use crate::report::{JobRecord, LabReport};
use crate::runner;
use crate::spec::{expand, JobSpec, LabSpec, Work};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Whether `b` is the next lockstep-batchable replica after `a`: the
/// same synthetic matrix cell, differing only in the replica number
/// (which [`expand`] varies fastest, so same-cell replicas are always
/// adjacent in the job list).
fn next_replica_of(a: &JobSpec, b: &JobSpec) -> bool {
    matches!(a.work, Work::Synthetic { .. })
        && a.net == b.net
        && a.work == b.work
        && a.intensity == b.intensity
        && b.replica == a.replica + 1
}

/// Chunks the job list into scheduler units: runs of up to `batch`
/// consecutive same-cell synthetic replicas (executed as one lockstep
/// batch), everything else as singleton groups. Replay jobs never
/// batch.
fn batch_groups(jobs: &[JobSpec], batch: usize) -> Vec<Range<usize>> {
    let batch = batch.max(1);
    let mut groups = Vec::new();
    let mut i = 0;
    while i < jobs.len() {
        let mut j = i + 1;
        while j < jobs.len() && j - i < batch && next_replica_of(&jobs[j - 1], &jobs[j]) {
            j += 1;
        }
        groups.push(i..j);
        i = j;
    }
    groups
}

/// Expands `spec` and runs every job on a pool of `workers` threads
/// (clamped to `1..=groups`), grouping same-cell synthetic replicas
/// into lockstep batches of up to `spec.batch` lanes
/// ([`runner::run_job_batch`]). A single-worker run — and any batch
/// size — produces a byte-identical canonical report.
///
/// # Errors
///
/// Errors if the spec expands to no jobs, or any job fails (unknown
/// network/benchmark — normally caught at parse time).
pub fn run_lab(spec: &LabSpec, workers: usize) -> Result<LabReport, String> {
    let jobs = expand(spec);
    if jobs.is_empty() {
        return Err("spec expands to zero jobs".into());
    }
    let groups = batch_groups(&jobs, spec.batch as usize);
    let workers = workers.max(1).min(groups.len());
    let wall_start = Instant::now();

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<JobRecord, String>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let g = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(group) = groups.get(g) else { break };
                if group.len() == 1 {
                    let i = group.start;
                    let result = runner::run_job(spec, &jobs[i]);
                    *slots[i].lock().expect("slot lock") = Some(result);
                } else {
                    match runner::run_job_batch(spec, &jobs[group.clone()]) {
                        Ok(records) => {
                            for rec in records {
                                let i = rec.index;
                                *slots[i].lock().expect("slot lock") = Some(Ok(rec));
                            }
                        }
                        Err(e) => {
                            for i in group.clone() {
                                *slots[i].lock().expect("slot lock") = Some(Err(e.clone()));
                            }
                        }
                    }
                }
            });
        }
    });

    let mut records = Vec::with_capacity(jobs.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let result = slot
            .into_inner()
            .expect("slot lock")
            .unwrap_or_else(|| Err(format!("job {i} never ran")));
        records.push(result.map_err(|e| format!("job {i}: {e}"))?);
    }

    Ok(LabReport::new(
        spec.clone(),
        records,
        workers,
        wall_start.elapsed().as_secs_f64(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LabSpec {
        LabSpec::parse(
            "name pool-test\nmesh 4x4\nseed 3\nnets optical4 electrical2\n\
             patterns uniform transpose\nrates 0.02 0.04\n\
             warmup 100\nmeasure 300\ndrain 1000\n",
        )
        .unwrap()
    }

    #[test]
    fn parallel_run_matches_serial_byte_for_byte() {
        let spec = small_spec();
        let serial = run_lab(&spec, 1).unwrap();
        let parallel = run_lab(&spec, 8).unwrap();
        assert_eq!(serial.jobs.len(), 8);
        assert_eq!(
            serial.canonical_json().to_string_pretty(),
            parallel.canonical_json().to_string_pretty()
        );
        assert_eq!(serial.workers, 1);
        // Worker count is clamped to the job count.
        assert_eq!(parallel.workers, 8);
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        let report = run_lab(&spec, 64).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn zero_workers_means_one() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        assert_eq!(run_lab(&spec, 0).unwrap().workers, 1);
    }

    #[test]
    fn batch_groups_chunk_same_cell_replicas_only() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02 0.04\n\
             replicas 3\nbenchmarks FFT\nscale 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        let jobs = expand(&spec);
        // 2 rate cells x 3 replicas synthetic + 3 replay replicas.
        assert_eq!(jobs.len(), 9);
        // Batch 1: every group is a singleton.
        assert_eq!(batch_groups(&jobs, 1).len(), 9);
        // Batch 2: each 3-replica cell splits 2+1; replay never batches.
        let groups = batch_groups(&jobs, 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![2, 1, 2, 1, 1, 1, 1]);
        // Batch 8: a whole cell is one group, capped at the cell edge.
        let groups = batch_groups(&jobs, 8);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1, 1, 1]);
        // Groups always tile the job list in order.
        let mut next = 0;
        for g in &groups {
            assert_eq!(g.start, next);
            next = g.end;
        }
        assert_eq!(next, jobs.len());
    }

    #[test]
    fn batched_run_matches_unbatched_byte_for_byte() {
        let mut spec = LabSpec::parse(
            "name batch-test\nmesh 4x4\nnets optical4\npatterns uniform\n\
             rates 0.02 0.05\nreplicas 4\nwarmup 100\nmeasure 300\ndrain 1000\n",
        )
        .unwrap();
        let unbatched = run_lab(&spec, 1).unwrap();
        spec.batch = 4;
        let batched = run_lab(&spec, 2).unwrap();
        assert_eq!(
            unbatched.canonical_json().to_string_pretty(),
            batched.canonical_json().to_string_pretty(),
            "lockstep batching must not change a single canonical bit"
        );
    }

    #[test]
    fn records_come_back_in_matrix_order() {
        let report = run_lab(&small_spec(), 4).unwrap();
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }
}
