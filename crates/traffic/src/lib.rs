//! Workload generation for the Phastlane reproduction: the synthetic
//! patterns of Figure 9 and the SPLASH2-style coherence traces of
//! Figures 10 and 11.
//!
//! * [`patterns`] — bit-permutation traffic patterns (bit complement,
//!   bit reverse, shuffle, transpose, …);
//! * [`synthetic`] — open-loop Bernoulli injection over a pattern;
//! * [`coherence`] — statistical snoopy-coherence trace synthesis (the
//!   SESC substitute; see `DESIGN.md`);
//! * [`cache`] / [`cachegen`] — Table 4 set-associative cache hierarchy
//!   and the cache-accurate trace generator built on it;
//! * [`splash2`] — calibrated per-benchmark profiles for Table 3;
//! * [`codec`] — a plain-text trace file format.
//!
//! # Example
//!
//! Generate the Ocean trace and inspect its message mix:
//!
//! ```
//! use phastlane_netsim::geometry::Mesh;
//! use phastlane_traffic::coherence::{generate_trace, summarize};
//! use phastlane_traffic::splash2;
//!
//! let mut profile = splash2::benchmark("Ocean").expect("known benchmark");
//! profile.misses_per_core = 10; // trim for the example
//! let trace = generate_trace(Mesh::PAPER, &profile);
//! let mix = summarize(&trace);
//! assert_eq!(mix.requests, 64 * 10);
//! assert_eq!(mix.responses, 64 * 10);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cachegen;
pub mod codec;
pub mod coherence;
pub mod patterns;
pub mod splash2;
pub mod synthetic;

pub use coherence::BenchmarkProfile;
pub use patterns::Pattern;
pub use synthetic::BernoulliTraffic;

// Compile-time `Send` guarantee: the `phastlane-lab` scheduler builds
// and drives workloads on `std::thread` workers. A future `Rc`/raw-
// pointer refactor must fail right here at build time, not there.
fn _assert_send<T: Send>() {}
const _: fn() = _assert_send::<BernoulliTraffic>;
const _: fn() = _assert_send::<Pattern>;
const _: fn() = _assert_send::<BenchmarkProfile>;
const _: fn() = _assert_send::<cachegen::CacheWorkload>;
