//! Bounded, backpressure-aware NDJSON event sink for streaming
//! progress.
//!
//! The lab worker pool (and, later, `phastlane-serve`) needs to stream
//! lifecycle events to an observer *without* perturbing the run: a slow
//! or blocked consumer must never stall a worker thread, and the
//! canonical results must stay byte-identical whether or not anyone is
//! watching. [`EventSink`] provides that contract:
//!
//! * [`emit`](EventSink::emit) appends one JSON line to a bounded
//!   in-memory queue under a short lock. When the queue is full the
//!   event is **dropped and counted** — backpressure sheds load instead
//!   of propagating into the simulation;
//! * after enqueueing, the emitter *opportunistically* flushes: it
//!   `try_lock`s the writer and drains the queue if no one else is
//!   writing. If another thread holds the writer, the line simply rides
//!   along with that thread's drain — nobody ever blocks on I/O except
//!   the final [`finish`](EventSink::finish);
//! * [`finish`](EventSink::finish) performs one blocking drain and
//!   returns the delivery accounting ([`SinkReport`]), so a lossy
//!   stream is always visible as such.
//!
//! Events are NDJSON: one compact JSON object per line, each carrying an
//! `"event"` discriminator key.

use crate::obs::json::JsonValue;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// Version stamp carried by every NDJSON lifecycle event and by the
/// `phastlane-serve` job-status JSON as a `schema_version` field, so
/// API consumers can detect format drift instead of misparsing it.
/// Bump it whenever an existing field changes meaning or shape; adding
/// fields is backward-compatible and does not require a bump.
pub const EVENT_SCHEMA_VERSION: u64 = 1;

/// Delivery accounting returned by [`EventSink::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkReport {
    /// Events accepted into the queue and written (or pending write
    /// errors).
    pub emitted: u64,
    /// Events shed because the queue was full.
    pub dropped: u64,
    /// Lines whose write failed (stream kept going).
    pub write_errors: u64,
}

/// Queue half of the sink (events waiting for a writer).
#[derive(Debug)]
struct SinkQueue {
    lines: VecDeque<String>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
    write_errors: u64,
}

/// A thread-safe bounded NDJSON writer. See the module docs for the
/// backpressure contract.
pub struct EventSink {
    queue: Mutex<SinkQueue>,
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let q = self.queue.lock().unwrap();
        f.debug_struct("EventSink")
            .field("pending", &q.lines.len())
            .field("capacity", &q.capacity)
            .field("emitted", &q.emitted)
            .field("dropped", &q.dropped)
            .finish()
    }
}

impl EventSink {
    /// Default bound on queued-but-unwritten events.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A sink writing NDJSON lines to `writer`, queueing at most
    /// `capacity` unwritten events (clamped to ≥ 1).
    pub fn new(writer: Box<dyn Write + Send>, capacity: usize) -> Self {
        EventSink {
            queue: Mutex::new(SinkQueue {
                lines: VecDeque::new(),
                capacity: capacity.max(1),
                emitted: 0,
                dropped: 0,
                write_errors: 0,
            }),
            writer: Mutex::new(writer),
        }
    }

    /// Enqueues one event as a compact JSON line and opportunistically
    /// drains the queue. Never blocks on the writer; sheds the event
    /// (counted) if the queue is full.
    pub fn emit(&self, event: &JsonValue) {
        {
            let mut q = self.queue.lock().unwrap();
            if q.lines.len() >= q.capacity {
                q.dropped += 1;
                return;
            }
            let mut line = event.to_string_compact();
            line.push('\n');
            q.lines.push_back(line);
            q.emitted += 1;
        }
        if let Ok(mut w) = self.writer.try_lock() {
            self.drain(&mut w);
        }
    }

    /// Writes every queued line through `w`, re-locking the queue per
    /// line so emitters are never blocked behind I/O.
    fn drain(&self, w: &mut Box<dyn Write + Send>) {
        loop {
            let line = {
                let mut q = self.queue.lock().unwrap();
                match q.lines.pop_front() {
                    Some(line) => line,
                    None => break,
                }
            };
            if w.write_all(line.as_bytes()).is_err() {
                self.queue.lock().unwrap().write_errors += 1;
            }
        }
        let _ = w.flush();
    }

    /// Final blocking drain; returns the delivery accounting.
    pub fn finish(&self) -> SinkReport {
        {
            let mut w = self.writer.lock().unwrap();
            self.drain(&mut w);
        }
        let q = self.queue.lock().unwrap();
        SinkReport {
            emitted: q.emitted,
            dropped: q.dropped,
            write_errors: q.write_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Test writer capturing bytes behind a shared handle.
    #[derive(Clone, Default)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn event(i: u64) -> JsonValue {
        JsonValue::Obj(vec![
            ("event".to_string(), JsonValue::Str("test".to_string())),
            ("i".to_string(), JsonValue::Uint(i)),
        ])
    }

    #[test]
    fn writes_one_parseable_json_object_per_line() {
        let cap = Capture::default();
        let sink = EventSink::new(Box::new(cap.clone()), 64);
        for i in 0..5 {
            sink.emit(&event(i));
        }
        let report = sink.finish();
        assert_eq!(report.emitted, 5);
        assert_eq!(report.dropped, 0);
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("each line is valid JSON");
            assert_eq!(v.get("event").unwrap().as_str(), Some("test"));
            assert_eq!(v.get("i").unwrap().as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn full_queue_sheds_and_counts_instead_of_blocking() {
        /// A writer that always fails, so the queue can only grow.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("down"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Hold the writer lock so emits cannot drain.
        let sink = EventSink::new(Box::new(Broken), 2);
        let guard = sink.writer.lock().unwrap();
        for i in 0..5 {
            sink.emit(&event(i));
        }
        drop(guard);
        let report = sink.finish();
        assert_eq!(report.emitted, 2, "queue capacity");
        assert_eq!(report.dropped, 3, "overflow shed, not blocked");
        assert_eq!(report.write_errors, 2, "failed writes surfaced");
    }

    #[test]
    fn stalled_consumer_sheds_deterministically_and_recovers() {
        use std::sync::Condvar;

        /// Writer whose first write parks on a condvar until the test
        /// opens the gate — a deterministic stand-in for a consumer
        /// that stopped reading (full pipe, wedged terminal).
        struct Gate {
            open: StdMutex<bool>,
            arrived: StdMutex<bool>,
            cv: Condvar,
        }
        struct GatedWriter(Arc<Gate>, Capture);
        impl Write for GatedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                *self.0.arrived.lock().unwrap() = true;
                self.0.cv.notify_all();
                let mut open = self.0.open.lock().unwrap();
                while !*open {
                    open = self.0.cv.wait(open).unwrap();
                }
                drop(open);
                self.1.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let gate = Arc::new(Gate {
            open: StdMutex::new(false),
            arrived: StdMutex::new(false),
            cv: Condvar::new(),
        });
        let cap = Capture::default();
        let sink = Arc::new(EventSink::new(
            Box::new(GatedWriter(Arc::clone(&gate), cap.clone())),
            4,
        ));

        // This emit drains its own event and parks inside write(),
        // holding the writer lock.
        let parked = {
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || sink.emit(&event(0)))
        };
        {
            let mut arrived = gate.arrived.lock().unwrap();
            while !*arrived {
                arrived = gate.cv.wait(arrived).unwrap();
            }
        }

        // With the writer wedged, emits queue up to capacity (4) and
        // shed the rest — none of these calls may block.
        for i in 1..=7 {
            sink.emit(&event(i));
        }

        // Open the gate: the parked drain resumes and flushes the queue.
        *gate.open.lock().unwrap() = true;
        gate.cv.notify_all();
        parked.join().unwrap();

        let report = sink.finish();
        assert_eq!(report.emitted, 5, "1 draining + 4 queued");
        assert_eq!(report.dropped, 3, "overflow shed while stalled");
        assert_eq!(report.write_errors, 0);
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 5, "every accepted event written");
    }

    #[test]
    fn concurrent_emitters_lose_nothing_under_capacity() {
        let cap = Capture::default();
        let sink = Arc::new(EventSink::new(Box::new(cap.clone()), 10_000));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.emit(&event(t * 1000 + i));
                    }
                });
            }
        });
        let report = sink.finish();
        assert_eq!(report.emitted, 400);
        assert_eq!(report.dropped, 0);
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 400);
        for line in text.lines() {
            json::parse(line).expect("interleaving never corrupts lines");
        }
    }
}
