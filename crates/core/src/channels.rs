//! Wavelength-channel assignment: how the 710 bits of a Phastlane packet
//! map onto physical waveguides and wavelengths (Figure 2 and Figure 3).
//!
//! The payload (640 bits: 64-byte cache line plus address, operation
//! type, source id, ECC and miscellaneous bits) rides ten data waveguides
//! D0–D9 at 64-way WDM. The 70 Router Control bits ride the C0 and C1
//! waveguides at 35-way WDM: C0 carries Groups 1–7 on λ1–λ35, C1 carries
//! Groups 8–14. At each output port the remaining C0 groups are
//! frequency-translated down five wavelengths onto the outgoing C1 while
//! the physical C1 waveguide shifts into the C0 position (§2.1).

use phastlane_photonics::wdm::{WdmConfig, CONTROL_WDM, PAYLOAD_BITS};
use std::fmt;

/// A physical waveguide of the router channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Waveguide {
    /// A payload data waveguide D0..D{n-1}.
    Data(u8),
    /// The C0 control waveguide (Groups 1-7 as input).
    C0,
    /// The C1 control waveguide (Groups 8-14 as input).
    C1,
}

impl fmt::Display for Waveguide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Waveguide::Data(i) => write!(f, "D{i}"),
            Waveguide::C0 => f.write_str("C0"),
            Waveguide::C1 => f.write_str("C1"),
        }
    }
}

/// One optical channel: a wavelength slot on a waveguide. Wavelengths
/// are 1-based (λ1 is the first), matching the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// The waveguide.
    pub waveguide: Waveguide,
    /// 1-based wavelength index on that waveguide.
    pub wavelength: u16,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:λ{}", self.waveguide, self.wavelength)
    }
}

/// The channel map for a WDM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelMap {
    wdm: WdmConfig,
}

impl ChannelMap {
    /// Creates the map for a configuration (the paper's is 64-way).
    pub fn new(wdm: WdmConfig) -> Self {
        ChannelMap { wdm }
    }

    /// The channel carrying payload bit `bit` (0-based, < 640): bits fill
    /// D0 λ1..λW, then D1, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 640`.
    pub fn payload_channel(&self, bit: u32) -> Channel {
        assert!(bit < PAYLOAD_BITS, "payload bit {bit} out of range");
        let w = self.wdm.payload_wdm;
        Channel {
            waveguide: Waveguide::Data((bit / w) as u8),
            wavelength: (bit % w + 1) as u16,
        }
    }

    /// The channel carrying control bit `bit` (0-based, < 70) *at a
    /// router input*: Groups 1-7 (bits 0..34) on C0, Groups 8-14 on C1.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 70`.
    pub fn control_channel(&self, bit: u32) -> Channel {
        assert!(bit < 70, "control bit {bit} out of range");
        if bit < CONTROL_WDM {
            Channel {
                waveguide: Waveguide::C0,
                wavelength: (bit + 1) as u16,
            }
        } else {
            Channel {
                waveguide: Waveguide::C1,
                wavelength: (bit - CONTROL_WDM + 1) as u16,
            }
        }
    }

    /// The output-port channel of an input control channel after one
    /// router traversal (Figure 3): Group 1 (λ1–λ5 of C0) is consumed;
    /// C0's λ6–λ35 frequency-translate to λ1–λ30 of the *outgoing* C1;
    /// the physical C1 shifts into the C0 position unchanged.
    ///
    /// Returns `None` for the consumed Group 1 channels.
    pub fn translate(&self, input: Channel) -> Option<Channel> {
        match input.waveguide {
            Waveguide::C0 => {
                if input.wavelength <= 5 {
                    None // Group 1, consumed by this router
                } else {
                    Some(Channel {
                        waveguide: Waveguide::C1,
                        wavelength: input.wavelength - 5,
                    })
                }
            }
            Waveguide::C1 => Some(Channel {
                waveguide: Waveguide::C0,
                ..input
            }),
            Waveguide::Data(_) => Some(input),
        }
    }

    /// Total active channels for one packet transmission.
    pub fn packet_channels(&self) -> u32 {
        self.wdm.packet_channels()
    }
}

/// Which physical group *position* (1-based, 1-7 on C0, 8-14 on C1) the
/// source must use for the `router_index`-th router of the route
/// (1-based).
///
/// The Figure 3 hardware alternates waveguides: each traversal consumes
/// C0's Group 1, frequency-translates the rest of C0 onto the outgoing
/// C1, and physically shifts C1 into the C0 position — so consecutive
/// routers consume positions 1, 8, 2, 9, 3, 10, … The source predecodes
/// with this interleaving.
///
/// # Panics
///
/// Panics if `router_index` is 0 or greater than 14.
pub fn group_position_for_router(router_index: u32) -> u32 {
    assert!(
        (1..=14).contains(&router_index),
        "router index {router_index} outside the 14-group budget"
    );
    if router_index % 2 == 1 {
        router_index.div_ceil(2)
    } else {
        7 + router_index / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ChannelMap {
        ChannelMap::new(WdmConfig::PAPER)
    }

    #[test]
    fn payload_layout_matches_figure2() {
        let m = map();
        assert_eq!(
            m.payload_channel(0),
            Channel {
                waveguide: Waveguide::Data(0),
                wavelength: 1
            }
        );
        assert_eq!(
            m.payload_channel(63),
            Channel {
                waveguide: Waveguide::Data(0),
                wavelength: 64
            }
        );
        assert_eq!(
            m.payload_channel(64),
            Channel {
                waveguide: Waveguide::Data(1),
                wavelength: 1
            }
        );
        assert_eq!(
            m.payload_channel(639),
            Channel {
                waveguide: Waveguide::Data(9),
                wavelength: 64
            }
        );
    }

    #[test]
    fn payload_mapping_is_injective() {
        let m = map();
        let mut seen = std::collections::HashSet::new();
        for bit in 0..640 {
            assert!(seen.insert(m.payload_channel(bit)), "bit {bit} collides");
        }
    }

    #[test]
    fn control_split_across_c0_c1() {
        let m = map();
        // Group 1 = bits 0..5 on C0 λ1-λ5.
        assert_eq!(
            m.control_channel(0),
            Channel {
                waveguide: Waveguide::C0,
                wavelength: 1
            }
        );
        assert_eq!(
            m.control_channel(34),
            Channel {
                waveguide: Waveguide::C0,
                wavelength: 35
            }
        );
        // Group 8 starts C1.
        assert_eq!(
            m.control_channel(35),
            Channel {
                waveguide: Waveguide::C1,
                wavelength: 1
            }
        );
        assert_eq!(
            m.control_channel(69),
            Channel {
                waveguide: Waveguide::C1,
                wavelength: 35
            }
        );
    }

    #[test]
    fn translation_consumes_group1_and_shifts() {
        let m = map();
        // Group 1 channels vanish.
        for wl in 1..=5 {
            assert_eq!(
                m.translate(Channel {
                    waveguide: Waveguide::C0,
                    wavelength: wl
                }),
                None
            );
        }
        // C0 λ6 -> outgoing C1 λ1 (frequency translation).
        assert_eq!(
            m.translate(Channel {
                waveguide: Waveguide::C0,
                wavelength: 6
            }),
            Some(Channel {
                waveguide: Waveguide::C1,
                wavelength: 1
            })
        );
        // C1 shifts physically into the C0 position, same wavelength.
        assert_eq!(
            m.translate(Channel {
                waveguide: Waveguide::C1,
                wavelength: 12
            }),
            Some(Channel {
                waveguide: Waveguide::C0,
                wavelength: 12
            })
        );
        // Data channels pass through.
        let d = Channel {
            waveguide: Waveguide::Data(4),
            wavelength: 9,
        };
        assert_eq!(m.translate(d), Some(d));
    }

    #[test]
    fn hardware_consumption_order_matches_position_map() {
        // Simulate every group position's first bit through 14 router
        // traversals. At each router, exactly one position must sit at
        // Group 1 (C0 λ1-λ5) — and it must be the position
        // `group_position_for_router` tells the source to use.
        let m = map();
        let mut live: Vec<(u32, Channel)> = (1..=14)
            .map(|pos| (pos, m.control_channel((pos - 1) * 5)))
            .collect();
        for router in 1..=14u32 {
            let at_group1: Vec<u32> = live
                .iter()
                .filter(|(_, ch)| ch.waveguide == Waveguide::C0 && ch.wavelength <= 5)
                .map(|&(pos, _)| pos)
                .collect();
            assert_eq!(
                at_group1.len(),
                1,
                "router {router}: exactly one group at Group 1"
            );
            assert_eq!(
                at_group1[0],
                group_position_for_router(router),
                "router {router} consumes the wrong position"
            );
            // Traverse the router: Group 1 is consumed, the rest move.
            live = live
                .into_iter()
                .filter_map(|(pos, ch)| m.translate(ch).map(|next| (pos, next)))
                .collect();
        }
        assert!(live.is_empty(), "all 14 groups consumed after 14 routers");
    }

    #[test]
    fn position_map_is_a_permutation() {
        let mut seen: Vec<u32> = (1..=14).map(group_position_for_router).collect();
        assert_eq!(seen[..4], [1, 8, 2, 9]);
        seen.sort_unstable();
        assert_eq!(seen, (1..=14).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "outside the 14-group budget")]
    fn position_map_bounds() {
        let _ = group_position_for_router(15);
    }

    #[test]
    fn display_formats() {
        let c = Channel {
            waveguide: Waveguide::Data(3),
            wavelength: 17,
        };
        assert_eq!(c.to_string(), "D3:λ17");
        assert_eq!(Waveguide::C0.to_string(), "C0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn payload_bit_bounds() {
        let _ = map().payload_channel(640);
    }
}
