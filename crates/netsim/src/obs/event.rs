//! Cycle-stamped structured simulation events and the ring-buffered
//! trace that collects them.

use crate::geometry::{Direction, NodeId};
use crate::obs::flight::FlightRecorder;
use crate::obs::json::JsonValue;
use crate::packet::PacketId;
use std::collections::VecDeque;
use std::fmt;

/// What happened. The taxonomy follows the Phastlane pipeline: a packet
/// is injected, transits optically, falls back to an electrical buffer
/// on contention, overflows and is dropped when the buffer is full, the
/// drop signal returns to the launcher, and the launcher retransmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A packet was accepted into the source node's NIC.
    Inject,
    /// The source NIC was full; the workload must retry the injection.
    NicRetry,
    /// An optical hop: the packet traversed the link leaving `node`
    /// toward `port` within the current cycle's wavefront.
    OpticalTransit,
    /// An electrical link/crossbar traversal (baseline network).
    LinkTraversal,
    /// Contention: the packet was received into `node`'s electrical
    /// input-port buffer instead of continuing optically.
    ElectricalFallback,
    /// The input buffer was full: the packet was dropped at `node` and a
    /// drop signal was launched down the optical return path.
    BufferOverflow,
    /// The Packet Dropped signal reached the launching router; the
    /// buffered copy reverts and schedules a backoff.
    DropReturn,
    /// A previously-dropped packet re-entered arbitration after backoff.
    Retransmit,
    /// The packet was delivered (ejected) at `node`.
    Eject,
    /// A scheduled fault became active at `node` (`port` names the dead
    /// link for link faults).
    FaultInjected,
    /// A transient fault's window ended at `node`.
    FaultCleared,
    /// The packet was steered around a faulted link/router: a productive
    /// detour at launch, or a forced electrical fallback at the faulted
    /// hop mid-wavefront.
    FaultReroute,
    /// The packet could not launch because every usable output at `node`
    /// was faulted; it backs off in place (counts against the retry cap).
    FaultStall,
    /// A transient bit error was corrected by SECDED on delivery.
    EccCorrected,
    /// An uncorrectable (double) bit error: the delivery was rejected and
    /// the packet re-buffered for retransmission.
    EccUncorrectable,
    /// The retry cap / livelock guard fired: the packet's remaining
    /// destinations are terminally undeliverable.
    Undeliverable,
}

impl EventKind {
    /// Every kind, in pipeline order (stable across releases — the
    /// trace format depends on it; new kinds are only ever appended).
    pub const ALL: [EventKind; 16] = [
        EventKind::Inject,
        EventKind::NicRetry,
        EventKind::OpticalTransit,
        EventKind::LinkTraversal,
        EventKind::ElectricalFallback,
        EventKind::BufferOverflow,
        EventKind::DropReturn,
        EventKind::Retransmit,
        EventKind::Eject,
        EventKind::FaultInjected,
        EventKind::FaultCleared,
        EventKind::FaultReroute,
        EventKind::FaultStall,
        EventKind::EccCorrected,
        EventKind::EccUncorrectable,
        EventKind::Undeliverable,
    ];

    /// Stable machine-readable name (used in JSON/CSV exports).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Inject => "inject",
            EventKind::NicRetry => "nic_retry",
            EventKind::OpticalTransit => "optical_transit",
            EventKind::LinkTraversal => "link_traversal",
            EventKind::ElectricalFallback => "electrical_fallback",
            EventKind::BufferOverflow => "buffer_overflow",
            EventKind::DropReturn => "drop_return",
            EventKind::Retransmit => "retransmit",
            EventKind::Eject => "eject",
            EventKind::FaultInjected => "fault_injected",
            EventKind::FaultCleared => "fault_cleared",
            EventKind::FaultReroute => "fault_reroute",
            EventKind::FaultStall => "fault_stall",
            EventKind::EccCorrected => "ecc_corrected",
            EventKind::EccUncorrectable => "ecc_uncorrectable",
            EventKind::Undeliverable => "undeliverable",
        }
    }

    /// Parses a [`name`](Self::name) back to a kind.
    pub fn from_name(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// How noteworthy this kind is. Per-hop transits are debug noise at
    /// scale; contention and loss events are what saturation debugging
    /// needs.
    pub fn severity(self) -> Severity {
        match self {
            EventKind::OpticalTransit | EventKind::LinkTraversal => Severity::Debug,
            EventKind::Inject | EventKind::Eject => Severity::Info,
            EventKind::NicRetry
            | EventKind::ElectricalFallback
            | EventKind::BufferOverflow
            | EventKind::DropReturn
            | EventKind::Retransmit
            | EventKind::FaultInjected
            | EventKind::FaultCleared
            | EventKind::FaultReroute
            | EventKind::FaultStall
            | EventKind::EccCorrected
            | EventKind::EccUncorrectable
            | EventKind::Undeliverable => Severity::Warn,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Event importance, for trace filtering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-hop progress events (high volume).
    #[default]
    Debug,
    /// Packet lifecycle milestones.
    Info,
    /// Contention, loss, and back-pressure.
    Warn,
}

impl Severity {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }

    /// Parses a [`name`](Self::name) back to a severity.
    pub fn from_name(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            _ => None,
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Router/node involved.
    pub node: NodeId,
    /// Outgoing or entry port, when the event concerns a link.
    pub port: Option<Direction>,
    /// The packet involved, when known.
    pub packet: Option<PacketId>,
}

impl SimEvent {
    /// JSON object for one event (stable key order).
    pub fn to_json(&self) -> JsonValue {
        let mut obj = vec![
            ("cycle".to_string(), JsonValue::Uint(self.cycle)),
            (
                "kind".to_string(),
                JsonValue::Str(self.kind.name().to_string()),
            ),
            ("node".to_string(), JsonValue::Uint(u64::from(self.node.0))),
        ];
        if let Some(p) = self.port {
            obj.push((
                "port".to_string(),
                JsonValue::Str(direction_name(p).to_string()),
            ));
        }
        if let Some(id) = self.packet {
            obj.push(("packet".to_string(), JsonValue::Uint(id.0)));
        }
        JsonValue::Obj(obj)
    }

    /// CSV row matching [`TraceBuffer::CSV_HEADER`].
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.cycle,
            self.kind.name(),
            self.node.0,
            self.port
                .map_or(String::new(), |p| direction_name(p).to_string()),
            self.packet.map_or(String::new(), |p| p.0.to_string()),
        )
    }
}

/// Stable lowercase direction name for exports.
pub fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::North => "north",
        Direction::South => "south",
        Direction::East => "east",
        Direction::West => "west",
    }
}

/// Parses a [`direction_name`] back.
pub fn direction_from_name(s: &str) -> Option<Direction> {
    match s {
        "north" => Some(Direction::North),
        "south" => Some(Direction::South),
        "east" => Some(Direction::East),
        "west" => Some(Direction::West),
        _ => None,
    }
}

/// A bounded or unbounded event trace with severity filtering.
///
/// In ring mode the buffer keeps the **latest** `capacity` events and
/// counts evictions — saturation debugging usually cares about the
/// steady state, not the warm-up, and memory stays bounded no matter
/// how long the run is.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<SimEvent>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    min_severity: Severity,
    recorded: u64,
    evicted: u64,
    filtered: u64,
}

impl TraceBuffer {
    /// CSV header matching [`SimEvent::to_csv_row`].
    pub const CSV_HEADER: &'static str = "cycle,kind,node,port,packet";

    /// An unbounded trace keeping every event.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bounded trace keeping the latest `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        TraceBuffer {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Drops events below `min` instead of recording them.
    #[must_use]
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// The severity floor.
    pub fn min_severity(&self) -> Severity {
        self.min_severity
    }

    /// Records one event (if it passes the severity filter).
    #[inline]
    pub fn push(&mut self, ev: SimEvent) {
        if ev.kind.severity() < self.min_severity {
            self.filtered += 1;
            return;
        }
        self.recorded += 1;
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.evicted += 1;
            }
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events recorded (retained + evicted), excluding filtered ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events pushed out of the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events rejected by the severity filter.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Per-kind counts over the retained events.
    pub fn counts_by_kind(&self) -> Vec<(EventKind, u64)> {
        EventKind::ALL
            .into_iter()
            .map(|k| (k, self.events.iter().filter(|e| e.kind == k).count() as u64))
            .filter(|&(_, c)| c > 0)
            .collect()
    }

    /// The full trace as one JSON document:
    /// `{"min_severity", "recorded", "evicted", "filtered", "events": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "min_severity".to_string(),
                JsonValue::Str(self.min_severity.name().to_string()),
            ),
            ("recorded".to_string(), JsonValue::Uint(self.recorded)),
            ("evicted".to_string(), JsonValue::Uint(self.evicted)),
            ("filtered".to_string(), JsonValue::Uint(self.filtered)),
            (
                "events".to_string(),
                JsonValue::Arr(self.events.iter().map(SimEvent::to_json).collect()),
            ),
        ])
    }

    /// The retained events as CSV (header + one row per event).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }
}

/// The consumers an [`Obs`] handle can fan an event out to (boxed
/// behind the handle's single `Option`).
#[derive(Debug, Default)]
struct ObsState {
    trace: Option<TraceBuffer>,
    flight: Option<FlightRecorder>,
}

/// The per-network observability handle: a maybe-attached trace buffer
/// and/or packet [`FlightRecorder`], fed from the same emit sites.
///
/// Disabled (`Obs::off()`, the default) this is a single `None`; every
/// [`emit`](Obs::emit) is one predictable branch and no event is built.
#[derive(Debug, Default)]
pub struct Obs {
    state: Option<Box<ObsState>>,
}

impl Obs {
    /// The disabled handle (default state of every network).
    pub const fn off() -> Self {
        Obs { state: None }
    }

    /// An enabled handle collecting into `buffer`.
    pub fn with_trace(buffer: TraceBuffer) -> Self {
        let mut obs = Obs::off();
        obs.attach_trace(buffer);
        obs
    }

    /// Attaches (or replaces) the trace buffer, keeping any flight
    /// recorder already attached.
    pub fn attach_trace(&mut self, buffer: TraceBuffer) {
        self.state.get_or_insert_default().trace = Some(buffer);
    }

    /// Attaches (or replaces) the flight recorder, keeping any trace
    /// buffer already attached.
    pub fn attach_flight(&mut self, recorder: FlightRecorder) {
        self.state.get_or_insert_default().flight = Some(recorder);
    }

    /// Whether any consumer is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Records an event if any consumer is attached.
    #[inline]
    pub fn emit(
        &mut self,
        cycle: u64,
        kind: EventKind,
        node: NodeId,
        port: Option<Direction>,
        packet: Option<PacketId>,
    ) {
        if let Some(s) = &mut self.state {
            let ev = SimEvent {
                cycle,
                kind,
                node,
                port,
                packet,
            };
            if let Some(t) = &mut s.trace {
                t.push(ev);
            }
            if let Some(f) = &mut s.flight {
                f.observe(&ev);
            }
        }
    }

    /// Detaches and returns the trace buffer, disabling tracing.
    pub fn take(&mut self) -> Option<TraceBuffer> {
        let taken = self.state.as_mut().and_then(|s| s.trace.take());
        self.prune();
        taken
    }

    /// Detaches and returns the flight recorder.
    pub fn take_flight(&mut self) -> Option<FlightRecorder> {
        let taken = self.state.as_mut().and_then(|s| s.flight.take());
        self.prune();
        taken
    }

    /// Drops the boxed state once every consumer is detached, restoring
    /// the zero-cost disabled fast path.
    fn prune(&mut self) {
        if self
            .state
            .as_ref()
            .is_some_and(|s| s.trace.is_none() && s.flight.is_none())
        {
            self.state = None;
        }
    }

    /// A read-only view of the attached buffer.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.state.as_ref().and_then(|s| s.trace.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> SimEvent {
        SimEvent {
            cycle,
            kind,
            node: NodeId(3),
            port: Some(Direction::East),
            packet: Some(PacketId(9)),
        }
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut t = TraceBuffer::new();
        for c in 0..100 {
            t.push(ev(c, EventKind::Inject));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.recorded(), 100);
        assert_eq!(t.evicted(), 0);
    }

    #[test]
    fn ring_keeps_latest_and_counts_evictions() {
        let mut t = TraceBuffer::ring(10);
        for c in 0..25 {
            t.push(ev(c, EventKind::Eject));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.evicted(), 15);
        assert_eq!(t.recorded(), 25);
        let first = t.events().next().unwrap();
        assert_eq!(first.cycle, 15, "oldest retained is cycle 15");
    }

    #[test]
    fn severity_filter_drops_debug() {
        let mut t = TraceBuffer::new().with_min_severity(Severity::Warn);
        t.push(ev(0, EventKind::OpticalTransit)); // debug
        t.push(ev(0, EventKind::Inject)); // info
        t.push(ev(0, EventKind::BufferOverflow)); // warn
        assert_eq!(t.len(), 1);
        assert_eq!(t.filtered(), 2);
        assert_eq!(t.events().next().unwrap().kind, EventKind::BufferOverflow);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        for s in [Severity::Debug, Severity::Info, Severity::Warn] {
            assert_eq!(Severity::from_name(s.name()), Some(s));
        }
    }

    #[test]
    fn disabled_obs_is_inert() {
        let mut o = Obs::off();
        assert!(!o.enabled());
        o.emit(0, EventKind::Inject, NodeId(0), None, None);
        assert!(o.take().is_none());
    }

    #[test]
    fn enabled_obs_records_and_detaches() {
        let mut o = Obs::with_trace(TraceBuffer::new());
        o.emit(5, EventKind::Eject, NodeId(1), None, Some(PacketId(2)));
        let t = o.take().expect("buffer attached");
        assert!(!o.enabled());
        assert_eq!(t.len(), 1);
        assert_eq!(t.events().next().unwrap().cycle, 5);
    }

    #[test]
    fn flight_recorder_rides_the_same_emit_path() {
        let mut o = Obs::off();
        o.attach_trace(TraceBuffer::new());
        o.attach_flight(FlightRecorder::new(0, 1)); // pin everything
        o.emit(3, EventKind::Inject, NodeId(4), None, Some(PacketId(11)));
        // Detaching one consumer keeps the other attached and live.
        let trace = o.take().expect("trace attached");
        assert_eq!(trace.len(), 1);
        assert!(o.enabled(), "flight recorder still attached");
        o.emit(4, EventKind::Eject, NodeId(4), None, Some(PacketId(11)));
        let flight = o.take_flight().expect("recorder attached");
        assert!(!o.enabled(), "fully detached handle is off again");
        let dump = flight.to_json();
        let journeys = dump.get("journeys").unwrap().as_arr().unwrap();
        assert_eq!(journeys.len(), 1);
        assert_eq!(
            journeys[0].get("steps").unwrap().as_arr().unwrap().len(),
            2,
            "both events captured"
        );
    }

    #[test]
    fn csv_shape() {
        let mut t = TraceBuffer::new();
        t.push(ev(7, EventKind::DropReturn));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(TraceBuffer::CSV_HEADER));
        assert_eq!(lines.next(), Some("7,drop_return,3,east,9"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ring_rejected() {
        let _ = TraceBuffer::ring(0);
    }
}
