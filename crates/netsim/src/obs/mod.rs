//! Observability: structured event traces, time-series metrics, and
//! run reports — zero-cost when disabled.
//!
//! The paper's congestion story (Figs. 9–11) lives in *where* and *when*
//! packets fall back to electrical buffers, overflow, and retransmit.
//! End-of-run aggregates cannot show that, so this module provides three
//! progressively heavier views:
//!
//! 1. [`event`] — a per-event structured trace ([`SimEvent`]) collected
//!    into a [`TraceBuffer`] (unbounded or ring mode) with severity
//!    filtering;
//! 2. [`metrics`] — interval-sampled time series ([`MetricsSeries`]):
//!    offered/accepted/delivered load, latency percentiles, buffer
//!    occupancy, drops and retries per sample window;
//! 3. [`report`] — a structured run report ([`RunReport`]) with a
//!    simulator performance profile ([`PerfProfile`]), exportable as
//!    JSON or CSV through the dependency-free [`json`] serializer.
//!
//! # Cost model
//!
//! Networks own an [`Obs`] handle that is `Off` by default. Every emit
//! site compiles to one branch on an `Option` discriminant when tracing
//! is disabled; no event values are constructed. Metric sampling lives
//! in the harness, not the per-cycle network loops, and only runs when a
//! collector is attached.

pub mod event;
pub mod json;
pub mod metrics;
pub mod report;

pub use event::{EventKind, Obs, Severity, SimEvent, TraceBuffer};
pub use metrics::{CycleTotals, MetricSample, MetricsCollector, MetricsSeries};
pub use report::{PerfProfile, RunReport};
