//! Diagnostic: print the deterministic completion cycles used by the
//! golden regression tests (tests/golden.rs).
use phastlane_bench::{run_on, scaled_profile, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_traffic::cachegen::{generate_cache_trace, CacheWorkload};
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    for bench in ["LU", "Ocean", "Water-Spatial"] {
        let profile = scaled_profile(&splash2::benchmark(bench).unwrap(), 0.05);
        let trace = generate_trace(Mesh::PAPER, &profile);
        for cfg in [Config::Optical4, Config::Electrical3] {
            let out = run_on(cfg, &trace);
            println!(
                "coherence {bench} {} -> {}",
                cfg.label(),
                out.result.completion_cycle
            );
        }
    }
    let mut w = CacheWorkload::write_sharing();
    w.accesses_per_core = 300;
    w.active_cores = 16;
    let (trace, report) = generate_cache_trace(Mesh::PAPER, &w);
    println!(
        "cachegen misses={} inv={}",
        report.l2_misses, report.invalidations
    );
    for cfg in [Config::Optical4, Config::Electrical3] {
        let out = run_on(cfg, &trace);
        println!(
            "cachegen {} -> {}",
            cfg.label(),
            out.result.completion_cycle
        );
    }
}
