//! Deterministic `std::thread` worker pool over the expanded job list.
//!
//! Determinism holds by construction, not by locking discipline:
//! * every job's seeds come from [`crate::spec::expand`] — a pure
//!   function of the spec, fixed before any thread starts;
//! * each job builds, drives, and drops its own network on its worker
//!   thread; no simulation state is shared;
//! * results land in a slot indexed by the job's matrix index, so the
//!   report order is the matrix order no matter which worker finished
//!   first.
//!
//! The only cross-thread state is the `AtomicUsize` job cursor and the
//! mutex-guarded result slots — neither influences any simulated bit.

use crate::journal::Journal;
use crate::report::{JobRecord, LabReport};
use crate::spec::{expand, JobSpec, LabSpec, Work};
use crate::supervise;
use phastlane_netsim::obs::json::JsonValue;
use phastlane_netsim::obs::EventSink;
use phastlane_netsim::watchdog::CancelToken;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Whether `b` is the next lockstep-batchable replica after `a`: the
/// same synthetic matrix cell, differing only in the replica number
/// (which [`expand`] varies fastest, so same-cell replicas are always
/// adjacent in the job list).
fn next_replica_of(a: &JobSpec, b: &JobSpec) -> bool {
    matches!(a.work, Work::Synthetic { .. })
        && a.net == b.net
        && a.work == b.work
        && a.intensity == b.intensity
        && b.replica == a.replica + 1
}

/// Chunks the job list into scheduler units: runs of up to `batch`
/// consecutive same-cell synthetic replicas (executed as one lockstep
/// batch), everything else as singleton groups. Replay jobs never
/// batch.
fn batch_groups(jobs: &[JobSpec], batch: usize) -> Vec<Range<usize>> {
    let batch = batch.max(1);
    let mut groups = Vec::new();
    let mut i = 0;
    while i < jobs.len() {
        let mut j = i + 1;
        while j < jobs.len() && j - i < batch && next_replica_of(&jobs[j - 1], &jobs[j]) {
            j += 1;
        }
        groups.push(i..j);
        i = j;
    }
    groups
}

/// Shared progress bookkeeping for one lab run: lifecycle events stream
/// to the sink as NDJSON while atomic tallies feed the rolling
/// throughput / ETA fields. Everything here is observation — no
/// simulated bit depends on it, so the canonical report is identical
/// with or without a sink attached.
struct Progress<'a> {
    sink: &'a EventSink,
    started: Instant,
    total_jobs: usize,
    finished: AtomicUsize,
    cycles_done: AtomicU64,
}

impl<'a> Progress<'a> {
    /// `resumed` jobs (and their cycles) count as already finished, so
    /// a resumed run's completion fraction and ETA start from where the
    /// interrupted run left off.
    fn new(sink: &'a EventSink, total_jobs: usize, resumed: &[JobRecord]) -> Self {
        Progress {
            sink,
            started: Instant::now(),
            total_jobs,
            finished: AtomicUsize::new(resumed.len()),
            cycles_done: AtomicU64::new(resumed.iter().map(|r| r.cycles).sum()),
        }
    }

    fn event(kind: &str, mut fields: Vec<(String, JsonValue)>) -> JsonValue {
        let mut pairs = vec![
            ("event".into(), JsonValue::Str(kind.into())),
            (
                "schema_version".into(),
                JsonValue::Uint(phastlane_netsim::obs::EVENT_SCHEMA_VERSION),
            ),
        ];
        pairs.append(&mut fields);
        JsonValue::Obj(pairs)
    }

    fn lab_started(&self, spec: &LabSpec, groups: usize, workers: usize) {
        self.sink.emit(&Self::event(
            "lab_started",
            vec![
                ("name".into(), JsonValue::Str(spec.name.clone())),
                ("jobs".into(), JsonValue::Uint(self.total_jobs as u64)),
                ("groups".into(), JsonValue::Uint(groups as u64)),
                ("workers".into(), JsonValue::Uint(workers as u64)),
            ],
        ));
    }

    fn job_started(&self, job: &JobSpec) {
        self.sink.emit(&Self::event(
            "job_started",
            vec![
                ("job".into(), JsonValue::Uint(job.index as u64)),
                ("net".into(), JsonValue::Str(job.net.clone())),
            ],
        ));
    }

    /// Emits `job_finished` with a rolling cycles/s over everything
    /// finished so far and a naive remaining-time estimate
    /// (`elapsed / finished * remaining`).
    fn job_finished(&self, rec: &JobRecord) {
        let cycles = self.cycles_done.fetch_add(rec.cycles, Ordering::Relaxed) + rec.cycles;
        let finished = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            cycles as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total_jobs.saturating_sub(finished);
        let eta = elapsed / finished as f64 * remaining as f64;
        self.sink.emit(&Self::event(
            "job_finished",
            vec![
                ("job".into(), JsonValue::Uint(rec.index as u64)),
                ("cycles".into(), JsonValue::Uint(rec.cycles)),
                ("wall_seconds".into(), JsonValue::Num(rec.wall_seconds)),
                ("finished".into(), JsonValue::Uint(finished as u64)),
                ("total".into(), JsonValue::Uint(self.total_jobs as u64)),
                ("cycles_per_sec".into(), JsonValue::Num(rate)),
                ("eta_seconds".into(), JsonValue::Num(eta)),
            ],
        ));
    }

    fn lab_finished(&self, ok: bool) {
        self.sink.emit(&Self::event(
            "lab_finished",
            vec![
                ("ok".into(), JsonValue::Bool(ok)),
                (
                    "wall_seconds".into(),
                    JsonValue::Num(self.started.elapsed().as_secs_f64()),
                ),
            ],
        ));
    }
}

/// Expands `spec` and runs every job on a pool of `workers` threads
/// (clamped to `1..=groups`), grouping same-cell synthetic replicas
/// into lockstep batches of up to `spec.batch` lanes
/// ([`runner::run_job_batch`]). A single-worker run — and any batch
/// size — produces a byte-identical canonical report.
///
/// # Errors
///
/// Errors if the spec expands to no jobs, or any job fails (unknown
/// network/benchmark — normally caught at parse time).
pub fn run_lab(spec: &LabSpec, workers: usize) -> Result<LabReport, String> {
    run_lab_with(spec, workers, None)
}

/// [`run_lab`] with an optional streaming progress sink: per-job
/// lifecycle events (`lab_started`, `job_started`, `job_finished` with
/// rolling cycles/s and ETA, `lab_finished`) are emitted as one JSON
/// object per line. The sink is backpressure-aware — a slow consumer
/// sheds events rather than stalling workers — and purely
/// observational: the canonical report is byte-identical with or
/// without it.
///
/// # Errors
///
/// Same conditions as [`run_lab`].
pub fn run_lab_with(
    spec: &LabSpec,
    workers: usize,
    progress: Option<&EventSink>,
) -> Result<LabReport, String> {
    run_lab_opts(
        spec,
        RunOptions {
            workers,
            progress,
            ..RunOptions::default()
        },
    )
}

/// Everything configurable about one lab execution beyond the spec
/// itself. All of it is harness plumbing — none of these fields can
/// change a canonical bit of the report.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Worker threads (clamped to `1..=groups`).
    pub workers: usize,
    /// Streaming NDJSON progress sink.
    pub progress: Option<&'a EventSink>,
    /// Open run journal: every finished job is appended, so a killed
    /// run can resume.
    pub journal: Option<&'a Journal>,
    /// Records recovered from a previous run's journal. Their slots are
    /// pre-filled and only the remaining jobs execute; the final report
    /// is byte-identical to an uninterrupted run.
    pub resumed: Vec<JobRecord>,
    /// Cooperative cancellation: when cancelled, in-flight jobs stop at
    /// the watchdog's next gate with a `cancelled` outcome.
    pub cancel: Option<&'a CancelToken>,
}

/// The full-control entry point: [`run_lab_with`] plus journaling,
/// resume, and cancellation. Every group runs supervised
/// ([`supervise::run_group_supervised`]): a panicking job records a
/// terminal outcome instead of killing the run.
///
/// # Errors
///
/// If the spec expands to no jobs, a resumed record's index is out of
/// range, or any job fails structurally (unknown network/benchmark).
pub fn run_lab_opts(spec: &LabSpec, opts: RunOptions<'_>) -> Result<LabReport, String> {
    let jobs = expand(spec);
    if jobs.is_empty() {
        return Err("spec expands to zero jobs".into());
    }
    let wall_start = Instant::now();

    let slots: Vec<Mutex<Option<Result<JobRecord, String>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    for rec in &opts.resumed {
        let slot = slots.get(rec.index).ok_or_else(|| {
            format!(
                "resumed record for job {} but the spec expands to only {} jobs",
                rec.index,
                jobs.len()
            )
        })?;
        *slot.lock().expect("slot lock") = Some(Ok(rec.clone()));
    }

    // Only the jobs without a resumed record still run. Grouping over
    // the remainder is safe: batching is bit-invisible by contract, so
    // it does not matter that resume may split groups differently.
    let remaining: Vec<JobSpec> = jobs
        .iter()
        .filter(|j| slots[j.index].lock().expect("slot lock").is_none())
        .cloned()
        .collect();
    let groups = batch_groups(&remaining, spec.batch as usize);
    let workers = opts.workers.max(1).min(groups.len().max(1));

    let progress = opts
        .progress
        .map(|sink| Progress::new(sink, jobs.len(), &opts.resumed));
    if let Some(p) = &progress {
        p.lab_started(spec, groups.len(), workers);
    }

    let cursor = AtomicUsize::new(0);
    let finished = |rec: &JobRecord| {
        if let Some(j) = opts.journal {
            j.append(rec);
        }
        if let Some(p) = &progress {
            p.job_finished(rec);
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let g = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(group) = groups.get(g) else { break };
                if let Some(p) = &progress {
                    for job in &remaining[group.clone()] {
                        p.job_started(job);
                    }
                }
                match supervise::run_group_supervised(spec, &remaining[group.clone()], opts.cancel)
                {
                    Ok(records) => {
                        for rec in records {
                            finished(&rec);
                            let i = rec.index;
                            *slots[i].lock().expect("slot lock") = Some(Ok(rec));
                        }
                    }
                    Err(e) => {
                        for job in &remaining[group.clone()] {
                            *slots[job.index].lock().expect("slot lock") = Some(Err(e.clone()));
                        }
                    }
                }
            });
        }
    });

    let collect = || -> Result<Vec<JobRecord>, String> {
        let mut records = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            let result = slot
                .into_inner()
                .expect("slot lock")
                .unwrap_or_else(|| Err(format!("job {i} never ran")));
            records.push(result.map_err(|e| format!("job {i}: {e}"))?);
        }
        Ok(records)
    };
    let records = collect();
    if let Some(p) = &progress {
        p.lab_finished(records.is_ok());
    }

    Ok(LabReport::new(
        spec.clone(),
        records?,
        workers,
        wall_start.elapsed().as_secs_f64(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LabSpec {
        LabSpec::parse(
            "name pool-test\nmesh 4x4\nseed 3\nnets optical4 electrical2\n\
             patterns uniform transpose\nrates 0.02 0.04\n\
             warmup 100\nmeasure 300\ndrain 1000\n",
        )
        .unwrap()
    }

    #[test]
    fn parallel_run_matches_serial_byte_for_byte() {
        let spec = small_spec();
        let serial = run_lab(&spec, 1).unwrap();
        let parallel = run_lab(&spec, 8).unwrap();
        assert_eq!(serial.jobs.len(), 8);
        assert_eq!(
            serial.canonical_json().to_string_pretty(),
            parallel.canonical_json().to_string_pretty()
        );
        assert_eq!(serial.workers, 1);
        // Worker count is clamped to the job count.
        assert_eq!(parallel.workers, 8);
    }

    #[test]
    fn workers_clamped_to_job_count() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        let report = run_lab(&spec, 64).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn zero_workers_means_one() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        assert_eq!(run_lab(&spec, 0).unwrap().workers, 1);
    }

    #[test]
    fn batch_groups_chunk_same_cell_replicas_only() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02 0.04\n\
             replicas 3\nbenchmarks FFT\nscale 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap();
        let jobs = expand(&spec);
        // 2 rate cells x 3 replicas synthetic + 3 replay replicas.
        assert_eq!(jobs.len(), 9);
        // Batch 1: every group is a singleton.
        assert_eq!(batch_groups(&jobs, 1).len(), 9);
        // Batch 2: each 3-replica cell splits 2+1; replay never batches.
        let groups = batch_groups(&jobs, 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![2, 1, 2, 1, 1, 1, 1]);
        // Batch 8: a whole cell is one group, capped at the cell edge.
        let groups = batch_groups(&jobs, 8);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1, 1, 1]);
        // Groups always tile the job list in order.
        let mut next = 0;
        for g in &groups {
            assert_eq!(g.start, next);
            next = g.end;
        }
        assert_eq!(next, jobs.len());
    }

    #[test]
    fn batched_run_matches_unbatched_byte_for_byte() {
        let mut spec = LabSpec::parse(
            "name batch-test\nmesh 4x4\nnets optical4\npatterns uniform\n\
             rates 0.02 0.05\nreplicas 4\nwarmup 100\nmeasure 300\ndrain 1000\n",
        )
        .unwrap();
        let unbatched = run_lab(&spec, 1).unwrap();
        spec.batch = 4;
        let batched = run_lab(&spec, 2).unwrap();
        assert_eq!(
            unbatched.canonical_json().to_string_pretty(),
            batched.canonical_json().to_string_pretty(),
            "lockstep batching must not change a single canonical bit"
        );
    }

    #[test]
    fn records_come_back_in_matrix_order() {
        let report = run_lab(&small_spec(), 4).unwrap();
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    /// Shared-buffer writer so the test can read back what streamed.
    struct Capture(std::sync::Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn progress_stream_is_valid_ndjson_and_leaves_the_report_untouched() {
        let spec = small_spec();
        let silent = run_lab(&spec, 2).unwrap();

        let buf = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = EventSink::new(Box::new(Capture(buf.clone())), EventSink::DEFAULT_CAPACITY);
        let streamed = run_lab_with(&spec, 2, Some(&sink)).unwrap();
        let tally = sink.finish();
        assert_eq!(tally.dropped, 0);
        assert_eq!(tally.write_errors, 0);

        assert_eq!(
            silent.canonical_json().to_string_pretty(),
            streamed.canonical_json().to_string_pretty(),
            "a progress sink must not change a single canonical bit"
        );

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // lab_started + 8 started + 8 finished + lab_finished.
        assert_eq!(lines.len(), 18);
        let mut kinds = Vec::new();
        for line in &lines {
            let v = phastlane_netsim::obs::json::parse(line).expect("each line is one JSON object");
            kinds.push(v.get("event").and_then(|e| e.as_str()).unwrap().to_string());
            assert_eq!(
                v.get("schema_version").and_then(|s| s.as_u64()),
                Some(phastlane_netsim::obs::EVENT_SCHEMA_VERSION),
                "every lifecycle event is schema-stamped: {line}"
            );
        }
        assert_eq!(kinds[0], "lab_started");
        assert_eq!(kinds[lines.len() - 1], "lab_finished");
        assert_eq!(kinds.iter().filter(|k| *k == "job_started").count(), 8);
        assert_eq!(kinds.iter().filter(|k| *k == "job_finished").count(), 8);
        // The last finished event reports full completion.
        let last_done = lines
            .iter()
            .map(|l| phastlane_netsim::obs::json::parse(l).unwrap())
            .rfind(|v| v.get("event").and_then(|e| e.as_str()) == Some("job_finished"))
            .unwrap();
        assert_eq!(last_done.get("finished").and_then(|f| f.as_u64()), Some(8));
        assert_eq!(last_done.get("total").and_then(|t| t.as_u64()), Some(8));
    }

    #[test]
    fn profiled_lab_keeps_canonical_identical_and_surfaces_phases_in_perf() {
        let mut spec = small_spec();
        let plain = run_lab(&spec, 2).unwrap();
        spec.profile = 16;
        let profiled = run_lab(&spec, 2).unwrap();
        assert_eq!(
            plain.canonical_json().to_string_pretty(),
            profiled.canonical_json().to_string_pretty(),
            "profiling is observation only"
        );
        assert!(plain.perf_json().get("phases").is_none());
        let merged = profiled
            .merged_phases()
            .expect("profiled jobs carry phases");
        assert!(merged.cycles > 0);
        assert!(merged.sampled_cycles > 0);
        let perf = profiled.perf_json();
        let phases = perf.get("phases").expect("perf carries merged breakdown");
        assert!(phases.get("cycles").and_then(|c| c.as_u64()).unwrap() > 0);
    }
}
