//! Per-phase profiling of the simulator hot loop.
//!
//! The per-cycle `step()` of both networks decomposes into the same six
//! logical phases — route, arbitrate, traverse, eject, fault, drain —
//! and the aggregate cycles/s number in [`PerfProfile`] cannot say which
//! of them a regression lives in. A [`PhaseProfiler`] instruments the
//! phase boundaries with two kinds of accumulators:
//!
//! * **work counters** — cheap deterministic per-phase unit counts
//!   (flights launched, wavefront steps walked, packets ejected, …)
//!   maintained every cycle;
//! * **batched wall time** — `Instant::now()` is expensive relative to a
//!   simulated cycle, so wall time is only sampled on every
//!   `sample_every`-th cycle: on a sampled cycle each phase boundary
//!   reads the clock once and attributes the delta to the phase that
//!   just ended. The per-phase *shares* converge to the true profile
//!   while the clock overhead is amortized `sample_every`-fold.
//!
//! Like [`Obs`](crate::obs::Obs), the handle is a single `Option` when
//! disabled: every `begin_cycle`/`mark`/`add_work` call is one
//! predictable branch and no clock is ever read.
//!
//! [`PerfProfile`]: crate::obs::PerfProfile

use crate::obs::json::JsonValue;
use std::time::Instant;

/// The six hot-loop phases shared by both network models. The mapping
/// from each network's concrete `step()` sections to these phases is
/// documented in `DESIGN.md` (telemetry pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Path setup: NIC-to-router transfers and local route computation.
    Route,
    /// Output/switch arbitration and launch decisions.
    Arbitrate,
    /// Link traversal: the optical wavefront walk, or electrical
    /// switch+link traversal.
    Traverse,
    /// Delivery at the destination (ejection and end-of-cycle
    /// accounting).
    Eject,
    /// Fault-plan bookkeeping: activating/clearing scheduled faults.
    Fault,
    /// Drop-network recovery and resource recycling: confirm/revert of
    /// launched packets, credit and VC lifecycle.
    Drain,
}

impl Phase {
    /// Number of phases (array dimension in [`PhaseBreakdown`]).
    pub const COUNT: usize = 6;

    /// Every phase, in stable export order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Route,
        Phase::Arbitrate,
        Phase::Traverse,
        Phase::Eject,
        Phase::Fault,
        Phase::Drain,
    ];

    /// Stable machine-readable name (used in JSON exports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Route => "route",
            Phase::Arbitrate => "arbitrate",
            Phase::Traverse => "traverse",
            Phase::Eject => "eject",
            Phase::Fault => "fault",
            Phase::Drain => "drain",
        }
    }

    /// Parses a [`name`](Self::name) back to a phase.
    pub fn from_name(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Index into the [`PhaseBreakdown`] arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated per-phase totals, detached from the profiler.
///
/// Plain copyable data: it crosses thread boundaries inside lab job
/// records and merges across jobs for the aggregate BENCH breakdown.
/// Wall-clock figures (`nanos`) belong to the perf layer and must never
/// enter a canonical report; the work counters are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Simulated cycles profiled.
    pub cycles: u64,
    /// Cycles on which wall time was sampled.
    pub sampled_cycles: u64,
    /// Sampled wall nanoseconds per phase, indexed by [`Phase::index`].
    pub nanos: [u64; Phase::COUNT],
    /// Deterministic work units per phase, indexed by [`Phase::index`].
    pub work: [u64; Phase::COUNT],
}

impl PhaseBreakdown {
    /// Total sampled wall nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// This phase's fraction of the total sampled wall time
    /// (0.0 when nothing was sampled).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos[phase.index()] as f64 / total as f64
        }
    }

    /// Folds another breakdown into this one (for aggregating per-job
    /// breakdowns into a lab-wide profile).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.cycles += other.cycles;
        self.sampled_cycles += other.sampled_cycles;
        for i in 0..Phase::COUNT {
            self.nanos[i] += other.nanos[i];
            self.work[i] += other.work[i];
        }
    }

    /// JSON object: `{"cycles", "sampled_cycles", "phases": [{"phase",
    /// "work", "sampled_nanos", "share"}, ...]}` in [`Phase::ALL`] order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("cycles".to_string(), JsonValue::Uint(self.cycles)),
            (
                "sampled_cycles".to_string(),
                JsonValue::Uint(self.sampled_cycles),
            ),
            (
                "phases".to_string(),
                JsonValue::Arr(
                    Phase::ALL
                        .into_iter()
                        .map(|p| {
                            JsonValue::Obj(vec![
                                ("phase".to_string(), JsonValue::Str(p.name().to_string())),
                                ("work".to_string(), JsonValue::Uint(self.work[p.index()])),
                                (
                                    "sampled_nanos".to_string(),
                                    JsonValue::Uint(self.nanos[p.index()]),
                                ),
                                ("share".to_string(), JsonValue::Num(self.share(p))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a [`to_json`](Self::to_json) object back (round-trip for
    /// BENCH tooling and tests).
    pub fn from_json(v: &JsonValue) -> Option<PhaseBreakdown> {
        let mut out = PhaseBreakdown {
            cycles: v.get("cycles")?.as_u64()?,
            sampled_cycles: v.get("sampled_cycles")?.as_u64()?,
            ..PhaseBreakdown::default()
        };
        for entry in v.get("phases")?.as_arr()? {
            let phase = Phase::from_name(entry.get("phase")?.as_str()?)?;
            out.work[phase.index()] = entry.get("work")?.as_u64()?;
            out.nanos[phase.index()] = entry.get("sampled_nanos")?.as_u64()?;
        }
        Some(out)
    }
}

/// Live profiler state (boxed behind the handle's `Option`).
#[derive(Debug)]
struct ProfilerState {
    sample_every: u32,
    /// Cycles until the next wall-sampled cycle.
    countdown: u32,
    /// Set at `begin_cycle` on sampled cycles; each `mark` advances it.
    anchor: Option<Instant>,
    breakdown: PhaseBreakdown,
}

/// The per-network phase-profiling handle.
///
/// Disabled ([`PhaseProfiler::off`], the default) this is a single
/// `None`; every call is one predictable branch and `Instant::now()` is
/// never reached.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    state: Option<Box<ProfilerState>>,
}

impl PhaseProfiler {
    /// Wall-sampling stride used when callers don't pick one: one clock
    /// read per phase per 32 cycles keeps overhead ≈1% on the measured
    /// hot loop while sampled shares converge within a few thousand
    /// cycles.
    pub const DEFAULT_SAMPLE_EVERY: u32 = 32;

    /// The disabled handle (default state of every network).
    pub const fn off() -> Self {
        PhaseProfiler { state: None }
    }

    /// An enabled profiler sampling wall time every `sample_every`
    /// cycles (clamped to ≥ 1; 1 = time every cycle).
    pub fn enabled(sample_every: u32) -> Self {
        PhaseProfiler {
            state: Some(Box::new(ProfilerState {
                sample_every: sample_every.max(1),
                countdown: 0,
                anchor: None,
                breakdown: PhaseBreakdown::default(),
            })),
        }
    }

    /// Whether profiling is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Opens a simulated cycle: counts it and decides whether this cycle
    /// is wall-sampled (anchoring the clock if so). Call once at the top
    /// of `step()`.
    #[inline]
    pub fn begin_cycle(&mut self) {
        if let Some(s) = &mut self.state {
            s.breakdown.cycles += 1;
            if s.countdown == 0 {
                s.countdown = s.sample_every - 1;
                s.breakdown.sampled_cycles += 1;
                s.anchor = Some(Instant::now());
            } else {
                s.countdown -= 1;
                s.anchor = None;
            }
        }
    }

    /// Closes a phase: on wall-sampled cycles, attributes the time since
    /// the previous mark (or `begin_cycle`) to `phase` and re-anchors.
    /// Call immediately **after** each phase's block; marking the same
    /// phase more than once per cycle accumulates.
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        if let Some(s) = &mut self.state {
            if let Some(anchor) = s.anchor {
                let now = Instant::now();
                s.breakdown.nanos[phase.index()] += now.duration_since(anchor).as_nanos() as u64;
                s.anchor = Some(now);
            }
        }
    }

    /// Adds `n` deterministic work units to `phase` (counted on every
    /// cycle, not only sampled ones).
    #[inline]
    pub fn add_work(&mut self, phase: Phase, n: u64) {
        if let Some(s) = &mut self.state {
            s.breakdown.work[phase.index()] += n;
        }
    }

    /// A copy of the totals so far (None when disabled).
    pub fn breakdown(&self) -> Option<PhaseBreakdown> {
        self.state.as_ref().map(|s| s.breakdown)
    }

    /// Detaches the accumulated totals, disabling the profiler.
    pub fn take_breakdown(&mut self) -> Option<PhaseBreakdown> {
        self.state.take().map(|s| s.breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = PhaseProfiler::off();
        assert!(!p.is_enabled());
        p.begin_cycle();
        p.mark(Phase::Route);
        p.add_work(Phase::Route, 10);
        assert!(p.breakdown().is_none());
        assert!(p.take_breakdown().is_none());
    }

    #[test]
    fn counts_cycles_work_and_samples() {
        let mut p = PhaseProfiler::enabled(4);
        for _ in 0..8 {
            p.begin_cycle();
            p.add_work(Phase::Arbitrate, 2);
            p.mark(Phase::Arbitrate);
            p.mark(Phase::Traverse);
        }
        let b = p.take_breakdown().expect("enabled");
        assert!(!p.is_enabled(), "take detaches");
        assert_eq!(b.cycles, 8);
        assert_eq!(b.sampled_cycles, 2, "every 4th cycle sampled");
        assert_eq!(b.work[Phase::Arbitrate.index()], 16, "work on every cycle");
        assert_eq!(b.work[Phase::Route.index()], 0);
    }

    #[test]
    fn sample_every_one_times_every_cycle() {
        let mut p = PhaseProfiler::enabled(1);
        for _ in 0..5 {
            p.begin_cycle();
            p.mark(Phase::Eject);
        }
        let b = p.breakdown().unwrap();
        assert_eq!(b.sampled_cycles, 5);
    }

    #[test]
    fn shares_sum_to_one_when_sampled() {
        let mut b = PhaseBreakdown::default();
        b.nanos[Phase::Route.index()] = 30;
        b.nanos[Phase::Traverse.index()] = 70;
        let total: f64 = Phase::ALL.iter().map(|&p| b.share(p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((b.share(Phase::Traverse) - 0.7).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().share(Phase::Route), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PhaseBreakdown {
            cycles: 10,
            sampled_cycles: 2,
            ..PhaseBreakdown::default()
        };
        a.nanos[0] = 5;
        a.work[1] = 7;
        let mut b = a;
        b.cycles = 4;
        a.merge(&b);
        assert_eq!(a.cycles, 14);
        assert_eq!(a.sampled_cycles, 4);
        assert_eq!(a.nanos[0], 10);
        assert_eq!(a.work[1], 14);
    }

    #[test]
    fn json_round_trip() {
        let mut b = PhaseBreakdown {
            cycles: 123,
            sampled_cycles: 4,
            ..PhaseBreakdown::default()
        };
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            b.nanos[p.index()] = (i as u64 + 1) * 100;
            b.work[p.index()] = (i as u64 + 1) * 3;
        }
        let text = b.to_json().to_string_compact();
        let parsed = json::parse(&text).expect("valid json");
        let back = PhaseBreakdown::from_json(&parsed).expect("round-trips");
        assert_eq!(back, b);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("warp"), None);
    }
}
