//! Figure 5: component delays of the critical paths (PP, PB, PA, PIA)
//! through the Phastlane router under different scaling assumptions and
//! WDM degrees.

use phastlane_bench::print_row;
use phastlane_photonics::delay::{RouterDesign, RouterOp};
use phastlane_photonics::scaling::Scaling;
use phastlane_photonics::units::TechNode;
use phastlane_photonics::wdm::WdmConfig;

fn main() {
    println!("Figure 5: critical-path component delays (ps) at 16nm\n");
    let widths = [12, 6, 5, 9, 9, 9, 9, 8];
    print_row(
        &[
            "scaling".into(),
            "wdm".into(),
            "op".into(),
            "rx-ctl".into(),
            "drive".into(),
            "traverse".into(),
            "rx-pkt".into(),
            "total".into(),
        ],
        &widths,
    );
    for scaling in Scaling::ALL {
        for wdm in WdmConfig::SWEEP {
            let design = RouterDesign {
                wdm,
                scaling,
                node: TechNode::NM16,
            };
            for op in RouterOp::ALL {
                let bd = design.critical_path(op);
                print_row(
                    &[
                        scaling.to_string(),
                        wdm.payload_wdm.to_string(),
                        op.to_string(),
                        format!("{:.2}", bd.receive_control.value()),
                        format!("{:.2}", bd.drive_resonators.value()),
                        format!("{:.2}", bd.traverse.value()),
                        format!("{:.2}", bd.receive_packet.value()),
                        format!("{:.2}", bd.total().value()),
                    ],
                    &widths,
                );
            }
        }
    }
    println!("\npaper observations: wavelengths have little impact; resonator");
    println!("driving dominates; PP > PB > PA.");
}
