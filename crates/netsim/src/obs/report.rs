//! Structured run reports and simulator performance profiles.
//!
//! A [`RunReport`] is the machine-readable counterpart of the human
//! tables the CLI prints: network identity, geometry, traffic counters,
//! latency summary, energy breakdown, and a [`PerfProfile`] of the
//! simulator itself (cycles simulated per wall-clock second), exportable
//! as JSON or flat `key,value` CSV.

use crate::obs::json::JsonValue;
use crate::obs::phase::PhaseBreakdown;
use crate::stats::{EnergyReport, LatencyStats, NetworkStats};
use std::time::Duration;

/// Simulator throughput: how fast the *simulation* ran, independent of
/// what it simulated. Used to police the observability overhead budget
/// (tracing disabled must stay within a few percent of the untraced
/// baseline). When the run had a
/// [`PhaseProfiler`](crate::obs::PhaseProfiler) attached, the per-phase
/// breakdown rides along.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfProfile {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Wall-clock time the run took, in seconds.
    pub wall_seconds: f64,
    /// Per-phase breakdown, when profiling was enabled.
    pub phases: Option<PhaseBreakdown>,
}

impl PerfProfile {
    /// Builds a profile from a cycle count and elapsed wall time.
    pub fn new(cycles: u64, elapsed: Duration) -> Self {
        PerfProfile {
            cycles,
            wall_seconds: elapsed.as_secs_f64(),
            phases: None,
        }
    }

    /// Attaches a per-phase breakdown.
    #[must_use]
    pub fn with_phases(mut self, phases: Option<PhaseBreakdown>) -> Self {
        self.phases = phases;
        self
    }

    /// Simulated cycles per wall-clock second (0 for an instant run).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Structured JSON form (the `"phases"` key appears only when a
    /// breakdown was captured).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("cycles".into(), JsonValue::Uint(self.cycles)),
            ("wall_seconds".into(), JsonValue::Num(self.wall_seconds)),
            (
                "cycles_per_sec".into(),
                JsonValue::Num(self.cycles_per_sec()),
            ),
        ];
        if let Some(phases) = &self.phases {
            pairs.push(("phases".into(), phases.to_json()));
        }
        JsonValue::Obj(pairs)
    }
}

/// The machine-readable summary of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Network implementation name (e.g. `"phastlane"`, `"electrical"`).
    pub network: String,
    /// Mesh width.
    pub width: u16,
    /// Mesh height.
    pub height: u16,
    /// RNG seed the run used, when the workload was seeded.
    pub seed: Option<u64>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Traffic and latency counters.
    pub stats: NetworkStats,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Simulator performance profile.
    pub perf: PerfProfile,
    /// Workload-specific extras (offered rate, pattern name, ...),
    /// appended verbatim to the JSON object and CSV rows.
    pub extra: Vec<(String, JsonValue)>,
}

impl RunReport {
    fn latency_json(latency: &LatencyStats) -> JsonValue {
        let opt_u = |v: Option<u64>| v.map(JsonValue::Uint).unwrap_or(JsonValue::Null);
        let opt_f = |v: Option<f64>| v.map(JsonValue::Num).unwrap_or(JsonValue::Null);
        let pct = |p: f64| {
            (latency.count() > 0)
                .then(|| latency.percentile(p))
                .flatten()
        };
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::Uint(latency.count())),
            ("mean".into(), opt_f(latency.mean())),
            ("min".into(), opt_u(latency.min())),
            ("max".into(), JsonValue::Uint(latency.max())),
            ("p50".into(), opt_u(pct(50.0))),
            ("p99".into(), opt_u(pct(99.0))),
        ])
    }

    /// Structured JSON form (insertion-ordered, deterministic apart from
    /// the wall-clock fields inside `perf`).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("network".into(), JsonValue::Str(self.network.clone())),
            (
                "mesh".into(),
                JsonValue::Obj(vec![
                    ("width".into(), JsonValue::Uint(u64::from(self.width))),
                    ("height".into(), JsonValue::Uint(u64::from(self.height))),
                ]),
            ),
            (
                "seed".into(),
                self.seed.map(JsonValue::Uint).unwrap_or(JsonValue::Null),
            ),
            ("cycles".into(), JsonValue::Uint(self.cycles)),
            ("injected".into(), JsonValue::Uint(self.stats.injected)),
            ("delivered".into(), JsonValue::Uint(self.stats.delivered)),
            ("dropped".into(), JsonValue::Uint(self.stats.dropped)),
            (
                "retransmitted".into(),
                JsonValue::Uint(self.stats.retransmitted),
            ),
            (
                "undeliverable".into(),
                JsonValue::Uint(self.stats.undeliverable),
            ),
            (
                "retry_exhausted".into(),
                JsonValue::Uint(self.stats.retry_exhausted),
            ),
            ("rerouted".into(), JsonValue::Uint(self.stats.rerouted)),
            (
                "ecc_corrected".into(),
                JsonValue::Uint(self.stats.ecc_corrected),
            ),
            (
                "ecc_uncorrectable".into(),
                JsonValue::Uint(self.stats.ecc_uncorrectable),
            ),
            ("latency".into(), Self::latency_json(&self.stats.latency)),
            (
                "energy_pj".into(),
                JsonValue::Obj(vec![
                    ("dynamic".into(), JsonValue::Num(self.energy.dynamic_pj)),
                    ("leakage".into(), JsonValue::Num(self.energy.leakage_pj)),
                    ("laser".into(), JsonValue::Num(self.energy.laser_pj)),
                    ("link".into(), JsonValue::Num(self.energy.link_pj)),
                    ("total".into(), JsonValue::Num(self.energy.total_pj())),
                ]),
            ),
            ("perf".into(), self.perf.to_json()),
        ];
        pairs.extend(self.extra.iter().cloned());
        JsonValue::Obj(pairs)
    }

    /// Flat `key,value` CSV (nested objects flattened with `.`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("key,value\n");
        flatten_csv("", &self.to_json(), &mut out);
        out
    }
}

fn flatten_csv(prefix: &str, value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Obj(pairs) => {
            for (k, v) in pairs {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_csv(&key, v, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_csv(&format!("{prefix}.{i}"), v, out);
            }
        }
        scalar => {
            out.push_str(prefix);
            out.push(',');
            let text = scalar.to_string_compact();
            // Strip the JSON string quotes for CSV readability.
            out.push_str(text.trim_matches('"'));
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut stats = NetworkStats {
            injected: 100,
            delivered: 95,
            dropped: 3,
            retransmitted: 3,
            ..Default::default()
        };
        for v in [5, 9, 12, 30] {
            stats.latency.record(v);
        }
        RunReport {
            network: "phastlane".into(),
            width: 8,
            height: 8,
            seed: Some(7),
            cycles: 10_000,
            stats,
            energy: EnergyReport {
                dynamic_pj: 10.0,
                leakage_pj: 20.0,
                laser_pj: 5.0,
                link_pj: 0.0,
            },
            perf: PerfProfile {
                cycles: 10_000,
                wall_seconds: 0.5,
                phases: None,
            },
            extra: vec![("pattern".into(), JsonValue::Str("uniform".into()))],
        }
    }

    #[test]
    fn perf_rates() {
        let p = PerfProfile {
            cycles: 4_000,
            wall_seconds: 2.0,
            phases: None,
        };
        assert_eq!(p.cycles_per_sec(), 2_000.0);
        assert_eq!(PerfProfile::default().cycles_per_sec(), 0.0);
        let j = p.to_json();
        assert_eq!(j.get("cycles").unwrap().as_u64(), Some(4_000));
        assert_eq!(j.get("cycles_per_sec").unwrap().as_f64(), Some(2_000.0));
        assert!(j.get("phases").is_none(), "no breakdown unless profiled");
    }

    #[test]
    fn perf_profile_carries_a_phase_breakdown() {
        let breakdown = PhaseBreakdown {
            cycles: 500,
            sampled_cycles: 16,
            ..PhaseBreakdown::default()
        };
        let p = PerfProfile::new(500, Duration::from_millis(10)).with_phases(Some(breakdown));
        let j = p.to_json();
        let phases = j.get("phases").expect("breakdown serialized");
        assert_eq!(phases.get("cycles").unwrap().as_u64(), Some(500));
        assert_eq!(
            phases.get("phases").unwrap().as_arr().unwrap().len(),
            crate::obs::phase::Phase::COUNT
        );
        // The breakdown also survives a full report round-trip.
        let mut r = sample_report();
        r.perf.phases = Some(breakdown);
        let text = r.to_json().to_string_pretty();
        let parsed = crate::obs::json::parse(&text).unwrap();
        let back = PhaseBreakdown::from_json(parsed.get("perf").unwrap().get("phases").unwrap())
            .expect("parses back");
        assert_eq!(back, breakdown);
    }

    #[test]
    fn report_json_structure() {
        let j = sample_report().to_json();
        assert_eq!(j.get("network").unwrap().as_str(), Some("phastlane"));
        assert_eq!(
            j.get("mesh").unwrap().get("width").unwrap().as_u64(),
            Some(8)
        );
        assert_eq!(j.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(
            j.get("latency").unwrap().get("count").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            j.get("energy_pj").unwrap().get("total").unwrap().as_f64(),
            Some(35.0)
        );
        assert_eq!(j.get("pattern").unwrap().as_str(), Some("uniform"));
        // Roundtrips through the parser.
        let text = j.to_string_pretty();
        assert_eq!(crate::obs::json::parse(&text).unwrap(), j);
    }

    #[test]
    fn report_csv_flattens() {
        let csv = sample_report().to_csv();
        assert!(csv.starts_with("key,value\n"));
        assert!(csv.contains("mesh.width,8\n"), "{csv}");
        assert!(csv.contains("energy_pj.total,35.0\n"), "{csv}");
        assert!(csv.contains("pattern,uniform\n"), "{csv}");
    }

    #[test]
    fn empty_latency_serializes_as_null() {
        let mut r = sample_report();
        r.stats.latency = LatencyStats::new();
        let j = r.to_json();
        assert_eq!(
            j.get("latency").unwrap().get("mean"),
            Some(&JsonValue::Null)
        );
        assert_eq!(j.get("latency").unwrap().get("p99"), Some(&JsonValue::Null));
    }
}
