//! Golden regression tests: exact completion cycles for small,
//! deterministic workloads on both networks.
//!
//! These pin the end-to-end behaviour of the whole stack (trace
//! generation, routing, arbitration, drops, retransmission, credits).
//! If a change alters any of these numbers, that is not necessarily a
//! bug — but it *is* a behaviour change that must be understood and,
//! if intended, re-recorded here (and the EXPERIMENTS.md results
//! regenerated, since absolute figures shift with them).

use phastlane_repro::electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_repro::netsim::harness::{run_trace, TraceOptions};
use phastlane_repro::netsim::{Mesh, Network};
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::cachegen::{generate_cache_trace, CacheWorkload};
use phastlane_repro::traffic::coherence::generate_trace;
use phastlane_repro::traffic::splash2;

fn scaled(name: &str, scale: f64) -> phastlane_repro::netsim::harness::Trace {
    let mut profile = splash2::benchmark(name).expect("known benchmark");
    profile.misses_per_core = ((profile.misses_per_core as f64 * scale).round() as usize).max(2);
    generate_trace(Mesh::PAPER, &profile)
}

fn optical_completion(trace: &phastlane_repro::netsim::harness::Trace) -> u64 {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let r = run_trace(&mut net, trace, TraceOptions::default());
    assert!(!r.timed_out);
    r.completion_cycle
}

fn electrical_completion(trace: &phastlane_repro::netsim::harness::Trace) -> u64 {
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let r = run_trace(&mut net, trace, TraceOptions::default());
    assert!(!r.timed_out);
    r.completion_cycle
}

#[test]
fn golden_lu() {
    let trace = scaled("LU", 0.05);
    assert_eq!(optical_completion(&trace), 928);
    assert_eq!(electrical_completion(&trace), 1355);
}

#[test]
fn golden_ocean() {
    let trace = scaled("Ocean", 0.05);
    assert_eq!(optical_completion(&trace), 871);
    assert_eq!(electrical_completion(&trace), 1042);
}

#[test]
fn golden_water_spatial() {
    let trace = scaled("Water-Spatial", 0.05);
    assert_eq!(optical_completion(&trace), 416);
    assert_eq!(electrical_completion(&trace), 638);
}

#[test]
fn golden_cache_accurate() {
    let mut w = CacheWorkload::write_sharing();
    w.accesses_per_core = 300;
    w.active_cores = 16;
    let (trace, report) = generate_cache_trace(Mesh::PAPER, &w);
    assert_eq!(report.l2_misses, 2519);
    assert_eq!(report.invalidations, 86);
    assert_eq!(optical_completion(&trace), 7890);
    assert_eq!(electrical_completion(&trace), 12048);
}

#[test]
fn golden_single_packet_latencies() {
    // The microscopic invariants behind the figures.
    use phastlane_repro::netsim::{NewPacket, NodeId};
    let run = |mut net: Box<dyn Network>| {
        net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
            .unwrap();
        while net.in_flight() > 0 {
            net.step();
        }
        net.drain_deliveries()[0].latency()
    };
    assert_eq!(
        run(Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical4()))),
        4
    );
    assert_eq!(
        run(Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical8()))),
        2
    );
    assert_eq!(
        run(Box::new(ElectricalNetwork::new(
            ElectricalConfig::electrical3()
        ))),
        14 * 4 + 1
    );
    assert_eq!(
        run(Box::new(ElectricalNetwork::new(
            ElectricalConfig::electrical2()
        ))),
        14 * 3 + 1
    );
}
