//! Router and processor-die area analysis (§3.3, Figure 8).
//!
//! The optical die must not exceed the processor die: each optical router's
//! footprint must fit within its node's share of the processor die. The
//! number of wavelengths trades two area components against each other:
//!
//! * the internal **turn region** shrinks as WDM degree grows (fewer
//!   waveguides, and the turn-resonator matrix scales with the square of
//!   the waveguide count);
//! * the **ports** grow as WDM degree grows (one resonator/receiver pair
//!   per wavelength must be attached along each waveguide).
//!
//! The paper finds the sweet spot at 64 wavelengths for its packet size,
//! exactly matching the single-core node area of ~3.5 mm².

use crate::units::SquareMillimeters;
use crate::wdm::WdmConfig;

/// Processor-die area per node, following the Kumar et al. methodology the
/// paper adopts: one core with 64 KB L1s, a 2 MB L2, and a memory
/// controller.
pub const NODE_AREA_1CORE: SquareMillimeters = SquareMillimeters(3.5);
/// Two cores sharing an L2.
pub const NODE_AREA_2CORE: SquareMillimeters = SquareMillimeters(4.5);
/// Four cores sharing an L2.
pub const NODE_AREA_4CORE: SquareMillimeters = SquareMillimeters(6.5);

/// Area coefficient of the internal turn region, per waveguide²
/// (*calibrated*).
pub const TURN_REGION_MM2_PER_WG2: f64 = 0.001786;
/// Area coefficient of the four ports, per (wavelength x waveguide)
/// (*calibrated*).
pub const PORT_MM2_PER_LAMBDA_WG: f64 = 0.003571;
/// Fixed area: local receivers, drop-network resonators, inter-router
/// waveguide routing (*calibrated*).
pub const FIXED_AREA: SquareMillimeters = SquareMillimeters(0.5);

/// Area breakdown of one optical router (one stacked bar of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterArea {
    /// The internal region of turn resonators and crossing waveguides.
    pub turn_region: SquareMillimeters,
    /// The four input/output ports lined with resonator/receiver pairs.
    pub ports: SquareMillimeters,
    /// Fixed overhead (local port, drop network, link routing).
    pub fixed: SquareMillimeters,
}

impl RouterArea {
    /// Computes the area breakdown for a WDM configuration.
    pub fn for_wdm(wdm: WdmConfig) -> Self {
        let w = f64::from(wdm.total_waveguides());
        let lambda = f64::from(wdm.payload_wdm);
        RouterArea {
            turn_region: SquareMillimeters(TURN_REGION_MM2_PER_WG2 * w * w),
            ports: SquareMillimeters(PORT_MM2_PER_LAMBDA_WG * lambda * w),
            fixed: FIXED_AREA,
        }
    }

    /// Total router area.
    pub fn total(&self) -> SquareMillimeters {
        self.turn_region + self.ports + self.fixed
    }

    /// Whether this router fits within a node of the given area.
    pub fn fits(&self, node_area: SquareMillimeters) -> bool {
        self.total().value() <= node_area.value() + 1e-9
    }
}

/// Finds the WDM degree in `candidates` with the smallest total router
/// area (the Figure 8 sweet spot). Returns `None` for an empty slice.
pub fn area_sweet_spot(candidates: &[WdmConfig]) -> Option<WdmConfig> {
    candidates.iter().copied().min_by(|a, b| {
        RouterArea::for_wdm(*a)
            .total()
            .value()
            .total_cmp(&RouterArea::for_wdm(*b).total().value())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweet_spot_is_64_wavelengths() {
        // Paper: "The area sweet spot is realized with 64 wavelengths for
        // our packet size."
        let best = area_sweet_spot(&WdmConfig::SWEEP).unwrap();
        assert_eq!(best.payload_wdm, 64);
    }

    #[test]
    fn wdm64_matches_single_core_node() {
        // Paper: "For a single core with private L1 and L2 caches, we
        // estimate that 64 wavelengths are necessary to match the area of
        // the processor die."
        let a = RouterArea::for_wdm(WdmConfig::PAPER);
        assert!(a.fits(NODE_AREA_1CORE), "total {}", a.total());
        assert!((a.total().value() - 3.5).abs() < 0.15);
    }

    #[test]
    fn wdm32_and_128_need_larger_nodes() {
        // Paper: "With larger dual and quad core nodes, 32 or 128
        // wavelengths will also meet die size constraints."
        for wdm in [WdmConfig::new(32), WdmConfig::new(128)] {
            let a = RouterArea::for_wdm(wdm);
            assert!(
                !a.fits(NODE_AREA_1CORE),
                "{} should exceed 1-core node",
                wdm.payload_wdm
            );
            assert!(a.fits(NODE_AREA_2CORE) || a.fits(NODE_AREA_4CORE));
        }
    }

    #[test]
    fn turn_region_shrinks_with_wavelengths() {
        // "The total number of waveguides and turn resonators decreases
        // linearly as the number of wavelengths increases."
        let t32 = RouterArea::for_wdm(WdmConfig::new(32)).turn_region;
        let t64 = RouterArea::for_wdm(WdmConfig::new(64)).turn_region;
        let t128 = RouterArea::for_wdm(WdmConfig::new(128)).turn_region;
        assert!(t32 > t64 && t64 > t128);
    }

    #[test]
    fn ports_grow_with_wavelengths() {
        // "The length of the input ports increases linearly since more
        // resonator/receiver pairs must be attached to the same waveguide."
        let p32 = RouterArea::for_wdm(WdmConfig::new(32)).ports;
        let p64 = RouterArea::for_wdm(WdmConfig::new(64)).ports;
        let p128 = RouterArea::for_wdm(WdmConfig::new(128)).ports;
        assert!(p32 < p64 && p64 < p128);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = RouterArea::for_wdm(WdmConfig::PAPER);
        let sum = a.turn_region + a.ports + a.fixed;
        assert!((sum.value() - a.total().value()).abs() < 1e-12);
    }

    #[test]
    fn sweet_spot_empty_input() {
        assert_eq!(area_sweet_spot(&[]), None);
    }
}
