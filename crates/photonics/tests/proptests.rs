//! Property tests of the §3 analytic models.
//!
//! The parameter domains here are small and finite, so the properties
//! are checked **exhaustively** over their whole domain — strictly
//! stronger than random sampling, and it keeps the workspace free of
//! external dev-dependencies.

use phastlane_photonics::area::RouterArea;
use phastlane_photonics::delay::{RouterDesign, RouterOp, CLOCK_PERIOD};
use phastlane_photonics::power::PowerPoint;
use phastlane_photonics::scaling::{chain_delays, Scaling};
use phastlane_photonics::units::TechNode;
use phastlane_photonics::wdm::WdmConfig;

/// Powers of two from 8 to 256 wavelengths.
fn all_wdm() -> impl Iterator<Item = WdmConfig> {
    (3u32..9).map(|p| WdmConfig::new(1 << p))
}

const SCALINGS: [Scaling; 3] = [Scaling::Optimistic, Scaling::Average, Scaling::Pessimistic];

/// Peak optical power is monotone: more hops or worse crossings never
/// reduce it.
#[test]
fn power_monotone() {
    for wdm in all_wdm() {
        for hops in 1u32..10 {
            for eff_pct in 950u32..999 {
                let eff = eff_pct as f64 / 1000.0;
                let p = PowerPoint::new(wdm, hops, eff).peak_optical_power().value();
                let p_more_hops = PowerPoint::new(wdm, hops + 1, eff)
                    .peak_optical_power()
                    .value();
                let p_worse_eff = PowerPoint::new(wdm, hops, eff - 0.005)
                    .peak_optical_power()
                    .value();
                assert!(p_more_hops > p, "wdm={wdm:?} hops={hops} eff={eff}");
                assert!(p_worse_eff > p, "wdm={wdm:?} hops={hops} eff={eff}");
                assert!(
                    p.is_finite() && p > 0.0,
                    "wdm={wdm:?} hops={hops} eff={eff}"
                );
            }
        }
    }
}

/// The transmission delay grows strictly with hop count and the
/// max-hops solver is exactly the crossover point.
#[test]
fn max_hops_is_the_crossover() {
    for wdm in all_wdm() {
        for scaling in SCALINGS {
            let d = RouterDesign {
                wdm,
                scaling,
                node: TechNode::NM16,
            };
            let h = d.max_hops_per_cycle();
            assert!(h >= 1, "at least one hop must fit at 4 GHz");
            assert!(d.transmission_delay(h) <= CLOCK_PERIOD);
            assert!(d.transmission_delay(h + 1) > CLOCK_PERIOD);
            for hops in 1..h {
                assert!(d.transmission_delay(hops) < d.transmission_delay(hops + 1));
            }
        }
    }
}

/// Critical paths order PP > PB > PA for every WDM degree and
/// scenario (the Figure 5 observation is not specific to the sweep).
#[test]
fn critical_path_order_everywhere() {
    for wdm in all_wdm() {
        for scaling in SCALINGS {
            let d = RouterDesign {
                wdm,
                scaling,
                node: TechNode::NM16,
            };
            let pp = d.critical_path(RouterOp::PacketPass).total();
            let pb = d.critical_path(RouterOp::PacketBlock).total();
            let pa = d.critical_path(RouterOp::PacketAccept).total();
            assert!(pp.value() > 0.0);
            assert!(pb > pa);
            // PP > PB needs the traverse to outweigh a receive, which holds
            // for the calibrated sweep; for arbitrary WDM we only require
            // PP to be the largest or within rounding of PB.
            assert!(pp.value() >= pb.value() * 0.95);
        }
    }
}

/// Scaling fits are positive everywhere in range, and in the
/// extrapolation region (below the measured 22 nm anchor) the
/// pessimistic fit is strictly the slowest — that is what makes it
/// pessimistic.
#[test]
fn scaling_scenarios_ordered() {
    for nm in 16u32..46 {
        let node = TechNode(nm);
        let o = chain_delays(Scaling::Optimistic, node);
        let a = chain_delays(Scaling::Average, node);
        let p = chain_delays(Scaling::Pessimistic, node);
        for d in [o, a, p] {
            assert!(d.transmit.value() > 0.0, "nm={nm}");
            assert!(d.receive.value() > 0.0, "nm={nm}");
        }
        if nm < 22 {
            assert!(o.transmit < a.transmit, "nm={nm}");
            assert!(a.transmit < p.transmit, "nm={nm}");
            assert!(o.receive < p.receive, "nm={nm}");
        }
    }
}

/// Router area components are positive and total is their sum.
#[test]
fn area_components_sum() {
    for wdm in all_wdm() {
        let a = RouterArea::for_wdm(wdm);
        assert!(a.turn_region.value() > 0.0);
        assert!(a.ports.value() > 0.0);
        assert!(a.fixed.value() > 0.0);
        let sum = a.turn_region.value() + a.ports.value() + a.fixed.value();
        assert!((sum - a.total().value()).abs() < 1e-12);
    }
}

/// WDM packaging conserves bits: waveguides * degree covers the
/// payload with less than one waveguide of slack.
#[test]
fn wdm_packaging_conserves_bits() {
    for wdm in all_wdm() {
        let capacity = wdm.payload_waveguides() * wdm.payload_wdm;
        assert!(capacity >= 640);
        assert!(capacity - 640 < wdm.payload_wdm);
    }
}
