//! Walk the paper's §3 design-space exploration: scaling fits, critical
//! paths, hops per cycle, peak optical power, and router area — the
//! analyses that picked 64-way WDM and a four-hop network.
//!
//! Run with: `cargo run --release --example design_space`

use phastlane_repro::photonics::area::{area_sweet_spot, RouterArea};
use phastlane_repro::photonics::delay::{RouterDesign, RouterOp};
use phastlane_repro::photonics::power::PowerPoint;
use phastlane_repro::photonics::scaling::{chain_delays, Scaling};
use phastlane_repro::photonics::units::TechNode;
use phastlane_repro::photonics::wdm::WdmConfig;

fn main() {
    println!("== Scaling scenarios at 16nm (Figure 4) ==");
    for s in Scaling::ALL {
        let d = chain_delays(s, TechNode::NM16);
        println!(
            "  {s:12} transmit {:6.2}  receive {:5.2}",
            d.transmit, d.receive
        );
    }

    println!("\n== Critical paths and hops per cycle (Figures 5, 6) ==");
    for s in Scaling::ALL {
        let design = RouterDesign::paper(s);
        let pp = design.critical_path(RouterOp::PacketPass).total();
        println!(
            "  {s:12} packet-pass {:6.2}  -> {} hops per 4GHz cycle",
            pp,
            design.max_hops_per_cycle()
        );
    }

    println!("\n== Peak optical power (Figure 7) ==");
    for (wdm, hops) in [(64, 4), (64, 5), (128, 4), (128, 5), (32, 4)] {
        let p = PowerPoint::new(WdmConfig::new(wdm), hops, 0.98);
        println!(
            "  {wdm:4}-way WDM, {hops} hops @ 98% crossings: {:6.1} W peak",
            p.peak_optical_power().as_watts()
        );
    }

    println!("\n== Router area (Figure 8) ==");
    for wdm in WdmConfig::SWEEP {
        let a = RouterArea::for_wdm(wdm);
        println!(
            "  {:4}-way WDM: {:5.2} mm^2 total",
            wdm.payload_wdm,
            a.total().value()
        );
    }
    let best = area_sweet_spot(&WdmConfig::SWEEP).expect("non-empty");
    println!("  sweet spot: {}-way WDM", best.payload_wdm);

    println!("\nconclusion (paper \u{00a7}3.3): 64-way WDM payload in 10 waveguides,");
    println!("2 control waveguides at 35-way WDM, 4-hop network at 32 W peak.");
}
