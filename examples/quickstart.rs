//! Quickstart: build a Phastlane network, send a few packets, and watch
//! them arrive in a single cycle each.
//!
//! Run with: `cargo run --release --example quickstart`

use phastlane_repro::netsim::packet::PacketKind;
use phastlane_repro::netsim::{Network, NewPacket, NodeId};
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};

fn main() {
    // The paper's baseline configuration: an 8x8 optical crossbar mesh,
    // four hops per 4 GHz cycle, ten electrical buffer entries per port.
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    println!("network: {}", net.name());
    println!("mesh:    {}x{}", net.mesh().width(), net.mesh().height());

    // A short unicast: node 0 to node 3 — three hops, one cycle.
    net.inject(NewPacket::unicast(NodeId(0), NodeId(3)))
        .expect("NIC has room");

    // A corner-to-corner unicast: 14 hops, so the packet is pipelined
    // through interim nodes over four cycles (ceil(14 / 4)).
    net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
        .expect("NIC has room");

    // A snoopy coherence broadcast: up to 16 column-multicast messages.
    net.inject(NewPacket::broadcast(NodeId(27), PacketKind::ReadRequest))
        .expect("NIC has room");

    // Run until everything is delivered.
    while net.in_flight() > 0 {
        net.step();
    }

    let mut deliveries = net.drain_deliveries();
    deliveries.sort_by_key(|d| (d.packet, d.dest));
    println!("\ndeliveries: {}", deliveries.len());
    for d in deliveries.iter().take(5) {
        println!(
            "  {} {} -> {} in {} cycle(s)",
            d.packet,
            d.src,
            d.dest,
            d.latency()
        );
    }
    println!("  ... ({} more)", deliveries.len().saturating_sub(5));

    let stats = net.stats();
    println!("\ninjected packets:   {}", stats.injected);
    println!("deliveries:         {}", stats.delivered);
    println!("dropped (retried):  {}", stats.dropped);
    println!(
        "mean latency:       {:.2} cycles",
        stats.latency.mean().unwrap_or(0.0)
    );

    let e = net.energy();
    println!(
        "energy: {:.1} pJ dynamic, {:.1} pJ laser, {:.1} pJ leakage",
        e.dynamic_pj, e.laser_pj, e.leakage_pj
    );
}
