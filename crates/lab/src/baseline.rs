//! The baseline store and the regression gate.
//!
//! `lab record` serializes a [`LabReport`] as `{name, canonical, perf}`
//! into `results/baselines/<name>.json`. `lab compare` re-runs the spec
//! and calls [`compare`]: a structural mismatch (different spec, missing
//! jobs) is an **error** — the baseline is stale and must be re-recorded
//! — while metric movements beyond the [`Tolerances`] are reported as
//! **regressions** (the CLI exits non-zero on any).
//!
//! Tolerance asymmetry is deliberate: mean/p99 latency and the
//! saturation verdict are deterministic functions of the spec, so their
//! tolerances can be tight (improvements never trip the gate); simulator
//! throughput is wall-clock and machine-dependent, so its default
//! tolerance is generous.

use crate::report::LabReport;
use phastlane_netsim::obs::json::JsonValue;
use phastlane_netsim::sweep::Saturation;

/// Slack before a metric movement counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed relative increase in per-job mean latency.
    pub mean: f64,
    /// Allowed relative increase in per-job p99 latency.
    pub p99: f64,
    /// Allowed absolute decrease in a curve's stable saturation rate.
    pub saturation: f64,
    /// Allowed relative decrease in aggregate simulated cycles/sec
    /// (wall-clock noise: keep this loose).
    pub throughput: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            mean: 0.05,
            p99: 0.10,
            saturation: 0.0,
            throughput: 0.5,
        }
    }
}

/// Absolute slack under every relative check, so exact re-runs never
/// trip on float formatting.
const EPS: f64 = 1e-9;

/// Serializes a report as a named baseline.
pub fn baseline_json(name: &str, report: &LabReport) -> JsonValue {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str(name.to_string())),
        ("canonical".into(), report.canonical_json()),
        ("perf".into(), report.perf_json()),
    ])
}

fn job_metric(job: &JsonValue, key: &str) -> Option<f64> {
    job.get("latency")?.get(key)?.as_f64()
}

fn saturation_from_json(v: &JsonValue) -> Option<Saturation> {
    let rate = || v.get("rate").and_then(JsonValue::as_f64);
    match v.get("kind")?.as_str()? {
        "stable" => Some(Saturation::Stable(rate()?)),
        "saturated_from_start" => Some(Saturation::SaturatedFromStart(rate()?)),
        "not_swept" => Some(Saturation::NotSwept),
        _ => None,
    }
}

/// Diffs a fresh run against a recorded baseline.
///
/// Returns the list of regressions (empty = gate passes).
///
/// # Errors
///
/// Errors when the baseline is structurally unusable for this spec:
/// malformed JSON shape, a different spec, or mismatched job lists.
/// Structural drift means the comparison is meaningless, not that the
/// code regressed — re-record the baseline instead.
pub fn compare(
    baseline: &JsonValue,
    fresh: &LabReport,
    tol: &Tolerances,
) -> Result<Vec<String>, String> {
    let canon = baseline
        .get("canonical")
        .ok_or("baseline has no \"canonical\" object")?;
    let base_spec = canon
        .get("spec")
        .and_then(JsonValue::as_str)
        .ok_or("baseline has no \"spec\" string")?;
    if base_spec != fresh.spec.encode() {
        return Err(format!(
            "baseline was recorded for a different spec; re-record it.\n\
             baseline spec:\n{base_spec}\ncurrent spec:\n{}",
            fresh.spec.encode()
        ));
    }
    let base_jobs = canon
        .get("jobs")
        .and_then(JsonValue::as_arr)
        .ok_or("baseline has no \"jobs\" array")?;
    if base_jobs.len() != fresh.jobs.len() {
        return Err(format!(
            "baseline has {} jobs, fresh run has {}",
            base_jobs.len(),
            fresh.jobs.len()
        ));
    }

    let mut regressions = Vec::new();
    for (base, job) in base_jobs.iter().zip(&fresh.jobs) {
        let label = format!(
            "job {} ({}/{}{})",
            job.index,
            job.net,
            job.pattern
                .clone()
                .or_else(|| job.benchmark.clone())
                .unwrap_or_default(),
            job.rate.map(|r| format!("@{r}")).unwrap_or_default(),
        );
        if let (Some(b), Some(f)) = (job_metric(base, "mean"), job.latency.mean()) {
            if f > b * (1.0 + tol.mean) + EPS {
                regressions.push(format!(
                    "{label}: mean latency {f:.2} exceeds baseline {b:.2} (+{:.1}% allowed)",
                    tol.mean * 100.0
                ));
            }
        }
        if let (Some(b), Some(f)) = (
            job_metric(base, "p99"),
            (job.latency.count() > 0)
                .then(|| job.latency.percentile(99.0))
                .flatten(),
        ) {
            let f = f as f64;
            if f > b * (1.0 + tol.p99) + EPS {
                regressions.push(format!(
                    "{label}: p99 latency {f} exceeds baseline {b} (+{:.1}% allowed)",
                    tol.p99 * 100.0
                ));
            }
        }
    }

    let base_sats = canon
        .get("saturations")
        .and_then(JsonValue::as_arr)
        .ok_or("baseline has no \"saturations\" array")?;
    if base_sats.len() != fresh.saturations.len() {
        return Err(format!(
            "baseline has {} saturation groups, fresh run has {}",
            base_sats.len(),
            fresh.saturations.len()
        ));
    }
    for (base, group) in base_sats.iter().zip(&fresh.saturations) {
        let label = format!(
            "curve {}/{} i={} r={}",
            group.net, group.pattern, group.intensity, group.replica
        );
        let b = base
            .get("saturation")
            .and_then(saturation_from_json)
            .ok_or_else(|| format!("{label}: baseline saturation unreadable"))?;
        match (b, group.saturation) {
            (Saturation::Stable(b), Saturation::Stable(f)) if f < b - tol.saturation - EPS => {
                regressions.push(format!(
                    "{label}: saturation rate {f} below baseline {b} (-{} allowed)",
                    tol.saturation
                ));
            }
            (Saturation::Stable(_), Saturation::Stable(_)) => {}
            (Saturation::Stable(b), fresh_sat) => {
                regressions.push(format!("{label}: was stable up to {b}, now {fresh_sat:?}"));
            }
            _ => {}
        }
    }

    if let Some(b) = baseline
        .get("perf")
        .and_then(|p| p.get("cycles_per_sec"))
        .and_then(JsonValue::as_f64)
    {
        let f = fresh.cycles_per_sec();
        if b > 0.0 && f > 0.0 && f < b * (1.0 - tol.throughput) {
            regressions.push(format!(
                "simulator throughput {f:.0} cycles/sec below baseline {b:.0} \
                 (-{:.0}% allowed)",
                tol.throughput * 100.0
            ));
        }
    }

    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::JobRecord;
    use crate::spec::LabSpec;
    use phastlane_netsim::stats::LatencyStats;

    fn report(mean_latency: u64) -> LabReport {
        let spec =
            LabSpec::parse("mesh 4x4\nnets optical4\npatterns uniform\nrates 0.1\n").unwrap();
        let mut latency = LatencyStats::new();
        latency.record(mean_latency);
        let job = JobRecord {
            index: 0,
            net: "optical4".into(),
            pattern: Some("uniform".into()),
            rate: Some(0.1),
            benchmark: None,
            intensity: 0.0,
            replica: 0,
            seed: 1,
            cycles: 1_000,
            latency,
            energy_pj: 5.0,
            offered_rate: Some(0.1),
            accepted_rate: Some(0.1),
            delivered_rate: Some(0.1),
            completion_cycle: None,
            unfinished: 0,
            undeliverable: 0,
            timed_out: false,
            stable: Some(true),
            outcome: crate::report::JobOutcome::Completed,
            wall_seconds: 0.25,
            phases: None,
        };
        LabReport::new(spec, vec![job], 1, 0.25)
    }

    #[test]
    fn identical_rerun_passes_clean() {
        let base = report(20);
        let recorded = baseline_json("t", &base);
        let regressions = compare(&recorded, &base, &Tolerances::default()).unwrap();
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn latency_regression_is_flagged() {
        let recorded = baseline_json("t", &report(20));
        let worse = report(40);
        let regressions = compare(&recorded, &worse, &Tolerances::default()).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("mean latency")),
            "{regressions:?}"
        );
        assert!(
            regressions.iter().any(|r| r.contains("p99")),
            "{regressions:?}"
        );
    }

    #[test]
    fn improvement_never_trips_the_gate() {
        let recorded = baseline_json("t", &report(40));
        let better = report(20);
        let regressions = compare(&recorded, &better, &Tolerances::default()).unwrap();
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn tolerance_absorbs_small_drift() {
        let recorded = baseline_json("t", &report(100));
        let slightly_worse = report(104);
        let tol = Tolerances::default(); // mean +5%
        let regressions = compare(&recorded, &slightly_worse, &tol).unwrap();
        assert!(
            !regressions.iter().any(|r| r.contains("mean")),
            "{regressions:?}"
        );
    }

    #[test]
    fn stable_to_saturated_is_a_regression() {
        let base = report(20);
        let recorded = baseline_json("t", &base);
        let mut collapsed = report(20);
        collapsed.jobs[0].stable = Some(false);
        collapsed.jobs[0].unfinished = 10;
        collapsed.saturations = {
            let mut s = collapsed.saturations;
            s[0].saturation = Saturation::SaturatedFromStart(0.1);
            s
        };
        let regressions = compare(&recorded, &collapsed, &Tolerances::default()).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("was stable")),
            "{regressions:?}"
        );
    }

    #[test]
    fn different_spec_is_a_structural_error() {
        let recorded = baseline_json("t", &report(20));
        let mut other = report(20);
        other.spec.seed = 99;
        let err = compare(&recorded, &other, &Tolerances::default()).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
    }

    #[test]
    fn throughput_collapse_is_flagged() {
        let recorded = baseline_json("t", &report(20));
        let mut slow = report(20);
        slow.wall_seconds = 100.0; // cycles/sec collapses far past -50 %
        for j in &mut slow.jobs {
            j.wall_seconds = 100.0;
        }
        let regressions = compare(&recorded, &slow, &Tolerances::default()).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("throughput")),
            "{regressions:?}"
        );
    }
}
