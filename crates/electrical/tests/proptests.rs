//! Randomized property tests of the electrical baseline's allocator and
//! multicast tree, driven by the in-tree deterministic [`SimRng`].

use phastlane_electrical::islip::Islip;
use phastlane_electrical::vctm::{mask_contains, mask_len, mask_of, tree_fork};
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::rng::SimRng;

/// 5 inputs, each requesting 0..4 of the 4 outputs.
fn random_requests(rng: &mut SimRng) -> Vec<Vec<usize>> {
    (0..5)
        .map(|_| {
            let n = rng.gen_range(0usize..4);
            (0..n).map(|_| rng.gen_range(0usize..4)).collect()
        })
        .collect()
}

fn random_node_set(rng: &mut SimRng, max_len: usize) -> std::collections::BTreeSet<u16> {
    let n = rng.gen_range(0usize..max_len);
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..n {
        set.insert(rng.gen_range(0u16..64));
    }
    set
}

/// iSLIP matches are conflict-free: each output granted at most once,
/// each input within its capacity, and every match was requested.
#[test]
fn islip_matches_are_valid() {
    let mut rng = SimRng::seed_from_u64(0x00E1_EC01);
    for _ in 0..256 {
        let reqs = random_requests(&mut rng);
        let capacity = rng.gen_range(1usize..5);
        let iterations = rng.gen_range(1usize..4);
        let rounds = rng.gen_range(1usize..6);
        let mut alloc = Islip::new(5, 4);
        for _ in 0..rounds {
            let matches = alloc.allocate(&reqs, capacity, iterations);
            let mut out_seen = [false; 4];
            let mut in_count = [0usize; 5];
            for &(i, o) in &matches {
                assert!(reqs[i].contains(&o), "unrequested match ({i},{o})");
                assert!(!out_seen[o], "output {o} matched twice");
                out_seen[o] = true;
                in_count[i] += 1;
            }
            for (i, &c) in in_count.iter().enumerate() {
                assert!(c <= capacity, "input {i} over capacity");
            }
        }
    }
}

/// iSLIP is work-conserving for single requests: a lone
/// (input, output) request is always granted.
#[test]
fn islip_grants_lone_request() {
    for inp in 0usize..5 {
        for out in 0usize..4 {
            for rounds in 1usize..8 {
                let mut alloc = Islip::new(5, 4);
                let mut reqs: Vec<Vec<usize>> = vec![Vec::new(); 5];
                reqs[inp].push(out);
                for _ in 0..rounds {
                    let matches = alloc.allocate(&reqs, 4, 2);
                    assert_eq!(&matches, &vec![(inp, out)]);
                }
            }
        }
    }
}

/// The VCTM tree partitions any target mask: walking the whole tree
/// delivers each masked node exactly once and nothing else.
#[test]
fn vctm_tree_partitions_any_mask() {
    let mut rng = SimRng::seed_from_u64(0x00E1_EC03);
    for _ in 0..128 {
        let mesh = Mesh::PAPER;
        let src = NodeId(rng.gen_range(0u16..64));
        let nodes = random_node_set(&mut rng, 30);
        let targets: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
        let mask = mask_of(&targets);
        let mut delivered = Vec::new();
        let mut frontier = vec![(src, mask)];
        let mut steps = 0;
        while let Some((at, m)) = frontier.pop() {
            steps += 1;
            assert!(steps < 1000, "tree walk diverged");
            let (branches, deliver) = tree_fork(mesh, src, at, m);
            if deliver {
                delivered.push(at);
            }
            let mut seen = if deliver {
                phastlane_netsim::mask::NodeMask::from_nodes([at])
            } else {
                phastlane_netsim::mask::NodeMask::EMPTY
            };
            for b in &branches {
                assert!(!seen.intersects(&b.submask), "overlapping branches");
                seen = seen.or(&b.submask);
                let next = mesh.neighbor(at, b.out).expect("stays in mesh");
                frontier.push((next, b.submask));
            }
            assert_eq!(seen, m, "branches + local must cover the mask");
        }
        delivered.sort_unstable();
        let mut expect: Vec<NodeId> = targets.clone();
        expect.sort_unstable();
        assert_eq!(delivered, expect);
    }
}

/// Mask helpers agree with each other.
#[test]
fn mask_helpers_consistent() {
    let mut rng = SimRng::seed_from_u64(0x00E1_EC04);
    for _ in 0..128 {
        let nodes = random_node_set(&mut rng, 64);
        let list: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
        let mask = mask_of(&list);
        assert_eq!(mask_len(mask), list.len());
        for n in 0..64u16 {
            assert_eq!(mask_contains(mask, NodeId(n)), nodes.contains(&n));
        }
    }
}
