//! Injection-rate sweeps: the latency-vs-load curves of Figure 9 and
//! saturation-bandwidth extraction.

use crate::harness::{run_synthetic, SyntheticOptions, SyntheticResult, SyntheticWorkload};
use crate::network::Network;

/// One point of a latency-vs-injection-rate curve.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load (packets per node per cycle).
    pub offered_rate: f64,
    /// Measured result at this load.
    pub result: SyntheticResult,
}

impl SweepPoint {
    /// Mean packet latency, or `f64::INFINITY` if nothing was delivered.
    pub fn mean_latency(&self) -> f64 {
        self.result.latency.mean().unwrap_or(f64::INFINITY)
    }

    /// Whether the network kept up with the offered load: deliveries
    /// tracked offered packets and nothing was left stranded.
    pub fn is_stable(&self) -> bool {
        self.result.unfinished == 0 && self.result.delivered_rate >= 0.90 * self.result.offered_rate
    }
}

/// Runs a fresh network at each requested injection rate.
///
/// `make_net` builds a new network per rate; `make_workload` builds the
/// per-rate traffic source (e.g. a Bernoulli process over a permutation
/// pattern).
pub fn latency_sweep<N, W>(
    rates: &[f64],
    mut make_net: impl FnMut() -> N,
    mut make_workload: impl FnMut(f64) -> W,
    opts: SyntheticOptions,
) -> Vec<SweepPoint>
where
    N: Network,
    W: SyntheticWorkload,
{
    rates
        .iter()
        .map(|&rate| {
            let mut net = make_net();
            let mut workload = make_workload(rate);
            let result = run_synthetic(&mut net, &mut workload, opts);
            SweepPoint {
                offered_rate: rate,
                result,
            }
        })
        .collect()
}

/// Extracts the saturation throughput from a sweep: the highest offered
/// rate whose point is still [`stable`](SweepPoint::is_stable). Returns
/// `None` if no point is stable.
pub fn saturation_rate(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.is_stable())
        .map(|p| p.offered_rate)
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SyntheticResult;
    use crate::stats::{EnergyReport, LatencyStats};

    fn point(rate: f64, delivered: f64, unfinished: u64) -> SweepPoint {
        SweepPoint {
            offered_rate: rate,
            result: SyntheticResult {
                latency: LatencyStats::new(),
                offered_rate: rate,
                accepted_rate: rate,
                delivered_rate: delivered,
                energy: EnergyReport::default(),
                unfinished,
                undeliverable: 0,
                perf: Default::default(),
            },
        }
    }

    #[test]
    fn saturation_is_last_stable_rate() {
        let pts = vec![
            point(0.1, 0.1, 0),
            point(0.2, 0.2, 0),
            point(0.3, 0.15, 500), // saturated
        ];
        assert_eq!(saturation_rate(&pts), Some(0.2));
    }

    #[test]
    fn saturation_none_when_all_unstable() {
        let pts = vec![point(0.5, 0.1, 100)];
        assert_eq!(saturation_rate(&pts), None);
    }

    #[test]
    fn unstable_when_unfinished() {
        assert!(!point(0.1, 0.1, 1).is_stable());
        assert!(point(0.1, 0.095, 0).is_stable());
        assert!(!point(0.1, 0.05, 0).is_stable());
    }

    #[test]
    fn empty_latency_is_infinite() {
        assert!(point(0.1, 0.1, 0).mean_latency().is_infinite());
    }
}
