//! Deterministic fault injection: schedulable device failures both
//! networks consume to model graceful degradation.
//!
//! The Phastlane paper already treats one failure mode — buffer-overflow
//! drops — as a first-class mechanism (§2.1.2). This module generalizes
//! that to *device* failures: dead optical links/waveguides, stuck
//! routers, laser-power droop (which tightens the photonics loss budget
//! and shrinks the reachable hop count), and transient bit errors that
//! exercise the SECDED path in [`crate::ecc`].
//!
//! A [`FaultPlan`] is a plain list of [`Fault`]s, each active over a
//! cycle window (`start`, optional `duration`; `None` means permanent).
//! Plans are deterministic by construction: they are either parsed from a
//! text file ([`FaultPlan::parse`]) or generated from a seed
//! ([`FaultPlan::random`]), and the networks query them with pure
//! functions of the cycle counter. An **empty plan is guaranteed
//! zero-effect**: every network fault hook is gated on
//! [`FaultPlan::is_empty`] and faulty-path randomness comes from a
//! dedicated RNG stream, so seeded runs without faults stay byte-identical
//! to a build without this module.

use crate::geometry::{Coord, Direction, Mesh, NodeId};
use crate::packet::PacketId;
use crate::rng::SimRng;

/// The device failure a [`Fault`] models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The directed link leaving `node` toward `dir` is dead (a broken
    /// waveguide or driver); nothing may traverse it.
    LinkDown {
        /// Upstream endpoint of the dead link.
        node: NodeId,
        /// Direction of the dead link out of `node`.
        dir: Direction,
    },
    /// The router at `node` is stuck: packets may neither enter, leave,
    /// nor eject there while the fault is active.
    RouterStuck {
        /// The stuck router.
        node: NodeId,
    },
    /// Laser power droop: the effective crossing efficiency is multiplied
    /// by `factor` (< 1.0), raising worst-case loss so fewer hops fit the
    /// nominal optical power budget.
    LaserDroop {
        /// Multiplier applied to the configured crossing efficiency.
        factor: f64,
    },
    /// Transient bit errors: each delivery flips payload bits with
    /// probability `rate`, exercising the SECDED encode/decode path.
    BitError {
        /// Per-delivery corruption probability.
        rate: f64,
    },
}

/// One scheduled fault: a kind plus its active cycle window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What fails.
    pub kind: FaultKind,
    /// First cycle the fault is active.
    pub start: u64,
    /// Active cycle count; `None` means permanent.
    pub duration: Option<u64>,
}

impl Fault {
    /// A fault active from cycle 0 forever.
    pub fn permanent(kind: FaultKind) -> Fault {
        Fault {
            kind,
            start: 0,
            duration: None,
        }
    }

    /// A fault active for `duration` cycles starting at `start`.
    pub fn transient(kind: FaultKind, start: u64, duration: u64) -> Fault {
        Fault {
            kind,
            start,
            duration: Some(duration),
        }
    }

    /// Whether the fault is active at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        cycle >= self.start
            && self
                .duration
                .is_none_or(|d| cycle < self.start.saturating_add(d))
    }

    /// The mesh node this fault is anchored at, for trace events
    /// (global faults report node 0).
    pub fn site(&self) -> NodeId {
        match self.kind {
            FaultKind::LinkDown { node, .. } | FaultKind::RouterStuck { node } => node,
            FaultKind::LaserDroop { .. } | FaultKind::BitError { .. } => NodeId(0),
        }
    }

    /// The faulted link direction, when the fault is link-scoped.
    pub fn port(&self) -> Option<Direction> {
        match self.kind {
            FaultKind::LinkDown { dir, .. } => Some(dir),
            _ => None,
        }
    }
}

/// A deterministic schedule of device failures.
///
/// The empty plan is the (zero-effect) default; networks check
/// [`is_empty`](FaultPlan::is_empty) before touching any fault path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (zero-effect) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault to the schedule.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the directed link `node -> dir` is dead at `cycle`.
    pub fn link_down(&self, cycle: u64, node: NodeId, dir: Direction) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::LinkDown { node: n, dir: d } if n == node && d == dir)
                && f.active_at(cycle)
        })
    }

    /// Whether the router at `node` is stuck at `cycle`.
    pub fn router_stuck(&self, cycle: u64, node: NodeId) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::RouterStuck { node: n } if n == node) && f.active_at(cycle)
        })
    }

    /// Whether the hop out of `from` toward `dir` is unusable at `cycle`:
    /// the link is dead, either endpoint router is stuck, or the hop
    /// leaves the mesh.
    pub fn blocked(&self, cycle: u64, mesh: Mesh, from: NodeId, dir: Direction) -> bool {
        let Some(next) = mesh.neighbor(from, dir) else {
            return true;
        };
        self.link_down(cycle, from, dir)
            || self.router_stuck(cycle, from)
            || self.router_stuck(cycle, next)
    }

    /// Product of all active laser-droop factors at `cycle` (1.0 when no
    /// droop is active).
    pub fn efficiency_factor(&self, cycle: u64) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(cycle))
            .filter_map(|f| match f.kind {
                FaultKind::LaserDroop { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    /// The largest active bit-error rate at `cycle` (0.0 when none).
    pub fn bit_error_rate(&self, cycle: u64) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(cycle))
            .filter_map(|f| match f.kind {
                FaultKind::BitError { rate } => Some(rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Faults whose state toggles exactly at `cycle`: `(fault, true)` on
    /// injection, `(fault, false)` on clearing. Used for trace events.
    pub fn edges_at(&self, cycle: u64) -> impl Iterator<Item = (&Fault, bool)> {
        self.faults.iter().filter_map(move |f| {
            if f.start == cycle {
                Some((f, true))
            } else if f
                .duration
                .is_some_and(|d| f.start.saturating_add(d) == cycle)
            {
                Some((f, false))
            } else {
                None
            }
        })
    }

    /// Parses a plan from its text form. One fault per line:
    ///
    /// ```text
    /// # comment / blank lines ignored
    /// link n3 east @100 +500     # link node3 -> east, cycles [100, 600)
    /// router n12                 # stuck router, permanent from cycle 0
    /// droop 0.95 @200            # laser droop to 95% efficiency
    /// biterr 0.001               # 0.1% per-delivery bit-error rate
    /// ```
    ///
    /// `@start` defaults to 0 and `+duration` to permanent.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("fault plan line {}: {msg}: {raw:?}", ln + 1);
            let mut start = 0u64;
            let mut duration = None;
            let mut words = Vec::new();
            for tok in line.split_whitespace() {
                if let Some(s) = tok.strip_prefix('@') {
                    start = s.parse().map_err(|_| err("bad @start"))?;
                } else if let Some(d) = tok.strip_prefix('+') {
                    duration = Some(d.parse().map_err(|_| err("bad +duration"))?);
                } else {
                    words.push(tok);
                }
            }
            let node = |w: &str| -> Result<NodeId, String> {
                w.strip_prefix('n')
                    .unwrap_or(w)
                    .parse()
                    .map(NodeId)
                    .map_err(|_| err("bad node"))
            };
            let kind = match words.as_slice() {
                ["link", n, d] => FaultKind::LinkDown {
                    node: node(n)?,
                    dir: parse_direction(d).ok_or_else(|| err("bad direction"))?,
                },
                ["router", n] => FaultKind::RouterStuck { node: node(n)? },
                ["droop", f] => FaultKind::LaserDroop {
                    factor: f.parse().map_err(|_| err("bad factor"))?,
                },
                ["biterr", r] => FaultKind::BitError {
                    rate: r.parse().map_err(|_| err("bad rate"))?,
                },
                _ => return Err(err("expected link/router/droop/biterr")),
            };
            plan.push(Fault {
                kind,
                start,
                duration,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back to its [`parse`](FaultPlan::parse) text form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            match f.kind {
                FaultKind::LinkDown { node, dir } => {
                    out.push_str(&format!("link n{} {}", node.0, direction_name(dir)));
                }
                FaultKind::RouterStuck { node } => out.push_str(&format!("router n{}", node.0)),
                FaultKind::LaserDroop { factor } => out.push_str(&format!("droop {factor}")),
                FaultKind::BitError { rate } => out.push_str(&format!("biterr {rate}")),
            }
            if f.start != 0 {
                out.push_str(&format!(" @{}", f.start));
            }
            if let Some(d) = f.duration {
                out.push_str(&format!(" +{d}"));
            }
            out.push('\n');
        }
        out
    }

    /// Generates a seeded random plan whose severity scales with
    /// `intensity` in `[0, 1]`: permanent dead links over roughly
    /// `intensity / 2` of the mesh's directed links, one stuck router at
    /// `intensity >= 0.25`, plus laser droop and a bit-error rate
    /// proportional to `intensity`. `intensity == 0` yields the empty
    /// (zero-effect) plan.
    pub fn random(mesh: Mesh, seed: u64, intensity: f64) -> FaultPlan {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new();
        if intensity == 0.0 {
            return plan;
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let mut links: Vec<(NodeId, Direction)> = Vec::new();
        for node in mesh.iter_nodes() {
            for dir in Direction::ALL {
                if mesh.neighbor(node, dir).is_some() {
                    links.push((node, dir));
                }
            }
        }
        let want = ((links.len() as f64 * intensity * 0.5).round() as usize).max(1);
        for _ in 0..want.min(links.len()) {
            let i = rng.gen_range(0..links.len());
            let (node, dir) = links.swap_remove(i);
            plan.push(Fault::permanent(FaultKind::LinkDown { node, dir }));
        }
        if intensity >= 0.25 {
            let node = NodeId(rng.gen_range(0..mesh.nodes()) as u16);
            plan.push(Fault::permanent(FaultKind::RouterStuck { node }));
        }
        plan.push(Fault::permanent(FaultKind::LaserDroop {
            factor: 1.0 - 0.1 * intensity,
        }));
        plan.push(Fault::permanent(FaultKind::BitError {
            rate: 0.05 * intensity,
        }));
        plan
    }
}

/// A packet destination the network gave up on: the retry cap (or
/// livelock guard) fired and the packet is terminally `Undeliverable`.
///
/// Failures are the explicit counterpart of [`crate::packet::Delivery`]:
/// under faults, every injected destination ends as exactly one of the
/// two — there is no silent loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedDelivery {
    /// The packet that gave up.
    pub packet: PacketId,
    /// Originating node.
    pub src: NodeId,
    /// The destination that will never be reached.
    pub dest: NodeId,
    /// Cycle the network declared the destination undeliverable.
    pub cycle: u64,
}

/// Picks a productive detour for a unicast whose XY first hop out of
/// `from` toward `to` is faulted: route the *other* dimension first (YX
/// for this packet) via the corner waypoint `(from.x, to.y)`.
///
/// Returns `(first_hop, corner)` when such a detour exists and its first
/// hop is live, `None` otherwise (single productive dimension, or the
/// detour hop is also faulted). Restricting detours to productive
/// directions keeps every launch strictly decreasing the Manhattan
/// distance, so fault rerouting can never livelock.
pub fn productive_detour(
    plan: &FaultPlan,
    cycle: u64,
    mesh: Mesh,
    from: NodeId,
    to: NodeId,
) -> Option<(Direction, NodeId)> {
    let (a, b) = (mesh.coord(from), mesh.coord(to));
    if a.x == b.x || a.y == b.y {
        return None;
    }
    let corner = mesh.node_at(Coord { x: a.x, y: b.y });
    let dir = if b.y > a.y {
        Direction::South
    } else {
        Direction::North
    };
    (!plan.blocked(cycle, mesh, from, dir)).then_some((dir, corner))
}

fn parse_direction(s: &str) -> Option<Direction> {
    match s {
        "north" | "n" => Some(Direction::North),
        "south" | "s" => Some(Direction::South),
        "east" | "e" => Some(Direction::East),
        "west" | "w" => Some(Direction::West),
        _ => None,
    }
}

fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::North => "north",
        Direction::South => "south",
        Direction::East => "east",
        Direction::West => "west",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_and_permanence() {
        let f = Fault::transient(FaultKind::RouterStuck { node: NodeId(3) }, 10, 5);
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
        let p = Fault::permanent(FaultKind::RouterStuck { node: NodeId(3) });
        assert!(p.active_at(0));
        assert!(p.active_at(u64::MAX));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        let mesh = Mesh::new(4, 4);
        assert!(plan.is_empty());
        assert!(!plan.link_down(0, NodeId(0), Direction::East));
        assert!(!plan.router_stuck(0, NodeId(0)));
        assert!(!plan.blocked(0, mesh, NodeId(0), Direction::East));
        assert_eq!(plan.efficiency_factor(0), 1.0);
        assert_eq!(plan.bit_error_rate(0), 0.0);
        assert_eq!(plan.edges_at(0).count(), 0);
    }

    #[test]
    fn blocked_covers_link_routers_and_edge() {
        let mesh = Mesh::new(4, 4);
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LinkDown {
            node: NodeId(0),
            dir: Direction::East,
        }));
        plan.push(Fault::permanent(FaultKind::RouterStuck { node: NodeId(5) }));
        // The dead link itself.
        assert!(plan.blocked(0, mesh, NodeId(0), Direction::East));
        // The reverse direction of the same physical span is separate.
        assert!(!plan.blocked(0, mesh, NodeId(1), Direction::West));
        // Hops into and out of a stuck router.
        assert!(plan.blocked(0, mesh, NodeId(4), Direction::East)); // 4 -> 5
        assert!(plan.blocked(0, mesh, NodeId(5), Direction::East)); // 5 -> 6
                                                                    // Off-mesh is always blocked.
        assert!(plan.blocked(0, mesh, NodeId(0), Direction::West));
    }

    #[test]
    fn droop_and_biterr_compose() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LaserDroop { factor: 0.9 }));
        plan.push(Fault::transient(
            FaultKind::LaserDroop { factor: 0.5 },
            10,
            10,
        ));
        plan.push(Fault::permanent(FaultKind::BitError { rate: 0.01 }));
        plan.push(Fault::transient(FaultKind::BitError { rate: 0.2 }, 10, 10));
        assert_eq!(plan.efficiency_factor(0), 0.9);
        assert!((plan.efficiency_factor(15) - 0.45).abs() < 1e-12);
        assert_eq!(plan.bit_error_rate(0), 0.01);
        assert_eq!(plan.bit_error_rate(15), 0.2);
    }

    #[test]
    fn edges_report_injection_and_clearing() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::transient(
            FaultKind::RouterStuck { node: NodeId(1) },
            5,
            3,
        ));
        assert_eq!(plan.edges_at(5).count(), 1);
        assert!(plan.edges_at(5).next().unwrap().1);
        assert_eq!(plan.edges_at(8).count(), 1);
        assert!(!plan.edges_at(8).next().unwrap().1);
        assert_eq!(plan.edges_at(6).count(), 0);
    }

    #[test]
    fn parse_encode_roundtrip() {
        let text = "\
# a comment
link n3 east @100 +500
router n12
droop 0.95 @200
biterr 0.001
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.faults()[0],
            Fault::transient(
                FaultKind::LinkDown {
                    node: NodeId(3),
                    dir: Direction::East
                },
                100,
                500
            )
        );
        let reparsed = FaultPlan::parse(&plan.encode()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("link n3").is_err());
        assert!(FaultPlan::parse("link n3 up").is_err());
        assert!(FaultPlan::parse("router n3 @x").is_err());
        assert!(FaultPlan::parse("warp n3").is_err());
    }

    #[test]
    fn parse_errors_name_the_line_and_the_problem() {
        // Every malformed token class produces a clear, located error —
        // a fat-fingered plan file must never panic or half-apply.
        let cases: [(&str, &str); 7] = [
            ("router nX", "bad node"),
            ("router n-1", "bad node"),
            ("link n3 sideways", "bad direction"),
            ("droop fast", "bad factor"),
            ("biterr lots", "bad rate"),
            ("router n3 +forever", "bad +duration"),
            ("droop", "expected link/router/droop/biterr"),
        ];
        for (text, want) in cases {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.contains(want), "{text:?}: {err}");
            assert!(err.contains("line 1"), "{text:?}: {err}");
        }
        // The reported line number accounts for comments and blanks.
        let err =
            FaultPlan::parse("# header\n\nrouter n1\nlink n2 north\nbiterr much\n").unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        // An error leaves nothing half-applied: parse is all-or-nothing.
        assert!(FaultPlan::parse("router n1\nwarp n2\n").is_err());
    }

    #[test]
    fn random_is_seeded_and_scales() {
        let mesh = Mesh::new(4, 4);
        assert!(FaultPlan::random(mesh, 1, 0.0).is_empty());
        let a = FaultPlan::random(mesh, 1, 0.2);
        let b = FaultPlan::random(mesh, 1, 0.2);
        let c = FaultPlan::random(mesh, 2, 0.2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let heavy = FaultPlan::random(mesh, 1, 0.8);
        assert!(heavy.len() > a.len());
        // All link faults reference real links.
        for f in heavy.faults() {
            if let FaultKind::LinkDown { node, dir } = f.kind {
                assert!(mesh.neighbor(node, dir).is_some());
            }
        }
    }

    #[test]
    fn detour_prefers_live_productive_dimension() {
        let mesh = Mesh::new(4, 4);
        let mut plan = FaultPlan::new();
        plan.push(Fault::permanent(FaultKind::LinkDown {
            node: NodeId(0),
            dir: Direction::East,
        }));
        // 0 -> 5 (one east, one south): detour south via corner node 4.
        let (dir, corner) = productive_detour(&plan, 0, mesh, NodeId(0), NodeId(5)).unwrap();
        assert_eq!(dir, Direction::South);
        assert_eq!(corner, NodeId(4));
        // 0 -> 1 shares the row: no productive alternative.
        assert!(productive_detour(&plan, 0, mesh, NodeId(0), NodeId(1)).is_none());
        // Detour dimension also dead: stuck.
        plan.push(Fault::permanent(FaultKind::LinkDown {
            node: NodeId(0),
            dir: Direction::South,
        }));
        assert!(productive_detour(&plan, 0, mesh, NodeId(0), NodeId(5)).is_none());
    }
}
