//! An idealized reference network: infinite bandwidth, fixed
//! per-destination latency, no contention, no energy.
//!
//! Useful as (a) a lower bound when interpreting results from the real
//! simulators and (b) a deterministic fixture for testing the harness —
//! every latency it produces is exactly `base_latency + distance *
//! per_hop_latency`.

use crate::geometry::Mesh;
use crate::network::Network;
use crate::packet::{Delivery, NewPacket, PacketId};
use crate::stats::{EnergyReport, NetworkStats};
use std::collections::BTreeMap;

/// The ideal network.
#[derive(Debug, Clone)]
pub struct IdealNetwork {
    mesh: Mesh,
    base_latency: u64,
    per_hop_latency: u64,
    cycle: u64,
    next_id: u64,
    /// Future deliveries ordered by due cycle.
    pending: BTreeMap<u64, Vec<Delivery>>,
    in_flight: usize,
    ready: Vec<Delivery>,
    stats: NetworkStats,
}

impl IdealNetwork {
    /// Creates an ideal network with the given latency model.
    ///
    /// # Panics
    ///
    /// Panics if both latency components are zero (a delivery must take
    /// at least one cycle).
    pub fn new(mesh: Mesh, base_latency: u64, per_hop_latency: u64) -> Self {
        assert!(
            base_latency + per_hop_latency > 0,
            "an ideal network still needs non-zero latency"
        );
        IdealNetwork {
            mesh,
            base_latency,
            per_hop_latency,
            cycle: 0,
            next_id: 0,
            pending: BTreeMap::new(),
            in_flight: 0,
            ready: Vec::new(),
            stats: NetworkStats::default(),
        }
    }

    /// The latency this network gives a packet between two nodes.
    pub fn latency_between(&self, a: crate::geometry::NodeId, b: crate::geometry::NodeId) -> u64 {
        self.base_latency + u64::from(self.mesh.distance(a, b)) * self.per_hop_latency
    }
}

impl Network for IdealNetwork {
    fn name(&self) -> String {
        format!("Ideal(b{},h{})", self.base_latency, self.per_hop_latency)
    }

    fn mesh(&self) -> Mesh {
        self.mesh
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn inject(&mut self, packet: NewPacket) -> Option<PacketId> {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        self.stats.injected += 1;
        let dests = packet.dests.expand(packet.src, self.mesh.nodes());
        if dests.is_empty() {
            self.ready.push(Delivery {
                packet: id,
                src: packet.src,
                dest: packet.src,
                injected_cycle: self.cycle,
                delivered_cycle: self.cycle,
            });
            self.stats.delivered += 1;
            return Some(id);
        }
        self.in_flight += 1;
        for dest in dests {
            let due = self.cycle + self.latency_between(packet.src, dest);
            self.pending.entry(due).or_default().push(Delivery {
                packet: id,
                src: packet.src,
                dest,
                injected_cycle: self.cycle,
                delivered_cycle: due,
            });
        }
        Some(id)
    }

    fn step(&mut self) {
        self.cycle += 1;
        // Deliver everything due by the new cycle.
        let due: Vec<u64> = self.pending.range(..=self.cycle).map(|(&c, _)| c).collect();
        let mut finished: std::collections::HashMap<PacketId, usize> =
            std::collections::HashMap::new();
        for c in due {
            for d in self.pending.remove(&c).unwrap_or_default() {
                *finished.entry(d.packet).or_default() += 1;
                self.stats.delivered += 1;
                self.stats.latency.record(d.latency());
                self.ready.push(d);
            }
        }
        // A packet leaves flight when none of its deliveries remain
        // anywhere in the pending map.
        for (id, _) in finished {
            let still_pending = self.pending.values().flatten().any(|d| d.packet == id);
            if !still_pending {
                self.in_flight -= 1;
            }
        }
    }

    fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.ready)
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn energy(&self) -> EnergyReport {
        EnergyReport::default()
    }

    fn stats(&self) -> NetworkStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::NodeId;
    use crate::packet::PacketKind;

    #[test]
    fn latency_is_exact() {
        let mut net = IdealNetwork::new(Mesh::PAPER, 2, 1);
        net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
            .unwrap();
        while net.in_flight() > 0 {
            net.step();
        }
        let d = net.drain_deliveries();
        assert_eq!(d[0].latency(), 2 + 14);
    }

    #[test]
    fn broadcast_delivers_each_at_its_distance() {
        let mut net = IdealNetwork::new(Mesh::PAPER, 1, 2);
        net.inject(NewPacket::broadcast(NodeId(0), PacketKind::Invalidate))
            .unwrap();
        while net.in_flight() > 0 {
            net.step();
        }
        let d = net.drain_deliveries();
        assert_eq!(d.len(), 63);
        for x in d {
            assert_eq!(
                x.latency(),
                1 + 2 * u64::from(Mesh::PAPER.distance(NodeId(0), x.dest))
            );
        }
    }

    #[test]
    fn in_flight_counts_packets_not_copies() {
        let mut net = IdealNetwork::new(Mesh::PAPER, 1, 1);
        net.inject(NewPacket::broadcast(NodeId(9), PacketKind::ReadRequest))
            .unwrap();
        net.inject(NewPacket::unicast(NodeId(0), NodeId(1)))
            .unwrap();
        assert_eq!(net.in_flight(), 2);
        for _ in 0..100 {
            net.step();
        }
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero latency")]
    fn zero_latency_rejected() {
        let _ = IdealNetwork::new(Mesh::PAPER, 0, 0);
    }
}
