//! Packet and message types shared by both network implementations.
//!
//! Both the Phastlane network and the electrical baseline use single-flit,
//! 80-byte packets (Tables 1 and 2): a 64-byte cache line plus address,
//! operation type, source id, ECC, and routing control.

use crate::geometry::NodeId;
use std::fmt;

/// Total packet size in bytes (one flit).
pub const PACKET_BYTES: u32 = 80;
/// Total packet size in bits.
pub const PACKET_BITS: u32 = PACKET_BYTES * 8;

/// Unique identifier a network assigns to an injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The coherence-level operation a packet carries. Only used for
/// statistics and trace bookkeeping; the networks treat all kinds alike
/// except for multicast routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A read (GetS) coherence request — broadcast in a snoopy system.
    ReadRequest,
    /// A write/upgrade (GetX) coherence request — broadcast.
    WriteRequest,
    /// A data response (cache-to-cache or from a memory controller).
    DataResponse,
    /// An invalidate — broadcast.
    Invalidate,
    /// A writeback to a memory controller.
    Writeback,
    /// Generic point-to-point data (synthetic workloads).
    Data,
}

impl PacketKind {
    /// Whether this kind is broadcast in a snoopy protocol.
    pub fn is_snoop_broadcast(self) -> bool {
        matches!(
            self,
            PacketKind::ReadRequest | PacketKind::WriteRequest | PacketKind::Invalidate
        )
    }
}

/// Destination set of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DestSet {
    /// A single destination.
    Unicast(NodeId),
    /// An explicit list of destinations (deduplicated, excludes source).
    Multicast(Vec<NodeId>),
    /// Every node except the source.
    Broadcast,
}

impl DestSet {
    /// Expands to the concrete destination list for a given source and
    /// node count. Destinations equal to `src` are dropped; duplicates in
    /// a multicast list are dropped.
    pub fn expand(&self, src: NodeId, nodes: usize) -> Vec<NodeId> {
        match self {
            DestSet::Unicast(d) => {
                if *d == src {
                    Vec::new()
                } else {
                    vec![*d]
                }
            }
            DestSet::Multicast(list) => {
                let mut out: Vec<NodeId> = Vec::with_capacity(list.len());
                for &d in list {
                    if d != src && !out.contains(&d) {
                        out.push(d);
                    }
                }
                out
            }
            DestSet::Broadcast => (0..nodes as u16)
                .map(NodeId)
                .filter(|&n| n != src)
                .collect(),
        }
    }

    /// Whether this is a multi-destination set.
    pub fn is_multi(&self) -> bool {
        match self {
            DestSet::Unicast(_) => false,
            DestSet::Multicast(list) => list.len() > 1,
            DestSet::Broadcast => true,
        }
    }
}

/// A request to inject one packet, handed to [`crate::network::Network::inject`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NewPacket {
    /// Source node.
    pub src: NodeId,
    /// Destination(s).
    pub dests: DestSet,
    /// Operation kind (statistics / multicast handling).
    pub kind: PacketKind,
}

impl NewPacket {
    /// Convenience constructor for a unicast data packet.
    pub fn unicast(src: NodeId, dst: NodeId) -> Self {
        NewPacket {
            src,
            dests: DestSet::Unicast(dst),
            kind: PacketKind::Data,
        }
    }

    /// Convenience constructor for a broadcast packet.
    pub fn broadcast(src: NodeId, kind: PacketKind) -> Self {
        NewPacket {
            src,
            dests: DestSet::Broadcast,
            kind,
        }
    }
}

/// Record of one packet copy arriving at one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Delivery {
    /// The packet.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// The destination this copy arrived at.
    pub dest: NodeId,
    /// Cycle the packet entered the source NIC.
    pub injected_cycle: u64,
    /// Cycle this copy was delivered.
    pub delivered_cycle: u64,
}

impl Delivery {
    /// Latency from NIC entry to delivery at this destination.
    pub fn latency(&self) -> u64 {
        self.delivered_cycle.saturating_sub(self.injected_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_unicast() {
        let d = DestSet::Unicast(NodeId(5));
        assert_eq!(d.expand(NodeId(0), 64), vec![NodeId(5)]);
        // Self-send collapses to nothing.
        assert!(d.expand(NodeId(5), 64).is_empty());
    }

    #[test]
    fn expand_broadcast_excludes_source() {
        let d = DestSet::Broadcast.expand(NodeId(3), 8);
        assert_eq!(d.len(), 7);
        assert!(!d.contains(&NodeId(3)));
    }

    #[test]
    fn expand_multicast_dedups() {
        let d = DestSet::Multicast(vec![NodeId(1), NodeId(2), NodeId(1), NodeId(0)]);
        assert_eq!(d.expand(NodeId(0), 8), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn is_multi() {
        assert!(!DestSet::Unicast(NodeId(1)).is_multi());
        assert!(DestSet::Broadcast.is_multi());
        assert!(DestSet::Multicast(vec![NodeId(1), NodeId(2)]).is_multi());
        assert!(!DestSet::Multicast(vec![NodeId(1)]).is_multi());
    }

    #[test]
    fn snoop_broadcast_kinds() {
        assert!(PacketKind::ReadRequest.is_snoop_broadcast());
        assert!(PacketKind::Invalidate.is_snoop_broadcast());
        assert!(!PacketKind::DataResponse.is_snoop_broadcast());
        assert!(!PacketKind::Data.is_snoop_broadcast());
    }

    #[test]
    fn delivery_latency() {
        let d = Delivery {
            packet: PacketId(1),
            src: NodeId(0),
            dest: NodeId(1),
            injected_cycle: 10,
            delivered_cycle: 14,
        };
        assert_eq!(d.latency(), 4);
    }

    #[test]
    fn packet_size_is_80_bytes() {
        assert_eq!(PACKET_BITS, 640);
    }
}
