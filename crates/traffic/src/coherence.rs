//! Snoopy-coherence trace synthesis — the substitute for the paper's
//! SESC-generated SPLASH2 traces (`DESIGN.md` substitution #1).
//!
//! The modeled system matches §4: 64 out-of-order cores with private
//! L1/L2 caches (sizes reduced to generate traffic), snoopy coherence
//! where L2 miss requests broadcast to every node, and cache-line
//! interleaved memory controllers with 80-cycle memory latency
//! (Table 4).
//!
//! The trace is **closed-loop**: timing lives in dependency think-times,
//! not absolute timestamps, so a faster network genuinely finishes the
//! workload sooner — which is what Figure 10's "network speedup"
//! measures. Each L2 miss of a core becomes a chain:
//!
//! 1. a **broadcast request** (GetS/GetX), eligible `gap` compute cycles
//!    after the response to the core's miss `outstanding` positions
//!    earlier (the MSHR window) and after the current barrier phase
//!    opened;
//! 2. a **unicast data response** from another cache (cache latency)
//!    when the line is shared, else from the home memory controller
//!    (80-cycle memory latency);
//! 3. occasionally a **writeback** of the evicted dirty line.
//!
//! Barrier-synchronized codes (Ocean, FMM, …) additionally emit, every
//! `barrier_every` misses, a per-core arrival message to a coordinator
//! and a release broadcast that gates every core's next phase. The
//! release makes all 64 cores fire their next miss broadcasts nearly
//! simultaneously — the storm that overflows Phastlane's 10-entry
//! buffers in §5.

use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::harness::{Dep, MsgId, Trace, TraceMessage};
use phastlane_netsim::packet::{DestSet, PacketKind};
use phastlane_netsim::rng::SimRng;

/// Memory latency in cycles (Table 4).
pub const MEMORY_LATENCY: u64 = 80;
/// Remote-cache access latency for cache-to-cache transfers.
pub const CACHE_LATENCY: u64 = 8;

/// Workload parameters for one benchmark (see [`crate::splash2`] for the
/// calibrated SPLASH2 set).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (figure label).
    pub name: &'static str,
    /// L2 misses each core suffers over the traced window.
    pub misses_per_core: usize,
    /// Fraction of misses that are writes/upgrades (GetX).
    pub write_fraction: f64,
    /// Fraction of misses served cache-to-cache (shared data) rather
    /// than from memory.
    pub shared_fraction: f64,
    /// Fraction of misses that also evict a dirty line (writeback).
    pub writeback_fraction: f64,
    /// Mean compute cycles between a core's consecutive misses.
    pub mean_gap: f64,
    /// Barrier phase length in misses (0 = no barriers).
    pub barrier_every: usize,
    /// Probability a response owner is the hot node (contended shared
    /// structures).
    pub hotspot_weight: f64,
    /// Outstanding-miss window per core (OoO MSHRs).
    pub outstanding: usize,
    /// Number of cores actively missing during the traced window (load
    /// imbalance; the rest only participate in barriers implicitly).
    pub active_cores: usize,
    /// RNG seed for this benchmark's trace.
    pub seed: u64,
}

impl BenchmarkProfile {
    /// Total misses across all cores for a mesh.
    pub fn total_misses(&self, mesh: Mesh) -> usize {
        self.misses_per_core * mesh.nodes()
    }
}

/// Generates a coherence trace for `profile` on `mesh`.
///
/// The result is deterministic in the profile's seed and passes
/// [`Trace::validate`].
///
/// # Panics
///
/// Panics if the profile has zero misses or a zero outstanding window.
pub fn generate_trace(mesh: Mesh, profile: &BenchmarkProfile) -> Trace {
    assert!(profile.misses_per_core > 0, "profile generates no misses");
    assert!(
        profile.outstanding > 0,
        "outstanding window must be positive"
    );
    assert!(profile.active_cores > 0, "need at least one active core");
    let mut rng = SimRng::seed_from_u64(profile.seed);
    let nodes = mesh.nodes();
    let active = profile.active_cores.min(nodes);
    let hot = NodeId((nodes / 2) as u16);
    let coordinator = hot;

    let mut messages: Vec<TraceMessage> = Vec::new();
    let mut next_id = 0u32;
    let mut fresh_id = move || {
        let id = MsgId(next_id);
        next_id += 1;
        id
    };

    // Per-core state across phases.
    let mut responses: Vec<Vec<MsgId>> = vec![Vec::new(); nodes]; // all resp ids, per core
    let mut issued: Vec<usize> = vec![0; nodes];
    let mut release: Option<MsgId> = None;

    let phase_len = if profile.barrier_every == 0 {
        profile.misses_per_core
    } else {
        profile.barrier_every
    };
    let phases = profile.misses_per_core.div_ceil(phase_len);

    for phase in 0..phases {
        let remaining = profile.misses_per_core - phase * phase_len;
        let this_phase = remaining.min(phase_len);

        // Misses of this phase, core-major. Only active cores miss;
        // inactive ones compute locally.
        for core_idx in 0..active {
            let core = NodeId(core_idx as u16);
            for _ in 0..this_phase {
                let i = issued[core_idx];
                let gap = sample_geometric(&mut rng, profile.mean_gap);

                let mut deps: Vec<Dep> = Vec::new();
                if i >= profile.outstanding {
                    // The window dep waits for the response to arrive at
                    // this core (responses are unicasts to the core).
                    deps.push(Dep::at(responses[core_idx][i - profile.outstanding], core));
                }
                // The first `outstanding` misses of a post-barrier phase
                // gate on the phase's release broadcast; later misses are
                // already chained to this phase's own responses through
                // the window dependency.
                if let Some(r) = release {
                    let local = i - phase * phase_len;
                    if local < profile.outstanding {
                        // The release is a broadcast; this core proceeds
                        // once its own copy arrives. The coordinator is
                        // not a destination of its own broadcast, so it
                        // waits for full delivery instead.
                        if core == coordinator {
                            deps.push(Dep::full(r));
                        } else {
                            deps.push(Dep::at(r, core));
                        }
                    }
                }

                let is_write = rng.gen_bool(profile.write_fraction);
                let req_kind = if is_write {
                    PacketKind::WriteRequest
                } else {
                    PacketKind::ReadRequest
                };
                let req_id = fresh_id();
                messages.push(TraceMessage {
                    id: req_id,
                    src: core,
                    dests: DestSet::Broadcast,
                    kind: req_kind,
                    // A small stagger floor for the dependency-free first
                    // misses; everything else is think-time driven.
                    earliest: if deps.is_empty() {
                        (core_idx as u64 % 8) + gap
                    } else {
                        0
                    },
                    deps,
                    think: gap,
                });

                let shared = rng.gen_bool(profile.shared_fraction);
                let owner = pick_other(&mut rng, nodes, core, hot, profile.hotspot_weight);
                let think = if shared {
                    CACHE_LATENCY
                } else {
                    MEMORY_LATENCY
                };
                let resp_id = fresh_id();
                messages.push(TraceMessage {
                    id: resp_id,
                    src: owner,
                    dests: DestSet::Unicast(core),
                    kind: PacketKind::DataResponse,
                    earliest: 0,
                    // The owner answers as soon as the broadcast request
                    // reaches *it* — not every snooper.
                    deps: vec![Dep::at(req_id, owner)],
                    think,
                });
                responses[core_idx].push(resp_id);

                if rng.gen_bool(profile.writeback_fraction) {
                    let home = pick_other(&mut rng, nodes, core, hot, 0.0);
                    messages.push(TraceMessage {
                        id: fresh_id(),
                        src: core,
                        dests: DestSet::Unicast(home),
                        kind: PacketKind::Writeback,
                        earliest: 0,
                        deps: vec![Dep::at(req_id, home)],
                        think: 0,
                    });
                }
                issued[core_idx] += 1;
            }
        }

        // Barrier: every core reports arrival once its outstanding misses
        // of the phase resolved; the coordinator's release broadcast
        // opens the next phase for everyone at once.
        let is_last = phase + 1 == phases;
        if profile.barrier_every > 0 && !is_last {
            let mut arrival_ids = Vec::with_capacity(active);
            for core_idx in 0..active {
                let core = NodeId(core_idx as u16);
                let tail = profile.outstanding.min(responses[core_idx].len());
                let deps: Vec<Dep> = responses[core_idx][responses[core_idx].len() - tail..]
                    .iter()
                    .map(|&r| Dep::at(r, core))
                    .collect();
                let arr_id = fresh_id();
                messages.push(TraceMessage {
                    id: arr_id,
                    src: core,
                    dests: DestSet::Unicast(coordinator),
                    kind: PacketKind::Data,
                    earliest: 0,
                    deps,
                    think: 1,
                });
                arrival_ids.push(arr_id);
            }
            let rel_id = fresh_id();
            messages.push(TraceMessage {
                id: rel_id,
                src: coordinator,
                dests: DestSet::Broadcast,
                kind: PacketKind::Invalidate,
                earliest: 0,
                deps: arrival_ids
                    .iter()
                    .zip(0..active)
                    .map(|(&a, core_idx)| {
                        if NodeId(core_idx as u16) == coordinator {
                            // The coordinator's own arrival is a self-send
                            // with no network destinations.
                            Dep::full(a)
                        } else {
                            Dep::at(a, coordinator)
                        }
                    })
                    .collect(),
                think: 1,
            });
            release = Some(rel_id);
        }
    }

    let trace = Trace { messages };
    debug_assert!(trace.validate().is_ok());
    trace
}

fn sample_geometric(rng: &mut SimRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    // Inverse-CDF exponential, rounded.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean * u.ln()).round() as u64
}

fn pick_other(rng: &mut SimRng, nodes: usize, not: NodeId, hot: NodeId, hot_weight: f64) -> NodeId {
    if hot != not && hot_weight > 0.0 && rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
        return hot;
    }
    loop {
        let n = NodeId(rng.gen_range(0..nodes) as u16);
        if n != not {
            return n;
        }
    }
}

/// Per-kind message counts of a trace (used by tests and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceProfile {
    /// Broadcast coherence requests.
    pub requests: usize,
    /// Unicast data responses.
    pub responses: usize,
    /// Writebacks.
    pub writebacks: usize,
    /// Barrier arrivals and releases.
    pub barrier_msgs: usize,
}

/// Summarizes a trace's message mix.
pub fn summarize(trace: &Trace) -> TraceProfile {
    let mut p = TraceProfile::default();
    for m in &trace.messages {
        match m.kind {
            PacketKind::ReadRequest | PacketKind::WriteRequest => p.requests += 1,
            PacketKind::DataResponse => p.responses += 1,
            PacketKind::Writeback => p.writebacks += 1,
            PacketKind::Data | PacketKind::Invalidate => p.barrier_msgs += 1,
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test",
            misses_per_core: 20,
            write_fraction: 0.3,
            shared_fraction: 0.6,
            writeback_fraction: 0.25,
            mean_gap: 30.0,
            barrier_every: 0,
            hotspot_weight: 0.1,
            outstanding: 4,
            active_cores: 64,
            seed: 11,
        }
    }

    #[test]
    fn trace_validates_and_has_expected_volume() {
        let t = generate_trace(Mesh::PAPER, &profile());
        assert!(t.validate().is_ok());
        let s = summarize(&t);
        assert_eq!(s.requests, 64 * 20);
        assert_eq!(s.responses, 64 * 20);
        let expect = (64.0 * 20.0 * 0.25) as usize;
        assert!(
            s.writebacks.abs_diff(expect) < expect / 2,
            "writebacks {}",
            s.writebacks
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_trace(Mesh::PAPER, &profile());
        let b = generate_trace(Mesh::PAPER, &profile());
        assert_eq!(a, b);
        let mut p2 = profile();
        p2.seed = 12;
        assert_ne!(generate_trace(Mesh::PAPER, &p2), a);
    }

    #[test]
    fn responses_depend_on_their_requests() {
        let t = generate_trace(Mesh::PAPER, &profile());
        let by_id: std::collections::HashMap<_, _> = t.messages.iter().map(|m| (m.id, m)).collect();
        for m in &t.messages {
            if m.kind == PacketKind::DataResponse {
                assert_eq!(m.deps.len(), 1);
                let req = by_id[&m.deps[0].msg];
                assert!(req.kind.is_snoop_broadcast());
                assert_eq!(m.dests, DestSet::Unicast(req.src));
            }
        }
    }

    #[test]
    fn window_dependency_throttles_cores() {
        let mut p = profile();
        p.outstanding = 2;
        let t = generate_trace(Mesh::PAPER, &p);
        let reqs: Vec<_> = t
            .messages
            .iter()
            .filter(|m| m.kind.is_snoop_broadcast() && m.src == NodeId(0))
            .collect();
        let with_dep = reqs.iter().filter(|m| !m.deps.is_empty()).count();
        assert_eq!(with_dep, reqs.len() - 2);
    }

    #[test]
    fn barriers_emit_arrivals_and_releases() {
        let mut p = profile();
        p.barrier_every = 5; // 20 misses -> 4 phases -> 3 barriers
        let t = generate_trace(Mesh::PAPER, &p);
        let s = summarize(&t);
        assert_eq!(s.barrier_msgs, 3 * (64 + 1));
        // Releases are broadcasts from the coordinator.
        let releases: Vec<_> = t
            .messages
            .iter()
            .filter(|m| m.kind == PacketKind::Invalidate)
            .collect();
        assert_eq!(releases.len(), 3);
        for r in releases {
            assert_eq!(r.deps.len(), 64, "release waits for every core's arrival");
            assert_eq!(r.dests, DestSet::Broadcast);
        }
    }

    #[test]
    fn post_barrier_misses_gate_on_release() {
        let mut p = profile();
        p.barrier_every = 5;
        p.outstanding = 2;
        let t = generate_trace(Mesh::PAPER, &p);
        let release_ids: std::collections::HashSet<MsgId> = t
            .messages
            .iter()
            .filter(|m| m.kind == PacketKind::Invalidate)
            .map(|m| m.id)
            .collect();
        let gated = t
            .messages
            .iter()
            .filter(|m| {
                m.kind.is_snoop_broadcast() && m.deps.iter().any(|d| release_ids.contains(&d.msg))
            })
            .count();
        // Each of 3 releases gates `outstanding` misses per core.
        assert_eq!(gated, 3 * 64 * 2);
    }

    #[test]
    fn hotspot_weight_concentrates_owners() {
        let mut p = profile();
        p.hotspot_weight = 0.9;
        let t = generate_trace(Mesh::PAPER, &p);
        let hot = NodeId(32);
        let resp: Vec<_> = t
            .messages
            .iter()
            .filter(|m| m.kind == PacketKind::DataResponse)
            .collect();
        let hot_owned = resp.iter().filter(|m| m.src == hot).count();
        assert!(
            hot_owned as f64 > 0.7 * resp.len() as f64,
            "{hot_owned}/{} responses from the hot node",
            resp.len()
        );
    }

    #[test]
    #[should_panic(expected = "no misses")]
    fn empty_profile_rejected() {
        let mut p = profile();
        p.misses_per_core = 0;
        let _ = generate_trace(Mesh::PAPER, &p);
    }
}
