//! Randomized property tests of the simulation substrate, driven by the
//! in-tree deterministic [`SimRng`]: every run checks the same cases,
//! so failures reproduce exactly.

use phastlane_netsim::geometry::{Coord, Direction, Mesh, NodeId};
use phastlane_netsim::packet::DestSet;
use phastlane_netsim::rng::SimRng;
use phastlane_netsim::routing::{classify_turn, xy_first_hop, xy_path_nodes, xy_route, Turn};
use phastlane_netsim::stats::LatencyStats;

fn random_mesh(rng: &mut SimRng) -> Mesh {
    Mesh::new(rng.gen_range(1u16..13), rng.gen_range(1u16..13))
}

fn random_mesh_and_pair(rng: &mut SimRng) -> (Mesh, NodeId, NodeId) {
    let mesh = random_mesh(rng);
    let n = mesh.nodes() as u16;
    (
        mesh,
        NodeId(rng.gen_range(0..n)),
        NodeId(rng.gen_range(0..n)),
    )
}

/// XY routes have exactly Manhattan-distance length and stay inside the
/// mesh.
#[test]
fn route_length_is_manhattan() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5101);
    for _ in 0..256 {
        let (mesh, src, dst) = random_mesh_and_pair(&mut rng);
        let route = xy_route(mesh, src, dst);
        assert_eq!(route.len() as u32, mesh.distance(src, dst));
        let mut cur = src;
        for dir in &route {
            cur = mesh.neighbor(cur, *dir).expect("route stays inside mesh");
        }
        assert_eq!(cur, dst);
    }
}

/// XY routes never U-turn and turn at most once.
#[test]
fn route_turns_at_most_once() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5102);
    for _ in 0..256 {
        let (mesh, src, dst) = random_mesh_and_pair(&mut rng);
        let route = xy_route(mesh, src, dst);
        let mut turns = 0;
        for w in route.windows(2) {
            assert_ne!(w[1], w[0].opposite(), "U-turn");
            if classify_turn(w[0], w[1]) != Turn::Straight {
                turns += 1;
            }
        }
        assert!(turns <= 1);
    }
}

/// The first hop reported matches the route, and the node path ends at
/// the destination.
#[test]
fn first_hop_and_path_consistent() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5103);
    for _ in 0..256 {
        let (mesh, src, dst) = random_mesh_and_pair(&mut rng);
        let route = xy_route(mesh, src, dst);
        assert_eq!(xy_first_hop(mesh, src, dst), route.first().copied());
        let path = xy_path_nodes(mesh, src, dst);
        assert_eq!(path.len(), route.len());
        if src != dst {
            assert_eq!(*path.last().unwrap(), dst);
        }
    }
}

/// Coordinates roundtrip through node ids for any mesh.
#[test]
fn coord_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5104);
    for _ in 0..64 {
        let mesh = random_mesh(&mut rng);
        for node in mesh.iter_nodes() {
            let c = mesh.coord(node);
            assert!(c.x < mesh.width() && c.y < mesh.height());
            assert_eq!(mesh.node_at(c), node);
        }
    }
}

/// Distance is a metric: symmetric, zero iff equal, triangle
/// inequality.
#[test]
fn distance_is_a_metric() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5105);
    for _ in 0..256 {
        let (mesh, a, b) = random_mesh_and_pair(&mut rng);
        let c = NodeId(rng.gen_range(0u16..144) % mesh.nodes() as u16);
        assert_eq!(mesh.distance(a, b), mesh.distance(b, a));
        assert_eq!(mesh.distance(a, b) == 0, a == b);
        assert!(mesh.distance(a, b) <= mesh.distance(a, c) + mesh.distance(c, b));
    }
}

/// Neighbour relationships are involutive and stay in bounds.
#[test]
fn neighbors_involutive() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5106);
    for _ in 0..64 {
        let mesh = random_mesh(&mut rng);
        for node in mesh.iter_nodes() {
            for dir in Direction::ALL {
                if let Some(n) = mesh.neighbor(node, dir) {
                    assert!(mesh.contains(n));
                    assert_eq!(mesh.neighbor(n, dir.opposite()), Some(node));
                    let (ca, cb) = (mesh.coord(node), mesh.coord(n));
                    assert_eq!(
                        (i32::from(ca.x) - i32::from(cb.x)).abs()
                            + (i32::from(ca.y) - i32::from(cb.y)).abs(),
                        1
                    );
                }
            }
        }
    }
}

/// DestSet expansion never contains the source, never duplicates, and
/// broadcast covers everything else.
#[test]
fn dest_expansion_invariants() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5107);
    for _ in 0..128 {
        let src = NodeId(rng.gen_range(0u16..64));
        let list: Vec<NodeId> = (0..rng.gen_range(0usize..10))
            .map(|_| NodeId(rng.gen_range(0u16..64)))
            .collect();
        let sets = [DestSet::Broadcast, DestSet::Multicast(list)];
        for set in sets {
            let expanded = set.expand(src, 64);
            assert!(!expanded.contains(&src));
            let mut dedup = expanded.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), expanded.len(), "no duplicates");
            if matches!(set, DestSet::Broadcast) {
                assert_eq!(expanded.len(), 63);
            }
        }
    }
}

/// Merging latency summaries equals recording into one.
#[test]
fn latency_merge_equivalent() {
    let mut rng = SimRng::seed_from_u64(0x04E7_5108);
    for _ in 0..128 {
        let a: Vec<u64> = (0..rng.gen_range(0usize..40))
            .map(|_| rng.gen_range(0u64..10_000))
            .collect();
        let b: Vec<u64> = (0..rng.gen_range(0usize..40))
            .map(|_| rng.gen_range(0u64..10_000))
            .collect();
        let mut merged = LatencyStats::new();
        let mut left = LatencyStats::new();
        let mut right = LatencyStats::new();
        for &v in &a {
            left.record(v);
            merged.record(v);
        }
        for &v in &b {
            right.record(v);
            merged.record(v);
        }
        left.merge(&right);
        assert_eq!(left, merged);
    }
}

/// Transposing a coordinate twice is the identity (sanity of Coord).
#[test]
fn coord_transpose_involutive() {
    for x in 0u16..12 {
        for y in 0u16..12 {
            let mesh = Mesh::new(12, 12);
            let n = mesh.node_at(Coord { x, y });
            let t = mesh.node_at(Coord { x: y, y: x });
            let tt = {
                let c = mesh.coord(t);
                mesh.node_at(Coord { x: c.y, y: c.x })
            };
            assert_eq!(tt, n);
        }
    }
}

mod ecc_props {
    use phastlane_netsim::ecc::{decode, encode, Decoded};
    use phastlane_netsim::rng::SimRng;

    /// Clean code words always decode to themselves.
    #[test]
    fn clean_roundtrip() {
        let mut rng = SimRng::seed_from_u64(0x000E_CC01);
        for _ in 0..256 {
            let data = rng.gen_u64();
            assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }
    }

    /// Any single bit flip (data or check) is corrected back to the
    /// original data.
    #[test]
    fn single_flip_corrected() {
        let mut rng = SimRng::seed_from_u64(0x000E_CC02);
        for _ in 0..16 {
            let data = rng.gen_u64();
            for bit in 0u32..72 {
                let mut cw = encode(data);
                if bit < 64 {
                    cw.data ^= 1 << bit;
                } else {
                    cw.check ^= 1 << (bit - 64);
                }
                assert_eq!(decode(cw), Decoded::Corrected(data), "bit={bit}");
            }
        }
    }

    /// Any double flip across data and check bits is detected, never
    /// silently miscorrected.
    #[test]
    fn double_flip_detected() {
        let mut rng = SimRng::seed_from_u64(0x000E_CC03);
        for _ in 0..4 {
            let data = rng.gen_u64();
            for a in 0u32..72 {
                for b in 0u32..72 {
                    if a == b {
                        continue;
                    }
                    let mut cw = encode(data);
                    for bit in [a, b] {
                        if bit < 64 {
                            cw.data ^= 1 << bit;
                        } else {
                            cw.check ^= 1 << (bit - 64);
                        }
                    }
                    assert_eq!(decode(cw), Decoded::Uncorrectable, "bits=({a},{b})");
                }
            }
        }
    }
}
