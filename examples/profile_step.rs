//! Section-level timing of the synthetic harness on a hot Figure-9 cell
//! (uniform 0.20 on Optical4): workload generation + injection, network
//! step, and delivery drain, so hot-path work is attributable without an
//! external profiler.
//!
//! Run with: `cargo run --release --example profile_step`

use phastlane_repro::netsim::packet::NewPacket;
use phastlane_repro::netsim::Mesh;
use phastlane_repro::netsim::Network;
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::{BernoulliTraffic, Pattern};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

fn main() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let mut workload = BernoulliTraffic::new(Mesh::PAPER, Pattern::Uniform, 0.20, 42);
    let nodes = net.mesh().nodes();
    let cycles = 40_000u64;

    let mut queues: Vec<VecDeque<NewPacket>> = vec![VecDeque::new(); nodes];
    let mut t_gen = Duration::ZERO;
    let mut t_inject = Duration::ZERO;
    let mut t_step = Duration::ZERO;
    let mut t_drain = Duration::ZERO;
    let mut delivered = 0u64;

    let start = Instant::now();
    for cycle in 0..cycles {
        let t0 = Instant::now();
        use phastlane_repro::netsim::harness::SyntheticWorkload;
        let generated = workload.generate(cycle);
        let t1 = Instant::now();
        for p in generated {
            queues[p.src.index()].push_back(p);
        }
        for q in &mut queues {
            while let Some(p) = q.front() {
                if net.inject(p.clone()).is_some() {
                    q.pop_front();
                } else {
                    break;
                }
            }
        }
        let t2 = Instant::now();
        net.step();
        let t3 = Instant::now();
        delivered += net.drain_deliveries().len() as u64;
        let t4 = Instant::now();
        t_gen += t1 - t0;
        t_inject += t2 - t1;
        t_step += t3 - t2;
        t_drain += t4 - t3;
    }
    let total = start.elapsed();
    println!("cycles: {cycles}, delivered: {delivered}");
    let pct = |d: Duration| 100.0 * d.as_secs_f64() / total.as_secs_f64();
    println!("gen:    {:>8.1?}  {:>5.1}%", t_gen, pct(t_gen));
    println!("inject: {:>8.1?}  {:>5.1}%", t_inject, pct(t_inject));
    println!("step:   {:>8.1?}  {:>5.1}%", t_step, pct(t_step));
    println!("drain:  {:>8.1?}  {:>5.1}%", t_drain, pct(t_drain));
    println!(
        "total:  {:>8.1?}  ({:.0} cycles/s)",
        total,
        cycles as f64 / total.as_secs_f64()
    );
    let st = net.stats();
    println!(
        "injected {} delivered {} dropped {} retransmitted {} optical_links {}",
        st.injected,
        st.delivered,
        st.dropped,
        st.retransmitted,
        net.link_counters().total()
    );
}
