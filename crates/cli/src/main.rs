//! Thin binary wrapper; see `lib.rs` for the command implementations.

use phastlane_cli::{args, commands};
use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Parsed::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{}", commands::usage());
            ExitCode::FAILURE
        }
    }
}
