//! Wavelength-division-multiplexing packaging of the Phastlane packet.
//!
//! A Phastlane packet is a single flit of 80 bytes: a 64-byte cache line of
//! Data plus Address, Operation Type, Source ID, Error Detection/Correction
//! and miscellaneous bits (640 payload bits total), and 70 bits of Router
//! Control (14 groups of 5 predecoded routing bits). The payload is spread
//! over payload waveguides with `payload_wdm`-way WDM; the control bits
//! always travel in two waveguides (C0 and C1) with 35-way WDM (Table 1,
//! Figure 3).

/// Number of payload bits in a packet (80-byte flit minus router control).
pub const PAYLOAD_BITS: u32 = 640;
/// Number of router-control bits (14 groups x 5 bits).
pub const CONTROL_BITS: u32 = 70;
/// WDM degree of the two control waveguides.
pub const CONTROL_WDM: u32 = 35;
/// Number of control waveguides (C0 and C1).
pub const CONTROL_WAVEGUIDES: u32 = 2;
/// Bits carried on the drop-signal return path (Packet Dropped + 6-bit
/// Node ID, §2.1.2).
pub const RETURN_PATH_BITS: u32 = 7;

/// WDM packaging of one router channel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WdmConfig {
    /// WDM degree of the payload waveguides (32, 64, or 128 in the paper's
    /// design-space exploration; 64 in the final configuration).
    pub payload_wdm: u32,
}

impl WdmConfig {
    /// The paper's final configuration: 64-way WDM (Table 1).
    pub const PAPER: WdmConfig = WdmConfig { payload_wdm: 64 };

    /// The design-space sweep of §3: 32-, 64-, and 128-way WDM.
    pub const SWEEP: [WdmConfig; 3] = [
        WdmConfig { payload_wdm: 32 },
        WdmConfig { payload_wdm: 64 },
        WdmConfig { payload_wdm: 128 },
    ];

    /// Creates a configuration with the given payload WDM degree.
    ///
    /// # Panics
    ///
    /// Panics if `payload_wdm` is zero.
    pub fn new(payload_wdm: u32) -> Self {
        assert!(payload_wdm > 0, "payload WDM degree must be positive");
        WdmConfig { payload_wdm }
    }

    /// Number of payload waveguides (D0..Dn): `ceil(640 / wdm)`.
    /// 10 for the paper's 64-way configuration.
    pub fn payload_waveguides(self) -> u32 {
        PAYLOAD_BITS.div_ceil(self.payload_wdm)
    }

    /// Total waveguides per channel direction: payload plus the two control
    /// waveguides. 12 for the paper's configuration.
    pub fn total_waveguides(self) -> u32 {
        self.payload_waveguides() + CONTROL_WAVEGUIDES
    }

    /// Total optical bit-channels per packet transmission (payload +
    /// control). Constant (710) regardless of the WDM degree: more WDM
    /// means fewer waveguides, not fewer bits.
    pub fn packet_channels(self) -> u32 {
        PAYLOAD_BITS + CONTROL_BITS
    }
}

impl Default for WdmConfig {
    fn default() -> Self {
        WdmConfig::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_table1() {
        let c = WdmConfig::PAPER;
        assert_eq!(c.payload_wdm, 64);
        assert_eq!(c.payload_waveguides(), 10);
        assert_eq!(c.total_waveguides(), 12);
        assert_eq!(c.packet_channels(), 710);
    }

    #[test]
    fn sweep_waveguide_counts() {
        let counts: Vec<u32> = WdmConfig::SWEEP
            .iter()
            .map(|c| c.total_waveguides())
            .collect();
        assert_eq!(counts, vec![22, 12, 7]);
    }

    #[test]
    fn non_dividing_wdm_rounds_up() {
        assert_eq!(WdmConfig::new(100).payload_waveguides(), 7); // 640/100 -> 6.4
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_wdm_rejected() {
        let _ = WdmConfig::new(0);
    }

    #[test]
    fn packet_channels_independent_of_wdm() {
        for c in WdmConfig::SWEEP {
            assert_eq!(c.packet_channels(), 710);
        }
    }
}
