//! Link-level telemetry: per-directed-link traversal counters and ASCII
//! heatmap rendering, for understanding *where* a network congests
//! (e.g. the column-entry turn ports during Phastlane broadcast storms).

use crate::geometry::{Direction, Mesh, NodeId, Port};

/// Traversal counters per directed link `(from, direction)`.
///
/// Stored as a dense array indexed by `node * 4 + direction` — the hot
/// path records a traversal per optical hop, so this must be a plain
/// add, not a hash probe. Networks pre-size the array from their mesh
/// via [`for_mesh`](LinkCounters::for_mesh) so the hot-path
/// [`record`](LinkCounters::record) never reallocates; a
/// default-constructed counter still grows on demand to the highest
/// node seen, and absent entries read as zero, exactly like the former
/// map.
#[derive(Debug, Clone, Default)]
pub struct LinkCounters {
    counts: Vec<u64>,
}

/// Flattened index of the directed link `(from, dir)`. Direction order
/// matches [`Port::index`] (N, S, E, W), which is also `Direction`'s
/// declaration (and `Ord`) order.
#[inline]
fn link_index(from: NodeId, dir: Direction) -> usize {
    from.index() * 4 + Port::Dir(dir).index()
}

impl LinkCounters {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates counters pre-sized for every directed link of `mesh`, so
    /// the hot-path [`record`](Self::record) branch never resizes.
    pub fn for_mesh(mesh: Mesh) -> Self {
        LinkCounters {
            counts: vec![0; mesh.nodes() * 4],
        }
    }

    /// Records one traversal of the link leaving `from` toward `dir`.
    #[inline]
    pub fn record(&mut self, from: NodeId, dir: Direction) {
        let idx = link_index(from, dir);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The count for one link.
    pub fn get(&self, from: NodeId, dir: Direction) -> u64 {
        self.counts.get(link_index(from, dir)).copied().unwrap_or(0)
    }

    /// Total traversals.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `n` busiest links, descending. Ties break by node id, then
    /// direction — a total order, and never-traversed links are omitted
    /// (they were absent from the former map).
    pub fn hottest(&self, n: usize) -> Vec<((NodeId, Direction), u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| ((NodeId((i / 4) as u16), Direction::ALL[i % 4]), c))
            .collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0 .0.cmp(&b.0 .0))
                .then(a.0 .1.cmp(&b.0 .1))
        });
        v.truncate(n);
        v
    }

    /// Outbound traversals summed per node.
    pub fn per_node(&self, mesh: Mesh) -> Vec<u64> {
        let mut out = vec![0u64; mesh.nodes()];
        for (i, &c) in self.counts.iter().enumerate() {
            let from = NodeId((i / 4) as u16);
            if mesh.contains(from) {
                out[from.index()] += c;
            }
        }
        out
    }

    /// Renders per-node outbound load as an ASCII intensity grid.
    pub fn heatmap(&self, mesh: Mesh) -> String {
        render_heatmap(mesh, &self.per_node(mesh))
    }
}

/// Intensity ramp, low to high.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Widest grid the renderer prints before aggregating (each cell costs
/// two columns, so 64 cells ≈ a 128-column terminal).
const MAX_HEAT_COLS: usize = 64;

/// Tallest grid the renderer prints before aggregating.
const MAX_HEAT_ROWS: usize = 48;

/// Renders arbitrary per-node values as a `width x height` intensity
/// grid (row 0 on top), with the scale printed underneath.
///
/// Meshes wider than 64 cells or taller than 48 degrade gracefully
/// instead of emitting an unreadable dump: nodes are grouped into
/// rectangular blocks, each cell shows the **max** of its block (so
/// hotspots survive aggregation), and the footer names the block size.
/// Small meshes render exactly as before.
///
/// # Panics
///
/// Panics if `values.len() != mesh.nodes()`.
pub fn render_heatmap(mesh: Mesh, values: &[u64]) -> String {
    assert_eq!(values.len(), mesh.nodes(), "one value per node");
    let width = usize::from(mesh.width());
    let height = usize::from(mesh.height());
    // Block size per axis: 1 for small meshes (identity), else the
    // smallest grouping that fits the cap.
    let bx = width.div_ceil(MAX_HEAT_COLS).max(1);
    let by = height.div_ceil(MAX_HEAT_ROWS).max(1);
    let cols = width.div_ceil(bx);
    let rows = height.div_ceil(by);
    // Max-of-block aggregation (identity when bx == by == 1).
    let mut cells = vec![0u64; cols * rows];
    for y in 0..height {
        for x in 0..width {
            let cell = &mut cells[(y / by) * cols + x / bx];
            *cell = (*cell).max(values[y * width + x]);
        }
    }
    let max = cells.iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for y in 0..rows {
        let mut row = String::new();
        for x in 0..cols {
            let v = cells[y * cols + x];
            let idx = if max == 0 {
                0
            } else {
                ((v as f64 / max as f64) * (RAMP.len() - 1) as f64).round() as usize
            };
            row.push(RAMP[idx] as char);
            row.push(' ');
        }
        out.push_str(row.trim_end());
        out.push('\n');
    }
    out.push_str(&format!("scale: ' '=0 .. '@'={max}\n"));
    if bx > 1 || by > 1 {
        out.push_str(&format!("(each cell = max over a {bx}x{by} node block)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = LinkCounters::new();
        c.record(NodeId(0), Direction::East);
        c.record(NodeId(0), Direction::East);
        c.record(NodeId(1), Direction::South);
        assert_eq!(c.get(NodeId(0), Direction::East), 2);
        assert_eq!(c.get(NodeId(0), Direction::West), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn hottest_orders_descending() {
        let mut c = LinkCounters::new();
        for _ in 0..5 {
            c.record(NodeId(3), Direction::North);
        }
        for _ in 0..9 {
            c.record(NodeId(7), Direction::West);
        }
        c.record(NodeId(1), Direction::East);
        let h = c.hottest(2);
        assert_eq!(h[0], ((NodeId(7), Direction::West), 9));
        assert_eq!(h[1], ((NodeId(3), Direction::North), 5));
    }

    #[test]
    fn hottest_ties_break_deterministically() {
        // Four same-count links on two nodes: the order must be fully
        // determined — (count desc, node asc, direction asc) — no matter
        // how the HashMap happens to iterate.
        let mut c = LinkCounters::new();
        for (node, dir) in [
            (NodeId(5), Direction::West),
            (NodeId(5), Direction::North),
            (NodeId(2), Direction::South),
            (NodeId(2), Direction::East),
        ] {
            c.record(node, dir);
        }
        let h = c.hottest(4);
        assert_eq!(
            h.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![
                (NodeId(2), Direction::East.min(Direction::South)),
                (NodeId(2), Direction::East.max(Direction::South)),
                (NodeId(5), Direction::North.min(Direction::West)),
                (NodeId(5), Direction::North.max(Direction::West)),
            ]
        );
        // Stability across repeated calls.
        assert_eq!(c.hottest(4), h);
    }

    #[test]
    fn per_node_sums_outbound() {
        let mut c = LinkCounters::new();
        c.record(NodeId(0), Direction::East);
        c.record(NodeId(0), Direction::South);
        let v = c.per_node(Mesh::new(2, 2));
        assert_eq!(v, vec![2, 0, 0, 0]);
    }

    #[test]
    fn heatmap_shape_and_scale() {
        let mesh = Mesh::new(3, 2);
        let hm = render_heatmap(mesh, &[0, 5, 10, 0, 0, 10]);
        let lines: Vec<&str> = hm.lines().collect();
        assert_eq!(lines.len(), 3);
        // values 0,5,10 map to ' ', '+', '@' on the 10-step ramp.
        assert_eq!(lines[0], "  + @");
        assert_eq!(lines[1], "    @");
        assert!(lines[2].contains("'@'=10"));
    }

    #[test]
    fn all_zero_heatmap_is_blank() {
        let hm = render_heatmap(Mesh::new(2, 1), &[0, 0]);
        assert!(hm.starts_with('\n'), "blank row trims to empty: {hm:?}");
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn wrong_length_rejected() {
        let _ = render_heatmap(Mesh::new(2, 2), &[1, 2, 3]);
    }

    #[test]
    fn for_mesh_pre_sizes_every_link() {
        let mesh = Mesh::new(4, 4);
        let mut c = LinkCounters::for_mesh(mesh);
        assert_eq!(c.counts.len(), mesh.nodes() * 4, "no hot-path growth");
        // Recording the very last link must not resize.
        let last = NodeId((mesh.nodes() - 1) as u16);
        c.record(last, Direction::West);
        assert_eq!(c.counts.len(), mesh.nodes() * 4);
        assert_eq!(c.get(last, Direction::West), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn large_mesh_heatmap_aggregates_to_terminal_width() {
        // A 128x2 mesh would print 256 columns raw; the renderer groups
        // nodes 2-wide so the grid fits, and a hotspot survives because
        // cells take the max of their block.
        let mesh = Mesh::new(128, 2);
        let mut values = vec![1u64; mesh.nodes()];
        values[130] = 10; // row 1, x=2 → aggregated cell (1, 1)
        let hm = render_heatmap(mesh, &values);
        let lines: Vec<&str> = hm.lines().collect();
        assert_eq!(lines.len(), 4, "2 rows + scale + aggregation note");
        assert!(lines[0].len() <= 2 * 64, "fits the column cap");
        assert_eq!(lines[1].as_bytes()[2], b'@', "hotspot survives max-pool");
        assert!(lines[3].contains("2x1 node block"), "{hm}");
        // 1024-node square mesh (ROADMAP item 2) stays readable too.
        let mesh = Mesh::new(32, 32);
        let hm = render_heatmap(mesh, &vec![3u64; mesh.nodes()]);
        assert!(!hm.contains("node block"), "32x32 needs no aggregation");
        assert_eq!(hm.lines().count(), 33);
    }
}
