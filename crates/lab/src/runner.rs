//! Builds networks by name and executes one lab job end-to-end.
//!
//! A job runs entirely on the calling thread: the network is built,
//! faulted, driven, and dropped here, so nothing but the plain-data
//! [`JobRecord`] ever crosses a thread boundary. Everything the job does
//! is seeded from [`JobSpec::seed`] / [`JobSpec::fault_seed`] — both
//! pure functions of the spec — which is what makes the scheduler's
//! worker count invisible in the results.

use crate::report::{JobOutcome, JobRecord};
use crate::spec::{JobSpec, LabSpec, SabotageKind, Work};
use phastlane_core::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_netsim::fault::{Fault, FaultKind, FaultPlan};
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::harness::{
    run_synthetic_lockstep_watched, run_synthetic_watched, run_trace_guarded, SyntheticOptions,
    SyntheticResult, TraceOptions,
};
use phastlane_netsim::network::Network;
use phastlane_netsim::obs::PhaseProfiler;
use phastlane_netsim::watchdog::{CancelToken, Watchdog};
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;
use phastlane_traffic::synthetic::BernoulliTraffic;
use phastlane_traffic::Pattern;
use std::time::Instant;

/// Every network configuration name [`build_network`] accepts.
pub const NETWORKS: [&str; 9] = [
    "optical4",
    "optical5",
    "optical8",
    "optical4b32",
    "optical4b64",
    "optical4ib",
    "optical4sp50",
    "electrical2",
    "electrical3",
];

/// Whether `name` is a known network configuration (case-insensitive).
pub fn known_network(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    NETWORKS.contains(&lower.as_str())
}

/// Builds a network from its configuration name, with an optional
/// retry-limit override (the fault subsystem's livelock guard; only
/// meaningful for the optical configs).
///
/// The box is `Send` so jobs can run on worker threads.
///
/// # Errors
///
/// Errors on an unknown name.
pub fn build_network(
    name: &str,
    mesh: Mesh,
    retry_limit: Option<u32>,
) -> Result<Box<dyn Network + Send>, String> {
    let optical = |mut cfg: PhastlaneConfig| -> Box<dyn Network + Send> {
        cfg.mesh = mesh;
        if let Some(limit) = retry_limit {
            cfg.retry_limit = limit;
        }
        Box::new(PhastlaneNetwork::new(cfg))
    };
    let electrical = |mut cfg: ElectricalConfig| -> Box<dyn Network + Send> {
        cfg.mesh = mesh;
        Box::new(ElectricalNetwork::new(cfg))
    };
    Ok(match name.to_ascii_lowercase().as_str() {
        "optical4" => optical(PhastlaneConfig::optical4()),
        "optical5" => optical(PhastlaneConfig::optical5()),
        "optical8" => optical(PhastlaneConfig::optical8()),
        "optical4b32" => optical(PhastlaneConfig::optical4_b32()),
        "optical4b64" => optical(PhastlaneConfig::optical4_b64()),
        "optical4ib" => optical(PhastlaneConfig::optical4_ib()),
        "optical4sp50" => optical(PhastlaneConfig::optical4_shared_pool()),
        "electrical3" => electrical(ElectricalConfig::electrical3()),
        "electrical2" => electrical(ElectricalConfig::electrical2()),
        other => {
            return Err(format!(
                "unknown network {other:?}; known: {}",
                NETWORKS.join(" ")
            ))
        }
    })
}

/// Builds one job's network with the spec's retry policy and fault plan
/// applied: faulted jobs default to the chaos soak's tight retry cap so
/// the drain phase terminates; fault-free jobs run uncapped. When the
/// spec asks for profiling, a [`PhaseProfiler`] is attached — pure
/// observation, so the canonical results are unchanged.
fn build_job_network(spec: &LabSpec, job: &JobSpec) -> Result<Box<dyn Network + Send>, String> {
    let retry_limit = spec
        .retry_limit
        .or_else(|| (job.intensity > 0.0).then_some(50));
    let mut net = build_network(&job.net, spec.mesh, retry_limit)?;
    if spec.sabotage_for(job.index) == Some(SabotageKind::Livelock) {
        // Deliberate livelock (harness testing): every router wedges
        // permanently, so packets queue but never move and the
        // watchdog's livelock detector must fire. Overrides the job's
        // regular fault plan.
        let mut plan = FaultPlan::new();
        for node in 0..spec.mesh.nodes() {
            plan.push(Fault::permanent(FaultKind::RouterStuck {
                node: NodeId(node as u16),
            }));
        }
        net.set_fault_plan(plan, job.fault_seed);
    } else if job.intensity > 0.0 {
        let plan = FaultPlan::random(spec.mesh, job.fault_seed, job.intensity);
        net.set_fault_plan(plan, job.fault_seed);
    }
    if spec.profile > 0 {
        net.set_phase_profiler(PhaseProfiler::enabled(spec.profile));
    }
    Ok(net)
}

/// Default livelock window armed for sabotaged-livelock jobs when the
/// spec does not set one, so the deliberate wedge is detected instead of
/// burning the whole drain allowance.
const SABOTAGE_LIVELOCK_WINDOW: u64 = 2_000;

/// Builds one job's watchdog from the spec's supervision keys (plus the
/// supervisor's cancellation token, when running supervised). Returns
/// `None` when nothing is armed — the drive then pays only one branch
/// per cycle.
pub fn watchdog_for(
    spec: &LabSpec,
    job: &JobSpec,
    cancel: Option<&CancelToken>,
) -> Option<Watchdog> {
    let mut wd = Watchdog::new();
    if let Some(b) = spec.cycle_budget {
        wd = wd.with_cycle_budget(b);
    }
    let mut window = spec.livelock_window;
    if spec.sabotage_for(job.index) == Some(SabotageKind::Livelock) && window.is_none() {
        window = Some(SABOTAGE_LIVELOCK_WINDOW);
    }
    if let Some(w) = window {
        wd = wd.with_livelock_window(w);
    }
    if let Some(s) = spec.wall_budget {
        wd = wd.with_wall_budget(std::time::Duration::from_secs_f64(s));
    }
    if let Some(token) = cancel {
        wd = wd.with_cancel(token.clone());
    }
    wd.is_armed().then_some(wd)
}

/// Summarizes one synthetic run as its job's record (wall clock still
/// zero; the caller attributes it).
fn synthetic_record(job: &JobSpec, pattern: &Pattern, rate: f64, r: SyntheticResult) -> JobRecord {
    let stable = r.unfinished == 0 && r.delivered_rate >= 0.90 * r.offered_rate;
    // A watchdog interrupt makes the metrics partial: the job is marked
    // timed out, carries the verdict as its outcome, and abstains from
    // the stability vote (so saturation curves only see full runs).
    let outcome = match &r.interrupt {
        Some(i) => JobOutcome::TimedOut { reason: i.reason() },
        None => JobOutcome::Completed,
    };
    let interrupted = r.interrupt.is_some();
    JobRecord {
        index: job.index,
        net: job.net.clone(),
        pattern: Some(pattern.name().to_string()),
        rate: Some(rate),
        benchmark: None,
        intensity: job.intensity,
        replica: job.replica,
        seed: job.seed,
        cycles: r.perf.cycles,
        latency: r.latency,
        energy_pj: r.energy.total_pj(),
        offered_rate: Some(r.offered_rate),
        accepted_rate: Some(r.accepted_rate),
        delivered_rate: Some(r.delivered_rate),
        completion_cycle: None,
        unfinished: r.unfinished,
        undeliverable: r.undeliverable,
        timed_out: interrupted,
        stable: if interrupted { None } else { Some(stable) },
        outcome,
        wall_seconds: 0.0,
        phases: r.perf.phases,
    }
}

/// The effective synthetic drive options for one job. A
/// sabotaged-livelock job gets its drain stretched so the watchdog —
/// not the drain allowance — is what ends it, at a deterministic cycle.
fn synthetic_opts(spec: &LabSpec, job: &JobSpec) -> SyntheticOptions {
    let drain = if spec.sabotage_for(job.index) == Some(SabotageKind::Livelock) {
        spec.drain.max(1_000_000)
    } else {
        spec.drain
    };
    SyntheticOptions {
        warmup: spec.warmup,
        measure: spec.measure,
        drain,
    }
}

/// Runs a group of same-cell synthetic replicas in one lockstep batch
/// (see [`run_synthetic_lockstep`]) and summarizes each. Results are
/// bit-identical to running the jobs one by one; each record's wall
/// clock is the batch wall divided evenly across the lanes.
///
/// # Errors
///
/// Errors on an unknown network name, or if any job is not synthetic
/// (the scheduler only groups synthetic replicas).
pub fn run_job_batch(spec: &LabSpec, jobs: &[JobSpec]) -> Result<Vec<JobRecord>, String> {
    run_job_batch_watched(spec, jobs, None)
}

/// [`run_job_batch`] with per-lane watchdogs armed from the spec's
/// supervision keys (and the supervisor's cancellation token, if any).
/// An interrupted lane stops ticking; the others run to completion.
///
/// # Errors
///
/// Same as [`run_job_batch`].
pub fn run_job_batch_watched(
    spec: &LabSpec,
    jobs: &[JobSpec],
    cancel: Option<&CancelToken>,
) -> Result<Vec<JobRecord>, String> {
    let wall_start = Instant::now();
    let mut nets = Vec::with_capacity(jobs.len());
    let mut workloads = Vec::with_capacity(jobs.len());
    let mut cells = Vec::with_capacity(jobs.len());
    for job in jobs {
        let Work::Synthetic { pattern, rate } = &job.work else {
            return Err(format!(
                "job {} in a batch group is not synthetic",
                job.index
            ));
        };
        nets.push(build_job_network(spec, job)?);
        workloads.push(BernoulliTraffic::new(spec.mesh, *pattern, *rate, job.seed));
        cells.push((pattern, *rate));
    }
    // The scheduler never batches sabotaged jobs, so one shared options
    // struct (no per-lane drain bump) is correct here.
    let results = run_synthetic_lockstep_watched(
        &mut nets,
        &mut workloads,
        SyntheticOptions {
            warmup: spec.warmup,
            measure: spec.measure,
            drain: spec.drain,
        },
        |lane| watchdog_for(spec, &jobs[lane], cancel),
    );
    let wall_share = wall_start.elapsed().as_secs_f64() / jobs.len().max(1) as f64;
    Ok(jobs
        .iter()
        .zip(cells)
        .zip(results)
        .map(|((job, (pattern, rate)), r)| {
            let mut rec = synthetic_record(job, pattern, rate, r);
            rec.wall_seconds = wall_share;
            rec
        })
        .collect())
}

/// Runs one job of the expanded matrix and summarizes it.
///
/// # Errors
///
/// Errors on an unknown network or benchmark name (normally caught at
/// spec-parse time already).
pub fn run_job(spec: &LabSpec, job: &JobSpec) -> Result<JobRecord, String> {
    run_job_watched(spec, job, None)
}

/// [`run_job`] with a watchdog armed from the spec's supervision keys
/// (and the supervisor's cancellation token, if any).
///
/// # Errors
///
/// Same as [`run_job`].
pub fn run_job_watched(
    spec: &LabSpec,
    job: &JobSpec,
    cancel: Option<&CancelToken>,
) -> Result<JobRecord, String> {
    let wall_start = Instant::now();
    let mut net = build_job_network(spec, job)?;
    let watchdog = watchdog_for(spec, job, cancel);

    let mut rec = match &job.work {
        Work::Synthetic { pattern, rate } => {
            let mut workload = BernoulliTraffic::new(spec.mesh, *pattern, *rate, job.seed);
            let r =
                run_synthetic_watched(&mut net, &mut workload, synthetic_opts(spec, job), watchdog);
            synthetic_record(job, pattern, *rate, r)
        }
        Work::Replay { benchmark } => {
            let mut profile = splash2::benchmark(benchmark)
                .ok_or_else(|| format!("unknown benchmark {benchmark:?}"))?;
            profile.misses_per_core =
                ((profile.misses_per_core as f64 * spec.scale).round() as usize).max(2);
            if spec.mesh != Mesh::PAPER {
                profile.active_cores = profile.active_cores.min(spec.mesh.nodes());
            }
            profile.seed = job.seed;
            let trace = generate_trace(spec.mesh, &profile);
            let r = run_trace_guarded(
                &mut net,
                &trace,
                TraceOptions {
                    max_cycles: spec.max_cycles,
                },
                None,
                watchdog,
            );
            let outcome = match &r.interrupt {
                Some(i) => JobOutcome::TimedOut { reason: i.reason() },
                None => JobOutcome::Completed,
            };
            JobRecord {
                index: job.index,
                net: job.net.clone(),
                pattern: None,
                rate: None,
                benchmark: Some(benchmark.clone()),
                intensity: job.intensity,
                replica: job.replica,
                seed: job.seed,
                cycles: r.perf.cycles,
                latency: r.latency,
                energy_pj: r.energy.total_pj(),
                offered_rate: None,
                accepted_rate: None,
                delivered_rate: None,
                completion_cycle: Some(r.completion_cycle),
                unfinished: 0,
                undeliverable: r.undeliverable,
                timed_out: r.timed_out,
                stable: None,
                outcome,
                wall_seconds: 0.0,
                phases: r.perf.phases,
            }
        }
    };
    rec.wall_seconds = wall_start.elapsed().as_secs_f64();
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::expand;

    #[test]
    fn every_advertised_network_builds() {
        for n in NETWORKS {
            assert!(known_network(n), "{n}");
            assert!(build_network(n, Mesh::new(4, 4), None).is_ok(), "{n}");
        }
        assert!(!known_network("warp-drive"));
        assert!(build_network("warp-drive", Mesh::new(4, 4), None).is_err());
    }

    #[test]
    fn synthetic_job_is_reproducible() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.03\n\
             warmup 100\nmeasure 400\ndrain 1000\n",
        )
        .unwrap();
        let jobs = expand(&spec);
        assert_eq!(jobs.len(), 1);
        let a = run_job(&spec, &jobs[0]).unwrap();
        let b = run_job(&spec, &jobs[0]).unwrap();
        assert!(a.latency.count() > 0, "some packets measured");
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.delivered_rate, b.delivered_rate);
        assert_eq!(a.energy_pj, b.energy_pj);
    }

    #[test]
    fn replay_job_completes() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets electrical2\npatterns uniform\nrates 0.02\n\
             benchmarks LU\nscale 0.02\nwarmup 50\nmeasure 100\ndrain 500\n",
        )
        .unwrap();
        let job = expand(&spec)
            .into_iter()
            .find(|j| matches!(j.work, Work::Replay { .. }))
            .expect("replay job exists");
        let rec = run_job(&spec, &job).unwrap();
        assert!(!rec.timed_out);
        assert!(rec.completion_cycle.unwrap() > 0);
        assert_eq!(rec.benchmark.as_deref(), Some("LU"));
    }

    #[test]
    fn faulted_job_applies_a_plan() {
        let spec = LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.03\n\
             intensities 0.25\nwarmup 100\nmeasure 400\ndrain 4000\n",
        )
        .unwrap();
        let jobs = expand(&spec);
        let rec = run_job(&spec, &jobs[0]).unwrap();
        // Under a non-trivial plan the run still resolves every packet.
        assert_eq!(rec.unfinished, 0, "drain resolved all packets");
    }
}
