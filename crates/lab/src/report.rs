//! Aggregation of per-job results into a lab report.
//!
//! The report exists in two layers with a hard wall between them:
//!
//! * the **canonical** layer ([`LabReport::canonical_json`]) contains
//!   only simulation outcomes — deterministic functions of the spec. It
//!   deliberately excludes every wall-clock figure *and* the worker
//!   count, so two runs of the same spec are byte-identical regardless
//!   of machine, load, or `--workers`;
//! * the **perf** layer ([`LabReport::perf_json`]) carries the
//!   non-deterministic rest: total wall time, summed per-job wall time,
//!   aggregate simulated cycles per second, and the parallel speedup
//!   (serial wall estimate / actual wall).

use crate::spec::LabSpec;
use phastlane_netsim::obs::json::JsonValue;
use phastlane_netsim::obs::PhaseBreakdown;
use phastlane_netsim::stats::LatencyStats;
use phastlane_netsim::sweep::Saturation;

/// How a job's execution ended.
///
/// `Completed` covers every job that ran to its natural end — including
/// unstable or saturated ones (those verdicts live in `stable` /
/// `timed_out`). The other variants are *terminal harness outcomes*: the
/// supervisor stopped the job (watchdog) or caught it dying (panic), and
/// the record's metrics describe at most a partial run.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum JobOutcome {
    /// The job ran to completion.
    #[default]
    Completed,
    /// A watchdog stopped the job (cycle budget, livelock, wall budget,
    /// or cancellation — the reason string says which).
    TimedOut {
        /// Deterministic reason string (see
        /// `phastlane_netsim::watchdog::Interrupt::reason`).
        reason: String,
    },
    /// The job panicked; the worker pool survived and recorded it.
    Panicked {
        /// The panic payload's message, when it was a string.
        message: String,
    },
}

impl JobOutcome {
    /// Whether the job ran to its natural end.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed)
    }

    /// Short kind label (`completed` / `timed_out` / `panicked`).
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::TimedOut { .. } => "timed_out",
            JobOutcome::Panicked { .. } => "panicked",
        }
    }

    /// Serializes the outcome (used in both report and journal forms).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![("kind".into(), JsonValue::Str(self.label().into()))];
        match self {
            JobOutcome::Completed => {}
            JobOutcome::TimedOut { reason } => {
                pairs.push(("reason".into(), JsonValue::Str(reason.clone())));
            }
            JobOutcome::Panicked { message } => {
                pairs.push(("message".into(), JsonValue::Str(message.clone())));
            }
        }
        JsonValue::Obj(pairs)
    }

    /// Parses [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Errors on a missing or unknown `kind`.
    pub fn from_json(v: &JsonValue) -> Result<JobOutcome, String> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "outcome: missing `kind`".to_string())?;
        let text = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string()
        };
        match kind {
            "completed" => Ok(JobOutcome::Completed),
            "timed_out" => Ok(JobOutcome::TimedOut {
                reason: text("reason"),
            }),
            "panicked" => Ok(JobOutcome::Panicked {
                message: text("message"),
            }),
            other => Err(format!("outcome: unknown kind {other:?}")),
        }
    }
}

/// Plain-data summary of one executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Matrix index (matches [`crate::spec::JobSpec::index`]).
    pub index: usize,
    /// Network configuration name.
    pub net: String,
    /// Pattern token for synthetic jobs.
    pub pattern: Option<String>,
    /// Injection rate for synthetic jobs.
    pub rate: Option<f64>,
    /// Benchmark name for replay jobs.
    pub benchmark: Option<String>,
    /// Fault intensity.
    pub intensity: f64,
    /// Seed replica.
    pub replica: u32,
    /// The job's derived workload seed.
    pub seed: u64,
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Measured delivery latencies.
    pub latency: LatencyStats,
    /// Total energy spent, picojoules.
    pub energy_pj: f64,
    /// Offered rate during measurement (synthetic only).
    pub offered_rate: Option<f64>,
    /// Accepted rate during measurement (synthetic only).
    pub accepted_rate: Option<f64>,
    /// Delivered rate during measurement (synthetic only).
    pub delivered_rate: Option<f64>,
    /// Trace completion cycle (replay only).
    pub completion_cycle: Option<u64>,
    /// Measured packets never resolved (synthetic only).
    pub unfinished: u64,
    /// Destinations terminally given up on.
    pub undeliverable: u64,
    /// Replay hit its cycle limit.
    pub timed_out: bool,
    /// Synthetic stability verdict (delivered ≥ 90% of offered, nothing
    /// unfinished); `None` for replay jobs.
    pub stable: Option<bool>,
    /// Terminal harness outcome. `Completed` (the default) is omitted
    /// from the canonical JSON so reports of healthy runs are
    /// byte-identical to those recorded before outcomes existed.
    pub outcome: JobOutcome,
    /// Wall-clock seconds this job took. **Never** part of the
    /// canonical report.
    pub wall_seconds: f64,
    /// Hot-loop phase breakdown, when the spec enabled profiling.
    /// Contains sampled wall time, so like `wall_seconds` it is
    /// **never** part of the canonical report — it surfaces merged in
    /// [`LabReport::perf_json`].
    pub phases: Option<PhaseBreakdown>,
}

impl JobRecord {
    /// Serializes the record with *full fidelity* — including the
    /// complete latency histogram and the perf-layer wall clock — so the
    /// run journal can reconstruct it bit-for-bit on resume. The one
    /// exception is `phases` (sampled profiler wall time): it is
    /// perf-layer-only observation and is not journaled; a resumed job
    /// simply reports no phase breakdown.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("index".into(), JsonValue::Uint(self.index as u64)),
            ("net".into(), JsonValue::Str(self.net.clone())),
            ("pattern".into(), opt_s(&self.pattern)),
            ("rate".into(), opt_f(self.rate)),
            ("benchmark".into(), opt_s(&self.benchmark)),
            ("intensity".into(), JsonValue::Num(self.intensity)),
            ("replica".into(), JsonValue::Uint(u64::from(self.replica))),
            ("seed".into(), JsonValue::Uint(self.seed)),
            ("cycles".into(), JsonValue::Uint(self.cycles)),
            ("latency".into(), self.latency.to_json()),
            ("energy_pj".into(), JsonValue::Num(self.energy_pj)),
            ("offered_rate".into(), opt_f(self.offered_rate)),
            ("accepted_rate".into(), opt_f(self.accepted_rate)),
            ("delivered_rate".into(), opt_f(self.delivered_rate)),
            ("completion_cycle".into(), opt_u(self.completion_cycle)),
            ("unfinished".into(), JsonValue::Uint(self.unfinished)),
            ("undeliverable".into(), JsonValue::Uint(self.undeliverable)),
            ("timed_out".into(), JsonValue::Bool(self.timed_out)),
            (
                "stable".into(),
                self.stable.map(JsonValue::Bool).unwrap_or(JsonValue::Null),
            ),
            ("outcome".into(), self.outcome.to_json()),
            ("wall_seconds".into(), JsonValue::Num(self.wall_seconds)),
        ])
    }

    /// Reconstructs a record from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<JobRecord, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("record: missing `{k}`"));
        let uint = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("record: `{k}` is not an unsigned integer"))
        };
        let num = |k: &str| {
            field(k)?
                .as_f64()
                .ok_or_else(|| format!("record: `{k}` is not a number"))
        };
        let opt_num = |k: &str| -> Result<Option<f64>, String> {
            match field(k)? {
                JsonValue::Null => Ok(None),
                x => Ok(Some(
                    x.as_f64()
                        .ok_or_else(|| format!("record: `{k}` is not a number"))?,
                )),
            }
        };
        let opt_uint = |k: &str| -> Result<Option<u64>, String> {
            match field(k)? {
                JsonValue::Null => Ok(None),
                x => Ok(Some(x.as_u64().ok_or_else(|| {
                    format!("record: `{k}` is not an unsigned integer")
                })?)),
            }
        };
        let opt_str = |k: &str| -> Result<Option<String>, String> {
            match field(k)? {
                JsonValue::Null => Ok(None),
                JsonValue::Str(s) => Ok(Some(s.clone())),
                _ => Err(format!("record: `{k}` is not a string")),
            }
        };
        let boolean = |k: &str| match field(k)? {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(format!("record: `{k}` is not a bool")),
        };
        let stable = match field("stable")? {
            JsonValue::Null => None,
            JsonValue::Bool(b) => Some(*b),
            _ => return Err("record: `stable` is not a bool".into()),
        };
        Ok(JobRecord {
            index: uint("index")? as usize,
            net: field("net")?
                .as_str()
                .ok_or_else(|| "record: `net` is not a string".to_string())?
                .to_string(),
            pattern: opt_str("pattern")?,
            rate: opt_num("rate")?,
            benchmark: opt_str("benchmark")?,
            intensity: num("intensity")?,
            replica: uint("replica")? as u32,
            seed: uint("seed")?,
            cycles: uint("cycles")?,
            latency: LatencyStats::from_json(field("latency")?)?,
            energy_pj: num("energy_pj")?,
            offered_rate: opt_num("offered_rate")?,
            accepted_rate: opt_num("accepted_rate")?,
            delivered_rate: opt_num("delivered_rate")?,
            completion_cycle: opt_uint("completion_cycle")?,
            unfinished: uint("unfinished")?,
            undeliverable: uint("undeliverable")?,
            timed_out: boolean("timed_out")?,
            stable,
            outcome: JobOutcome::from_json(field("outcome")?)?,
            wall_seconds: num("wall_seconds")?,
            phases: None,
        })
    }
}

/// Saturation verdict for one synthetic curve of the matrix (one
/// network × pattern × intensity × replica group, classified across its
/// injection rates).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSaturation {
    /// Network configuration name.
    pub net: String,
    /// Pattern token.
    pub pattern: String,
    /// Fault intensity.
    pub intensity: f64,
    /// Seed replica.
    pub replica: u32,
    /// The verdict.
    pub saturation: Saturation,
}

/// The aggregated outcome of one lab run.
#[derive(Debug, Clone)]
pub struct LabReport {
    /// The spec that produced this report.
    pub spec: LabSpec,
    /// Per-job records, ordered by matrix index.
    pub jobs: Vec<JobRecord>,
    /// Saturation verdicts per synthetic curve.
    pub saturations: Vec<GroupSaturation>,
    /// Worker threads the run used (perf layer only).
    pub workers: usize,
    /// Total wall-clock seconds (perf layer only).
    pub wall_seconds: f64,
}

fn opt_f(v: Option<f64>) -> JsonValue {
    v.map(JsonValue::Num).unwrap_or(JsonValue::Null)
}

fn opt_u(v: Option<u64>) -> JsonValue {
    v.map(JsonValue::Uint).unwrap_or(JsonValue::Null)
}

fn opt_s(v: &Option<String>) -> JsonValue {
    v.as_ref()
        .map(|s| JsonValue::Str(s.clone()))
        .unwrap_or(JsonValue::Null)
}

fn latency_json(l: &LatencyStats) -> JsonValue {
    let pct = |p: f64| (l.count() > 0).then(|| l.percentile(p)).flatten();
    JsonValue::Obj(vec![
        ("count".into(), JsonValue::Uint(l.count())),
        ("mean".into(), opt_f(l.mean())),
        ("min".into(), opt_u(l.min())),
        ("max".into(), JsonValue::Uint(l.max())),
        ("p50".into(), opt_u(pct(50.0))),
        ("p99".into(), opt_u(pct(99.0))),
    ])
}

fn saturation_json(s: Saturation) -> JsonValue {
    let (kind, rate) = match s {
        Saturation::Stable(r) => ("stable", Some(r)),
        Saturation::SaturatedFromStart(r) => ("saturated_from_start", Some(r)),
        Saturation::NotSwept => ("not_swept", None),
    };
    JsonValue::Obj(vec![
        ("kind".into(), JsonValue::Str(kind.into())),
        ("rate".into(), opt_f(rate)),
    ])
}

impl LabReport {
    /// Builds a report from the executed jobs (which must be in matrix
    /// order), deriving the per-curve saturation verdicts.
    pub fn new(spec: LabSpec, jobs: Vec<JobRecord>, workers: usize, wall_seconds: f64) -> Self {
        let saturations = classify_groups(&spec, &jobs);
        LabReport {
            spec,
            jobs,
            saturations,
            workers,
            wall_seconds,
        }
    }

    /// Sum of per-job wall times: an estimate of what a serial run
    /// would have cost, without running one.
    pub fn serial_wall_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_seconds).sum()
    }

    /// Parallel speedup over the serial estimate (1.0 for an instant
    /// run).
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.serial_wall_seconds() / self.wall_seconds
        } else {
            1.0
        }
    }

    /// Total simulated cycles across jobs.
    pub fn total_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.cycles).sum()
    }

    /// Aggregate simulator throughput: total simulated cycles per
    /// wall-clock second (0 for an instant run).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.total_cycles() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The deterministic layer: spec, per-job outcomes, saturation
    /// verdicts. Contains **no** wall-clock data and **no** worker
    /// count — byte-identical across worker counts and machines.
    pub fn canonical_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str(self.spec.name.clone())),
            ("spec".into(), JsonValue::Str(self.spec.encode())),
            (
                "jobs".into(),
                JsonValue::Arr(
                    self.jobs
                        .iter()
                        .map(|j| {
                            let mut pairs = vec![
                                ("index".into(), JsonValue::Uint(j.index as u64)),
                                ("net".into(), JsonValue::Str(j.net.clone())),
                                ("pattern".into(), opt_s(&j.pattern)),
                                ("rate".into(), opt_f(j.rate)),
                                ("benchmark".into(), opt_s(&j.benchmark)),
                                ("intensity".into(), JsonValue::Num(j.intensity)),
                                ("replica".into(), JsonValue::Uint(u64::from(j.replica))),
                                ("seed".into(), JsonValue::Uint(j.seed)),
                                ("cycles".into(), JsonValue::Uint(j.cycles)),
                                ("latency".into(), latency_json(&j.latency)),
                                ("energy_pj".into(), JsonValue::Num(j.energy_pj)),
                                ("offered_rate".into(), opt_f(j.offered_rate)),
                                ("accepted_rate".into(), opt_f(j.accepted_rate)),
                                ("delivered_rate".into(), opt_f(j.delivered_rate)),
                                ("completion_cycle".into(), opt_u(j.completion_cycle)),
                                ("unfinished".into(), JsonValue::Uint(j.unfinished)),
                                ("undeliverable".into(), JsonValue::Uint(j.undeliverable)),
                                ("timed_out".into(), JsonValue::Bool(j.timed_out)),
                                (
                                    "stable".into(),
                                    j.stable.map(JsonValue::Bool).unwrap_or(JsonValue::Null),
                                ),
                            ];
                            // Omit-when-default: only failed jobs carry
                            // an outcome key, so healthy reports stay
                            // byte-identical to pre-outcome goldens.
                            if !j.outcome.is_completed() {
                                pairs.push(("outcome".into(), j.outcome.to_json()));
                            }
                            JsonValue::Obj(pairs)
                        })
                        .collect(),
                ),
            ),
            (
                "saturations".into(),
                JsonValue::Arr(
                    self.saturations
                        .iter()
                        .map(|g| {
                            JsonValue::Obj(vec![
                                ("net".into(), JsonValue::Str(g.net.clone())),
                                ("pattern".into(), JsonValue::Str(g.pattern.clone())),
                                ("intensity".into(), JsonValue::Num(g.intensity)),
                                ("replica".into(), JsonValue::Uint(u64::from(g.replica))),
                                ("saturation".into(), saturation_json(g.saturation)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Per-job phase breakdowns folded into one lab-wide profile
    /// (`None` when no job was profiled).
    pub fn merged_phases(&self) -> Option<PhaseBreakdown> {
        let mut merged: Option<PhaseBreakdown> = None;
        for j in &self.jobs {
            if let Some(p) = &j.phases {
                merged.get_or_insert_with(PhaseBreakdown::default).merge(p);
            }
        }
        merged
    }

    /// The non-deterministic layer: wall clock, throughput, speedup,
    /// worker count, and (when profiled) the merged phase breakdown.
    pub fn perf_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("workers".into(), JsonValue::Uint(self.workers as u64)),
            ("jobs".into(), JsonValue::Uint(self.jobs.len() as u64)),
            ("wall_seconds".into(), JsonValue::Num(self.wall_seconds)),
            (
                "serial_wall_seconds".into(),
                JsonValue::Num(self.serial_wall_seconds()),
            ),
            ("speedup".into(), JsonValue::Num(self.speedup())),
            ("total_cycles".into(), JsonValue::Uint(self.total_cycles())),
            (
                "cycles_per_sec".into(),
                JsonValue::Num(self.cycles_per_sec()),
            ),
        ];
        if let Some(phases) = self.merged_phases() {
            pairs.push(("phases".into(), phases.to_json()));
        }
        JsonValue::Obj(pairs)
    }

    /// Both layers in one object (for human inspection; baseline
    /// comparisons read the layers separately).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("canonical".into(), self.canonical_json()),
            ("perf".into(), self.perf_json()),
        ])
    }

    /// Flat per-job CSV (canonical columns only).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,net,pattern,rate,benchmark,intensity,replica,seed,cycles,\
             latency_count,latency_mean,latency_p50,latency_p99,energy_pj,\
             offered_rate,accepted_rate,delivered_rate,completion_cycle,\
             unfinished,undeliverable,timed_out,stable,outcome\n",
        );
        let f = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        let u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        for j in &self.jobs {
            let pct = |p: f64| {
                (j.latency.count() > 0)
                    .then(|| j.latency.percentile(p))
                    .flatten()
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                j.index,
                j.net,
                j.pattern.as_deref().unwrap_or(""),
                f(j.rate),
                j.benchmark.as_deref().unwrap_or(""),
                j.intensity,
                j.replica,
                j.seed,
                j.cycles,
                j.latency.count(),
                f(j.latency.mean()),
                u(pct(50.0)),
                u(pct(99.0)),
                j.energy_pj,
                f(j.offered_rate),
                f(j.accepted_rate),
                f(j.delivered_rate),
                u(j.completion_cycle),
                j.unfinished,
                j.undeliverable,
                j.timed_out,
                j.stable.map(|b| b.to_string()).unwrap_or_default(),
                j.outcome.label(),
            ));
        }
        out
    }
}

/// Groups the synthetic jobs into curves (net × pattern × intensity ×
/// replica) and classifies each curve's saturation across its rates, in
/// spec order.
fn classify_groups(spec: &LabSpec, jobs: &[JobRecord]) -> Vec<GroupSaturation> {
    let mut groups = Vec::new();
    for net in &spec.nets {
        for &pattern in &spec.patterns {
            for &intensity in &spec.intensities {
                for replica in 0..spec.replicas {
                    let curve: Vec<(f64, bool)> = jobs
                        .iter()
                        .filter(|j| {
                            j.net == *net
                                && j.pattern.as_deref() == Some(pattern.name())
                                && j.intensity == intensity
                                && j.replica == replica
                        })
                        .filter_map(|j| Some((j.rate?, j.stable?)))
                        .collect();
                    if curve.is_empty() {
                        continue;
                    }
                    groups.push(GroupSaturation {
                        net: net.clone(),
                        pattern: pattern.name().to_string(),
                        intensity,
                        replica,
                        saturation: Saturation::classify(curve),
                    });
                }
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, rate: f64, stable: bool, wall: f64) -> JobRecord {
        let mut latency = LatencyStats::new();
        latency.record(10);
        JobRecord {
            index,
            net: "optical4".into(),
            pattern: Some("uniform".into()),
            rate: Some(rate),
            benchmark: None,
            intensity: 0.0,
            replica: 0,
            seed: 1,
            cycles: 1_000,
            latency,
            energy_pj: 5.0,
            offered_rate: Some(rate),
            accepted_rate: Some(rate),
            delivered_rate: Some(if stable { rate } else { 0.0 }),
            completion_cycle: None,
            unfinished: u64::from(!stable),
            undeliverable: 0,
            timed_out: false,
            stable: Some(stable),
            outcome: JobOutcome::Completed,
            wall_seconds: wall,
            phases: None,
        }
    }

    fn spec() -> LabSpec {
        LabSpec::parse("mesh 4x4\nnets optical4\npatterns uniform\nrates 0.1 0.2\n").unwrap()
    }

    #[test]
    fn canonical_json_hides_wall_clock_and_workers() {
        let fast = LabReport::new(spec(), vec![record(0, 0.1, true, 0.5)], 8, 0.5);
        let slow = LabReport::new(spec(), vec![record(0, 0.1, true, 9.0)], 1, 9.0);
        assert_eq!(
            fast.canonical_json().to_string_pretty(),
            slow.canonical_json().to_string_pretty(),
            "canonical layer must not leak timing or worker count"
        );
        let text = fast.canonical_json().to_string_compact();
        assert!(!text.contains("wall"), "no wall-clock key: {text}");
        assert!(!text.contains("workers"), "no workers key: {text}");
    }

    #[test]
    fn perf_layer_carries_speedup() {
        let r = LabReport::new(
            spec(),
            vec![record(0, 0.1, true, 2.0), record(1, 0.2, true, 2.0)],
            2,
            1.0,
        );
        assert_eq!(r.serial_wall_seconds(), 4.0);
        assert_eq!(r.speedup(), 4.0);
        assert_eq!(r.total_cycles(), 2_000);
        assert_eq!(r.cycles_per_sec(), 2_000.0);
        let perf = r.perf_json();
        assert_eq!(perf.get("workers").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(perf.get("speedup").and_then(JsonValue::as_f64), Some(4.0));
    }

    #[test]
    fn saturation_classified_per_curve() {
        let r = LabReport::new(
            spec(),
            vec![record(0, 0.1, true, 0.1), record(1, 0.2, false, 0.1)],
            1,
            0.2,
        );
        assert_eq!(r.saturations.len(), 1);
        assert_eq!(r.saturations[0].saturation, Saturation::Stable(0.1));
    }

    #[test]
    fn outcome_key_appears_only_for_failed_jobs() {
        let healthy = LabReport::new(spec(), vec![record(0, 0.1, true, 0.1)], 1, 0.1);
        let text = healthy.canonical_json().to_string_compact();
        assert!(
            !text.contains("outcome"),
            "completed jobs must not grow an outcome key (golden compat): {text}"
        );

        let mut failed = record(0, 0.1, true, 0.1);
        failed.outcome = JobOutcome::Panicked {
            message: "boom".into(),
        };
        let report = LabReport::new(spec(), vec![failed], 1, 0.1);
        let text = report.canonical_json().to_string_compact();
        assert!(text.contains("\"outcome\""), "{text}");
        assert!(text.contains("\"panicked\""), "{text}");
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn job_record_journal_round_trip_is_exact() {
        for rec in [record(3, 0.1, true, 1.25), {
            let mut r = record(7, 0.2, false, 0.5);
            r.outcome = JobOutcome::TimedOut {
                reason: "livelock: no progress for 2000 cycles (at cycle 2100)".into(),
            };
            r.benchmark = Some("FFT".into());
            r.completion_cycle = Some(123_456);
            r.stable = None;
            r
        }] {
            let text = rec.to_json().to_string_compact();
            let parsed = phastlane_netsim::obs::json::parse(&text).expect("valid json");
            let back = JobRecord::from_json(&parsed).expect("round-trips");
            assert_eq!(back, rec);
        }
        // Outcome kinds round-trip.
        for o in [
            JobOutcome::Completed,
            JobOutcome::TimedOut {
                reason: "cycle budget 10 exhausted".into(),
            },
            JobOutcome::Panicked {
                message: "index out of bounds".into(),
            },
        ] {
            assert_eq!(JobOutcome::from_json(&o.to_json()).unwrap(), o);
        }
    }

    #[test]
    fn csv_has_one_row_per_job() {
        let r = LabReport::new(
            spec(),
            vec![record(0, 0.1, true, 0.1), record(1, 0.2, true, 0.1)],
            1,
            0.2,
        );
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 rows:\n{csv}");
        assert!(csv.starts_with("index,net,pattern"));
    }
}
