//! Energy accounting for the Phastlane network.
//!
//! The paper models dynamic and static leakage power "in a manner similar
//! to [Kirman et al.]" (§4). We use per-event energies at 16 nm,
//! *calibrated* (see `DESIGN.md` substitution #3) to land the
//! electrical-vs-optical ratios the paper reports. The optical transmit
//! (laser) energy per launch is derived from the §3.2 loss-budget model:
//! every launch must be provisioned for the worst-case crossing losses of
//! a full `max_hops` traversal, which is why the eight-hop network's
//! transmit power "increases sharply" (§5).

use phastlane_netsim::stats::EnergyReport;
use phastlane_photonics::delay::CLOCK_PERIOD;
use phastlane_photonics::power::PowerPoint;
use phastlane_photonics::wdm::{WdmConfig, RETURN_PATH_BITS};

/// Bits modulated/received per packet (640 payload + 70 control).
pub const PACKET_CHANNEL_BITS: f64 = 710.0;

/// Modulator drive energy per bit (pJ): ring modulator plus serializer.
pub const E_MOD_PJ_PER_BIT: f64 = 0.015;
/// Receiver energy per bit (pJ): photodetector, TIA, deserializer.
pub const E_RX_PJ_PER_BIT: f64 = 0.015;
/// Electrical buffer write energy per bit (pJ).
pub const E_BUF_WRITE_PJ_PER_BIT: f64 = 0.010;
/// Electrical buffer read energy per bit (pJ).
pub const E_BUF_READ_PJ_PER_BIT: f64 = 0.008;
/// Fixed energy per drop-signal return-path transmission (7 bits of
/// modulation and reception plus the registered path resonators).
pub const E_DROP_SIGNAL_PJ: f64 = 0.5;
/// Static leakage per router (mW): resonator drivers, receiver bias,
/// buffer leakage, arbiters.
pub const LEAKAGE_MW_PER_ROUTER: f64 = 0.5;

/// Per-event energy ledger for one Phastlane network instance.
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    report: EnergyReport,
    laser_pj_per_launch: f64,
    leakage_pj_per_cycle: f64,
}

impl EnergyLedger {
    /// Creates a ledger for a network of `routers` routers with the given
    /// WDM packaging and laser provisioning assumptions.
    pub fn new(routers: usize, wdm: WdmConfig, max_hops: u32, crossing_efficiency: f64) -> Self {
        let point = PowerPoint::new(wdm, max_hops, crossing_efficiency);
        // Laser power provisioned per launch: every packet channel (plus
        // the return path) must overcome the worst-case path losses.
        let channels = f64::from(wdm.packet_channels() + RETURN_PATH_BITS);
        let per_channel_mw = phastlane_photonics::devices::OpticalReceiver::SENSITIVITY.value()
            / point.path_transmission();
        let laser_mw = channels * per_channel_mw;
        // mW * ps * 1e-3 = pJ
        let laser_pj_per_launch = laser_mw * CLOCK_PERIOD.value() * 1e-3;
        let leakage_pj_per_cycle =
            LEAKAGE_MW_PER_ROUTER * routers as f64 * CLOCK_PERIOD.value() * 1e-3;
        EnergyLedger {
            report: EnergyReport::default(),
            laser_pj_per_launch,
            leakage_pj_per_cycle,
        }
    }

    /// A packet launch: modulator drive for every channel plus the
    /// provisioned laser power for one cycle.
    pub fn on_launch(&mut self) {
        self.report.dynamic_pj += E_MOD_PJ_PER_BIT * PACKET_CHANNEL_BITS;
        self.report.laser_pj += self.laser_pj_per_launch;
    }

    /// A packet (or copy) received: destination accept, multicast tap, or
    /// a blocked packet pulled into the electrical domain.
    pub fn on_receive(&mut self) {
        self.report.dynamic_pj += E_RX_PJ_PER_BIT * PACKET_CHANNEL_BITS;
    }

    /// A packet written into an electrical buffer.
    pub fn on_buffer_write(&mut self) {
        self.report.dynamic_pj += E_BUF_WRITE_PJ_PER_BIT * PACKET_CHANNEL_BITS;
    }

    /// A packet read out of an electrical buffer (relaunch).
    pub fn on_buffer_read(&mut self) {
        self.report.dynamic_pj += E_BUF_READ_PJ_PER_BIT * PACKET_CHANNEL_BITS;
    }

    /// A drop signal transmitted on the return path.
    pub fn on_drop_signal(&mut self) {
        self.report.dynamic_pj += E_DROP_SIGNAL_PJ;
    }

    /// One cycle of static leakage across all routers.
    pub fn on_cycle(&mut self) {
        self.report.leakage_pj += self.leakage_pj_per_cycle;
    }

    /// The accumulated report.
    pub fn report(&self) -> EnergyReport {
        self.report
    }

    /// Laser energy provisioned per launch (pJ) — exposed for tests and
    /// the design-space experiments.
    pub fn laser_pj_per_launch(&self) -> f64 {
        self.laser_pj_per_launch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(max_hops: u32) -> EnergyLedger {
        EnergyLedger::new(64, WdmConfig::PAPER, max_hops, 0.98)
    }

    #[test]
    fn laser_energy_grows_sharply_with_hop_limit() {
        // §5: the eight-hop network's transmit power increases sharply due
        // to additional crossing losses.
        let l4 = ledger(4).laser_pj_per_launch();
        let l5 = ledger(5).laser_pj_per_launch();
        let l8 = ledger(8).laser_pj_per_launch();
        assert!(l5 > l4);
        assert!(l8 > 5.0 * l4, "8-hop {l8} vs 4-hop {l4}");
    }

    #[test]
    fn four_hop_launch_energy_magnitude() {
        // ~130 mW for 250 ps ≈ 33 pJ; sanity-check the unit chain.
        let l = ledger(4).laser_pj_per_launch();
        assert!(l > 15.0 && l < 60.0, "laser pJ/launch = {l}");
    }

    #[test]
    fn events_accumulate() {
        let mut e = ledger(4);
        e.on_launch();
        e.on_receive();
        e.on_buffer_write();
        e.on_buffer_read();
        e.on_drop_signal();
        e.on_cycle();
        let r = e.report();
        assert!(r.dynamic_pj > 0.0);
        assert!(r.laser_pj > 0.0);
        assert!(r.leakage_pj > 0.0);
        let expected_dynamic =
            (E_MOD_PJ_PER_BIT + E_RX_PJ_PER_BIT + E_BUF_WRITE_PJ_PER_BIT + E_BUF_READ_PJ_PER_BIT)
                * PACKET_CHANNEL_BITS
                + E_DROP_SIGNAL_PJ;
        assert!((r.dynamic_pj - expected_dynamic).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_router_count() {
        let mut small = EnergyLedger::new(16, WdmConfig::PAPER, 4, 0.98);
        let mut big = EnergyLedger::new(64, WdmConfig::PAPER, 4, 0.98);
        small.on_cycle();
        big.on_cycle();
        assert!((big.report().leakage_pj / small.report().leakage_pj - 4.0).abs() < 1e-9);
    }
}
