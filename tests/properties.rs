//! Workspace-level property tests: invariants that must hold for
//! arbitrary workloads on both networks, with cases drawn from the
//! in-tree deterministic [`SimRng`].

use phastlane_repro::electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_repro::netsim::packet::PacketKind;
use phastlane_repro::netsim::rng::SimRng;
use phastlane_repro::netsim::{DestSet, Network, NewPacket, NodeId};
use phastlane_repro::optical::{BufferDepth, PhastlaneConfig, PhastlaneNetwork};

/// Drives a set of packets to completion and returns the sorted
/// (src, dest) delivery pairs plus drop statistics.
fn drive(net: &mut dyn Network, packets: &[NewPacket]) -> (Vec<(u16, u16)>, u64) {
    let mut queue: Vec<NewPacket> = packets.to_vec();
    let mut guard = 0u64;
    while !queue.is_empty() || net.in_flight() > 0 {
        queue.retain(|p| net.inject(p.clone()).is_none());
        net.step();
        guard += 1;
        assert!(guard < 60_000, "workload did not drain");
    }
    let deliveries = net.drain_deliveries();
    let mut pairs: Vec<(u16, u16)> = deliveries.iter().map(|d| (d.src.0, d.dest.0)).collect();
    pairs.sort_unstable();
    (pairs, net.stats().dropped)
}

fn random_packet(rng: &mut SimRng) -> NewPacket {
    let src = rng.gen_range(0u16..64);
    let dst = rng.gen_range(0u16..64);
    let kind = match rng.gen_range(0u8..4) {
        0 => PacketKind::Data,
        1 => PacketKind::ReadRequest,
        2 => PacketKind::DataResponse,
        _ => PacketKind::Writeback,
    };
    let dests = match rng.gen_range(0u8..10) {
        0 => DestSet::Broadcast,
        1..=2 => DestSet::Multicast(vec![
            NodeId(dst),
            NodeId(dst.wrapping_mul(13) % 64),
            NodeId(dst.wrapping_add(17) % 64),
        ]),
        _ => DestSet::Unicast(NodeId(dst)),
    };
    NewPacket {
        src: NodeId(src),
        dests,
        kind,
    }
}

fn random_packets(rng: &mut SimRng, max_len: usize) -> Vec<NewPacket> {
    (0..rng.gen_range(1usize..max_len))
        .map(|_| random_packet(rng))
        .collect()
}

/// Expected delivery multiset for a packet list.
fn expected_pairs(packets: &[NewPacket]) -> Vec<(u16, u16)> {
    let mut pairs = Vec::new();
    for p in packets {
        let dests = p.dests.expand(p.src, 64);
        if dests.is_empty() {
            pairs.push((p.src.0, p.src.0)); // self-send
        } else {
            for d in dests {
                pairs.push((p.src.0, d.0));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Every injected packet is delivered to exactly its destination set,
/// no duplicates, no losses — on Phastlane, despite drops and
/// retransmissions.
#[test]
fn optical_delivers_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0x0092_0901);
    for _ in 0..24 {
        let packets = random_packets(&mut rng, 25);
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        let (pairs, _) = drive(&mut net, &packets);
        assert_eq!(pairs, expected_pairs(&packets));
    }
}

/// Same conservation law for the electrical baseline (which must also
/// never drop).
#[test]
fn electrical_delivers_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0x0092_0902);
    for _ in 0..24 {
        let packets = random_packets(&mut rng, 25);
        let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
        let (pairs, dropped) = drive(&mut net, &packets);
        assert_eq!(pairs, expected_pairs(&packets));
        assert_eq!(dropped, 0);
    }
}

/// Conservation holds even with pathologically small optical buffers
/// (heavy drop/retransmit activity).
#[test]
fn optical_conserves_with_tiny_buffers() {
    let mut rng = SimRng::seed_from_u64(0x0092_0903);
    for _ in 0..24 {
        let packets = random_packets(&mut rng, 15);
        let cfg = PhastlaneConfig::with_hops_and_buffers(4, BufferDepth::Finite(1));
        let mut net = PhastlaneNetwork::new(cfg);
        let (pairs, _) = drive(&mut net, &packets);
        assert_eq!(pairs, expected_pairs(&packets));
    }
}

/// Energy is monotone: it never decreases as the simulation advances.
#[test]
fn energy_monotone() {
    let mut rng = SimRng::seed_from_u64(0x0092_0904);
    for _ in 0..24 {
        let packets = random_packets(&mut rng, 10);
        let steps = rng.gen_range(1u32..50);
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        for p in packets {
            let _ = net.inject(p);
        }
        let mut last = net.energy().total_pj();
        for _ in 0..steps {
            net.step();
            let now = net.energy().total_pj();
            assert!(now >= last);
            last = now;
        }
    }
}

/// Phastlane delivery latency is bounded under a finite workload: no
/// packet livelocks even with drops.
#[test]
fn optical_latency_bounded() {
    let mut rng = SimRng::seed_from_u64(0x0092_0905);
    for _ in 0..24 {
        let packets = random_packets(&mut rng, 20);
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        for p in &packets {
            let _ = net.inject(p.clone());
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step();
            guard += 1;
            assert!(guard < 20_000);
        }
        for d in net.drain_deliveries() {
            assert!(d.latency() < 10_000);
        }
    }
}
