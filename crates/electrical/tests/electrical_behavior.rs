//! Behavioural tests of the electrical baseline: pipeline latency,
//! VCTM broadcasts, losslessness under load, and credit flow.

use phastlane_electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_netsim::packet::PacketKind;
use phastlane_netsim::{Mesh, Network, NewPacket, NodeId};

fn run_until_idle(net: &mut ElectricalNetwork, max_cycles: u64) {
    let start = net.cycle();
    while net.in_flight() > 0 {
        assert!(
            net.cycle() - start < max_cycles,
            "network did not drain within {max_cycles} cycles"
        );
        net.step();
    }
}

#[test]
fn zero_load_latency_is_delay_per_hop_plus_ejection() {
    // k hops at `router_delay + 1 link` cycles each, then the one-cycle
    // ejection bypass.
    for (cfg, delay) in [
        (ElectricalConfig::electrical3(), 3),
        (ElectricalConfig::electrical2(), 2),
    ] {
        for hops in [1u64, 4, 7, 14] {
            let dst = if hops <= 7 {
                NodeId(hops as u16)
            } else {
                NodeId(63)
            };
            let mut net = ElectricalNetwork::new(cfg.clone());
            net.inject(NewPacket::unicast(NodeId(0), dst)).unwrap();
            run_until_idle(&mut net, 200);
            let d = net.drain_deliveries();
            assert_eq!(
                d[0].latency(),
                (delay + 1) * hops + 1,
                "{} at {hops} hops",
                cfg.label()
            );
        }
    }
}

#[test]
fn two_cycle_router_is_faster() {
    let run = |cfg| {
        let mut net = ElectricalNetwork::new(cfg);
        net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
            .unwrap();
        run_until_idle(&mut net, 200);
        net.drain_deliveries()[0].latency()
    };
    assert!(run(ElectricalConfig::electrical2()) < run(ElectricalConfig::electrical3()));
}

#[test]
fn vctm_broadcast_reaches_every_node() {
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    net.inject(NewPacket::broadcast(NodeId(27), PacketKind::ReadRequest))
        .unwrap();
    run_until_idle(&mut net, 500);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 63);
    let mut dests: Vec<u16> = d.iter().map(|x| x.dest.0).collect();
    dests.sort_unstable();
    assert_eq!(dests, (0..64).filter(|&n| n != 27).collect::<Vec<_>>());
}

#[test]
fn broadcast_latency_bounded_by_tree_depth() {
    // The deepest tree leaf from a corner is 14 hops; every delivery
    // should complete within ~tree-depth * router_delay plus fork
    // serialization slack.
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    net.inject(NewPacket::broadcast(NodeId(0), PacketKind::Invalidate))
        .unwrap();
    run_until_idle(&mut net, 500);
    let d = net.drain_deliveries();
    let max = d.iter().map(|x| x.latency()).max().unwrap();
    assert!(max <= 14 * 4 + 20, "worst leaf latency {max}");
}

#[test]
fn lossless_under_hotspot() {
    // All 63 nodes send to node 0; credit-based flow control must deliver
    // every packet with zero drops.
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let mut injected = 0;
    for src in Mesh::PAPER.iter_nodes() {
        if src != NodeId(0) && net.inject(NewPacket::unicast(src, NodeId(0))).is_some() {
            injected += 1;
        }
    }
    run_until_idle(&mut net, 5_000);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), injected);
    assert_eq!(net.stats().dropped, 0);
}

#[test]
fn sustained_stream_through_one_link() {
    // Saturate a single link: 200 packets 0 -> 1. Throughput should
    // approach one flit per cycle despite the 1-entry VCs, thanks to the
    // 10 VCs covering the credit round trip.
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let mut sent = 0;
    let mut done = 0;
    let mut last_cycle = 0;
    while done < 200 {
        if sent < 200
            && net
                .inject(NewPacket::unicast(NodeId(0), NodeId(1)))
                .is_some()
        {
            sent += 1;
        }
        net.step();
        for d in net.drain_deliveries() {
            done += 1;
            last_cycle = d.delivered_cycle;
        }
        assert!(net.cycle() < 5_000, "stream stalled at {done}/200");
    }
    // 200 packets over a single link: ideal 200 cycles; allow modest
    // overhead for pipeline fill and allocation.
    assert!(last_cycle < 400, "200 packets took {last_cycle} cycles");
}

#[test]
fn all_vcs_drain_after_burst() {
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    for i in 0..64u16 {
        let dst = NodeId((i * 31 + 5) % 64);
        if NodeId(i) != dst {
            net.inject(NewPacket::unicast(NodeId(i), dst)).unwrap();
        }
    }
    run_until_idle(&mut net, 2_000);
    assert_eq!(
        net.occupied_vcs(),
        0,
        "every VC must free after the burst drains"
    );
}

#[test]
fn energy_accrues_and_links_dominate_long_paths() {
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
        .unwrap();
    run_until_idle(&mut net, 200);
    let e = net.energy();
    assert!(e.dynamic_pj > 0.0);
    assert!(
        e.link_pj > e.dynamic_pj,
        "14 links outweigh buffer/xbar energy"
    );
    assert_eq!(e.laser_pj, 0.0, "no optics in the baseline");
}

#[test]
fn self_send_delivers_immediately() {
    let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let id = net
        .inject(NewPacket::unicast(NodeId(5), NodeId(5)))
        .unwrap();
    assert_eq!(net.in_flight(), 0);
    let d = net.drain_deliveries();
    assert_eq!(d[0].packet, id);
    assert_eq!(d[0].latency(), 0);
}
