//! Behavioural tests of the Phastlane network: single-cycle multi-hop
//! transit, pipelined segments, contention priorities, multicast, drops,
//! and retransmission.

use phastlane_core::{BufferDepth, PhastlaneConfig, PhastlaneNetwork};
use phastlane_netsim::geometry::Coord;
use phastlane_netsim::packet::PacketKind;
use phastlane_netsim::{DestSet, Mesh, Network, NewPacket, NodeId};

fn run_until_idle(net: &mut PhastlaneNetwork, max_cycles: u64) {
    let start = net.cycle();
    while net.in_flight() > 0 {
        assert!(
            net.cycle() - start < max_cycles,
            "network did not drain within {max_cycles} cycles"
        );
        net.step();
    }
}

#[test]
fn adjacent_hop_takes_one_cycle() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.inject(NewPacket::unicast(NodeId(0), NodeId(1)))
        .unwrap();
    run_until_idle(&mut net, 10);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(
        d[0].latency(),
        1,
        "an unblocked neighbour hop completes in one cycle"
    );
}

#[test]
fn max_hops_distance_takes_one_cycle() {
    // Four hops straight east in one cycle on Optical4.
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.inject(NewPacket::unicast(NodeId(0), NodeId(4)))
        .unwrap();
    run_until_idle(&mut net, 10);
    let d = net.drain_deliveries();
    assert_eq!(
        d[0].latency(),
        1,
        "max_hops distance still fits in a single cycle"
    );
}

#[test]
fn corner_to_corner_latency_scales_with_hop_limit() {
    // 14 hops: Optical4 needs ceil(14/4) = 4 segments, Optical5 needs 3,
    // Optical8 needs 2. Each segment is one cycle under no contention.
    for (cfg, expect) in [
        (PhastlaneConfig::optical4(), 4),
        (PhastlaneConfig::optical5(), 3),
        (PhastlaneConfig::optical8(), 2),
    ] {
        let label = cfg.label();
        let mut net = PhastlaneNetwork::new(cfg);
        net.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
            .unwrap();
        run_until_idle(&mut net, 20);
        let d = net.drain_deliveries();
        assert_eq!(d[0].latency(), expect, "{label}: corner-to-corner latency");
    }
}

#[test]
fn broadcast_reaches_every_node() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    net.inject(NewPacket::broadcast(NodeId(27), PacketKind::ReadRequest))
        .unwrap();
    run_until_idle(&mut net, 100);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 63);
    let mut dests: Vec<u16> = d.iter().map(|x| x.dest.0).collect();
    dests.sort_unstable();
    let expected: Vec<u16> = (0..64).filter(|&n| n != 27).collect();
    assert_eq!(dests, expected);
}

#[test]
fn multicast_subset_only_reaches_targets() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let targets = vec![NodeId(7), NodeId(56), NodeId(35)];
    net.inject(NewPacket {
        src: NodeId(0),
        dests: DestSet::Multicast(targets.clone()),
        kind: PacketKind::Invalidate,
    })
    .unwrap();
    run_until_idle(&mut net, 100);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 3);
    for t in targets {
        assert!(d.iter().any(|x| x.dest == t));
    }
}

#[test]
fn straight_beats_turn_under_contention() {
    // Packet A goes straight north through (2,2); packet B turns at (2,2)
    // toward the same north output. Inject both so they reach (2,2) in
    // the same cycle at the same wavefront step: A from (2,3), B from
    // (1,2) heading to (2,0): B goes east one hop then turns north at
    // (2,2). A: (2,3) -> (2,0) straight north through (2,2).
    let mesh = Mesh::PAPER;
    let at = |x, y| mesh.node_at(Coord { x, y });
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let a = net.inject(NewPacket::unicast(at(2, 3), at(2, 0))).unwrap();
    let b = net.inject(NewPacket::unicast(at(1, 2), at(2, 0))).unwrap();
    run_until_idle(&mut net, 50);
    let d = net.drain_deliveries();
    let lat_a = d.iter().find(|x| x.packet == a).unwrap().latency();
    let lat_b = d.iter().find(|x| x.packet == b).unwrap().latency();
    assert_eq!(lat_a, 1, "straight packet is unimpeded");
    assert!(
        lat_b > 1,
        "turning packet was received and buffered, then relaunched"
    );
    let stats = net.stats();
    assert_eq!(stats.dropped, 0, "buffers had room; nothing dropped");
}

#[test]
fn full_buffers_drop_and_retransmit() {
    // One-entry buffers and a all-to-one hotspot: drops must occur, yet
    // every packet is eventually delivered via the drop-signal/backoff
    // retransmission path.
    let cfg = PhastlaneConfig::with_hops_and_buffers(4, BufferDepth::Finite(1));
    let mut net = PhastlaneNetwork::new(cfg);
    let mut expected = 0;
    for src in Mesh::PAPER.iter_nodes() {
        if src == NodeId(0) {
            continue;
        }
        if net.inject(NewPacket::unicast(src, NodeId(0))).is_some() {
            expected += 1;
        }
    }
    run_until_idle(&mut net, 5_000);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), expected);
    let stats = net.stats();
    assert!(
        stats.dropped > 0,
        "1-entry buffers under a hotspot must drop"
    );
    assert_eq!(
        stats.retransmitted, stats.dropped,
        "every drop is retransmitted"
    );
}

#[test]
fn concurrent_same_cycle_drops_account_exactly_once() {
    // Two opposite-corner hotspots with 1-entry buffers force drops at
    // distinct routers in the same cycle. Accounting must stay exact:
    // every drop produces one drop-return signal and one retransmission
    // (the end-of-step debug assertion cross-checks the signal count),
    // no retry is lost or duplicated, and every packet still arrives.
    let cfg = PhastlaneConfig::with_hops_and_buffers(4, BufferDepth::Finite(1));
    let mut net = PhastlaneNetwork::new(cfg);
    let mut expected = 0;
    for src in Mesh::PAPER.iter_nodes() {
        for dst in [NodeId(0), NodeId(63)] {
            if src != dst && net.inject(NewPacket::unicast(src, dst)).is_some() {
                expected += 1;
            }
        }
    }
    run_until_idle(&mut net, 20_000);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), expected, "no retry lost: everything delivered");
    let mut seen = std::collections::HashSet::new();
    for x in &d {
        assert!(
            seen.insert((x.packet, x.dest)),
            "no retry duplicated: {:?} delivered twice at {}",
            x.packet,
            x.dest
        );
    }
    let stats = net.stats();
    assert!(stats.dropped > 0, "the hotspots must overflow somewhere");
    assert_eq!(
        stats.retransmitted, stats.dropped,
        "exactly one retransmission attempt per drop"
    );
}

#[test]
fn infinite_buffers_never_drop() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4_ib());
    for src in Mesh::PAPER.iter_nodes() {
        if src != NodeId(0) {
            net.inject(NewPacket::unicast(src, NodeId(0))).unwrap();
        }
    }
    run_until_idle(&mut net, 5_000);
    assert_eq!(net.stats().dropped, 0);
    assert_eq!(net.drain_deliveries().len(), 63);
}

#[test]
fn self_send_delivers_immediately() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let id = net
        .inject(NewPacket::unicast(NodeId(5), NodeId(5)))
        .unwrap();
    assert_eq!(net.in_flight(), 0);
    let d = net.drain_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].packet, id);
    assert_eq!(d[0].latency(), 0);
}

#[test]
fn nic_backpressure_rejects_when_full() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    // A broadcast from an interior node occupies 16 NIC slots; the NIC
    // holds 50, so four broadcasts cannot all enter in one cycle.
    let src = Mesh::PAPER.node_at(Coord { x: 3, y: 3 });
    let mut accepted = 0;
    for _ in 0..4 {
        if net
            .inject(NewPacket::broadcast(src, PacketKind::WriteRequest))
            .is_some()
        {
            accepted += 1;
        }
    }
    assert_eq!(
        accepted, 3,
        "3 x 16 = 48 entries fit, the fourth broadcast must wait"
    );
    run_until_idle(&mut net, 500);
    assert_eq!(net.drain_deliveries().len(), 63 * 3);
}

#[test]
fn energy_accrues_with_traffic() {
    let mut idle = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    for _ in 0..100 {
        idle.step();
    }
    let idle_e = idle.energy();
    assert_eq!(idle_e.dynamic_pj, 0.0);
    assert!(idle_e.leakage_pj > 0.0);
    assert_eq!(idle_e.laser_pj, 0.0);

    let mut busy = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    busy.inject(NewPacket::unicast(NodeId(0), NodeId(63)))
        .unwrap();
    run_until_idle(&mut busy, 100);
    let busy_e = busy.energy();
    assert!(busy_e.dynamic_pj > 0.0);
    assert!(busy_e.laser_pj > 0.0);
}

#[test]
fn eight_hop_config_spends_more_laser_energy_per_packet() {
    let run = |cfg: PhastlaneConfig| {
        let mut net = PhastlaneNetwork::new(cfg);
        net.inject(NewPacket::unicast(NodeId(0), NodeId(7)))
            .unwrap();
        run_until_idle(&mut net, 100);
        net.energy().laser_pj
    };
    let four = run(PhastlaneConfig::optical4());
    let eight = run(PhastlaneConfig::optical8());
    // 7 hops = 2 launches on Optical4, 1 on Optical8, but the 8-hop laser
    // provisioning is so much higher that it dominates (§5).
    assert!(eight > 2.0 * four, "8-hop laser {eight} vs 4-hop {four}");
}

#[test]
fn deliveries_conserve_across_configs() {
    // Same random-ish workload on every configuration: all deliveries
    // complete, none duplicate.
    for cfg in [
        PhastlaneConfig::optical4(),
        PhastlaneConfig::optical5(),
        PhastlaneConfig::optical8(),
        PhastlaneConfig::optical4_b32(),
        PhastlaneConfig::optical4_b64(),
        PhastlaneConfig::optical4_ib(),
    ] {
        let label = cfg.label();
        let mut net = PhastlaneNetwork::new(cfg);
        let mut injected = 0;
        for i in 0..64u16 {
            let dst = NodeId((i * 23 + 7) % 64);
            let src = NodeId(i);
            if src != dst && net.inject(NewPacket::unicast(src, dst)).is_some() {
                injected += 1;
            }
        }
        run_until_idle(&mut net, 2_000);
        let d = net.drain_deliveries();
        assert_eq!(
            d.len(),
            injected,
            "{label}: all packets delivered exactly once"
        );
    }
}

#[test]
fn shared_pool_conserves_and_reduces_drops_at_moderate_load() {
    // Same storage (50 entries/router) organized as a shared pool vs the
    // static 10-per-buffer partition: at moderate load the pool absorbs
    // transients at least as well, and conservation must hold.
    let run = |cfg: PhastlaneConfig| {
        let mut net = PhastlaneNetwork::new(cfg);
        let mut injected = 0;
        for i in 0..64u16 {
            for k in [11u16, 29] {
                let dst = NodeId((i * k + 3) % 64);
                if NodeId(i) != dst && net.inject(NewPacket::unicast(NodeId(i), dst)).is_some() {
                    injected += 1;
                }
            }
        }
        run_until_idle(&mut net, 5_000);
        (net.drain_deliveries().len(), injected, net.stats().dropped)
    };
    let (delivered_static, injected_static, drops_static) = run(PhastlaneConfig::optical4());
    let (delivered_pool, injected_pool, drops_pool) = run(PhastlaneConfig::optical4_shared_pool());
    assert_eq!(delivered_static, injected_static);
    assert_eq!(delivered_pool, injected_pool);
    assert!(
        drops_pool <= drops_static,
        "pool drops {drops_pool} vs static {drops_static}"
    );
}

#[test]
fn occupancy_heatmap_reflects_buffered_packets() {
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    // Idle: blank map.
    let idle = net.occupancy_heatmap();
    assert!(idle.contains("'@'=0"));
    // A hotspot burst parks packets in buffers mid-flight.
    for src in Mesh::PAPER.iter_nodes() {
        if src != NodeId(0) {
            let _ = net.inject(NewPacket::unicast(src, NodeId(0)));
        }
    }
    net.step();
    net.step();
    if net.buffered_packets() > 0 {
        let busy = net.occupancy_heatmap();
        assert!(
            !busy.contains("'@'=0"),
            "non-zero scale once buffers fill:\n{busy}"
        );
    }
    run_until_idle(&mut net, 5_000);
    assert!(
        net.occupancy_heatmap().contains("'@'=0"),
        "drains back to blank"
    );
}
