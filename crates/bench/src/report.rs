//! CSV export for the figure binaries (`--csv <path>`): machine-readable
//! copies of the tables the binaries print, for plotting outside the
//! terminal.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory CSV table.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to CSV text (RFC-4180-style quoting where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            let encoded: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            writeln!(out, "{}", encoded.join(",")).expect("writing to String cannot fail");
        };
        write_row(&self.header, &mut out);
        for r in &self.rows {
            write_row(r, &mut out);
        }
        out
    }

    /// Writes the CSV to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

fn quote(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Parses the `--csv <path>` argument pair from the process arguments.
pub fn csv_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--csv" {
            return args.next().map(Into::into);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_csv() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push(["1", "2"]);
        t.push(["x", "y"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\nx,y\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quoting_rules() {
        let mut t = CsvTable::new(["v"]);
        t.push(["has,comma"]);
        t.push(["has\"quote"]);
        t.push(["plain"]);
        assert_eq!(t.to_csv(), "v\n\"has,comma\"\n\"has\"\"quote\"\nplain\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn file_roundtrip() {
        let mut t = CsvTable::new(["k", "v"]);
        t.push(["speedup", "1.48"]);
        let dir = std::env::temp_dir().join("phastlane_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        t.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), t.to_csv());
    }
}
