//! A deliberately small HTTP/1.1 codec: exactly what the job service
//! needs, nothing more.
//!
//! The workspace is dependency-free by design, so this module
//! hand-rolls the wire format the same way `obs::json` hand-rolls JSON:
//! request-line + headers + `Content-Length` body on the way in,
//! `Connection: close` responses (fixed-length or chunked) on the way
//! out. Every connection serves one request — the client opens a fresh
//! socket per call, which keeps the server's connection handling to a
//! single read-route-write pass with no keep-alive state machine.
//!
//! Hard limits guard the parser: header lines are capped, header count
//! is capped, and bodies are capped, so a hostile peer cannot balloon
//! memory with an unbounded request.

use std::io::{BufRead, Write};

/// Longest accepted request/header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;

/// Largest accepted request body (lab specs are kilobytes).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path, query string included if any.
    pub path: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, sized by `Content-Length` (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// A header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one line up to CRLF/LF, rejecting lines over [`MAX_LINE`].
fn read_line(r: &mut impl BufRead) -> Result<String, String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err("header line too long".into());
                }
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| "header line is not UTF-8".into())
}

/// Parses one request off the stream. `Ok(None)` means the peer closed
/// the connection without sending anything (a bare health-probe
/// connect, not an error).
///
/// # Errors
///
/// Malformed request lines, oversized headers/body, or I/O failures.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, String> {
    let line = read_line(r)?;
    if line.is_empty() {
        return Ok(None);
    }
    let mut words = line.split_ascii_whitespace();
    let (method, path, version) = match (words.next(), words.next(), words.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(format!("malformed request line {line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err("too many headers".into());
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let length: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v.parse().map_err(|_| format!("bad content-length {v:?}"))?,
    };
    if length > MAX_BODY {
        return Err(format!("body of {length} bytes exceeds the {MAX_BODY} cap"));
    }
    let mut body = vec![0u8; length];
    r.read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes it.
///
/// # Errors
///
/// Propagates socket write failures (peer gone).
pub fn respond(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked response; follow with [`write_chunk`] calls and one
/// [`end_chunked`].
///
/// # Errors
///
/// Propagates socket write failures.
pub fn start_chunked(w: &mut impl Write, status: u16, content_type: &str) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
         transfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        reason(status)
    )?;
    w.flush()
}

/// Writes one chunk and flushes it so streaming consumers see it
/// immediately. Empty payloads are skipped (an empty chunk would
/// terminate the stream).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunk(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    if bytes.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", bytes.len())?;
    w.write_all(bytes)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn end_chunked(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, String> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn empty_connection_is_not_an_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/99\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn oversized_requests_are_bounded() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(parse(&long).is_err());
        let many = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "h: v\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(parse(&many).is_err());
        let big = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(parse(&big).is_err());
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        respond(&mut out, 404, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn chunked_stream_roundtrips() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"{\"a\": 1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not terminal
        write_chunk(&mut out, b"{\"b\": 2}\n").unwrap();
        end_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked"), "{text}");
        assert!(text.contains("9\r\n{\"a\": 1}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }
}
