//! Scalability study: the paper's introduction motivates Phastlane with
//! "tens and eventually hundreds of processing cores". This experiment
//! scales the mesh from 16 to 256 nodes and compares zero-load latency,
//! coherence-workload completion, and power on both networks.
//!
//! Usage: `cargo run --release -p phastlane-bench --bin scalability [--quick]`

use phastlane_bench::{print_row, quick_flag, CLOCK_GHZ};
use phastlane_core::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_netsim::harness::{run_synthetic, run_trace, SyntheticOptions, TraceOptions};
use phastlane_netsim::{Mesh, Network};
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;
use phastlane_traffic::synthetic::BernoulliTraffic;
use phastlane_traffic::Pattern;

fn optical(mesh: Mesh) -> PhastlaneNetwork {
    let mut cfg = PhastlaneConfig::optical4();
    cfg.mesh = mesh;
    PhastlaneNetwork::new(cfg)
}

fn electrical(mesh: Mesh) -> ElectricalNetwork {
    let mut cfg = ElectricalConfig::electrical3();
    cfg.mesh = mesh;
    ElectricalNetwork::new(cfg)
}

fn main() {
    let quick = quick_flag();
    let sizes: &[u16] = if quick { &[4, 8] } else { &[4, 8, 16] };
    let widths = [8usize, 7, 12, 12, 12, 12];

    println!("Scalability: Optical4 vs Electrical3 across mesh sizes\n");
    print_row(
        &[
            "mesh".into(),
            "nodes".into(),
            "lat-opt".into(),
            "lat-elec".into(),
            "speedup".into(),
            "pwr-ratio".into(),
        ],
        &widths,
    );

    for &side in sizes {
        let mesh = Mesh::new(side, side);

        // Zero-load-ish uniform latency.
        let opts = SyntheticOptions {
            warmup: 200,
            measure: 800,
            drain: 3_000,
        };
        let lat = |net: &mut dyn Network| {
            let mut w = BernoulliTraffic::new(mesh, Pattern::Uniform, 0.02, 0x5CA1E);
            run_synthetic(net, &mut w, opts)
                .latency
                .mean()
                .unwrap_or(f64::NAN)
        };
        let mut onet = optical(mesh);
        let mut enet = electrical(mesh);
        let (lo, le) = (lat(&mut onet), lat(&mut enet));

        // Coherence workload scaled to the mesh.
        let mut profile = splash2::benchmark("FFT").expect("known benchmark");
        profile.misses_per_core = if quick { 15 } else { 40 };
        profile.active_cores = mesh.nodes();
        let trace = generate_trace(mesh, &profile);
        let mut onet = optical(mesh);
        let mut enet = electrical(mesh);
        let o = run_trace(&mut onet, &trace, TraceOptions::default());
        let e = run_trace(&mut enet, &trace, TraceOptions::default());
        assert!(!o.timed_out && !e.timed_out);
        let speedup = e.completion_cycle as f64 / o.completion_cycle.max(1) as f64;
        let pwr_ratio = o
            .energy
            .average_power_mw(o.completion_cycle.max(1), CLOCK_GHZ)
            / e.energy
                .average_power_mw(e.completion_cycle.max(1), CLOCK_GHZ);

        print_row(
            &[
                format!("{side}x{side}"),
                mesh.nodes().to_string(),
                format!("{lo:.2}"),
                format!("{le:.2}"),
                format!("{speedup:.2}x"),
                format!("{:.0}%", pwr_ratio * 100.0),
            ],
            &widths,
        );
    }
    println!("\nthe optical *latency* advantage grows with scale (average hop");
    println!("counts rise with the mesh side, multiplying the electrical");
    println!("per-hop cost while Phastlane still crosses 4 routers per cycle),");
    println!("but snoopy broadcast traffic scales quadratically: at 256 nodes");
    println!("the coherence speedup narrows as Phastlane's 2N multicast");
    println!("messages per broadcast saturate its row ports — consistent with");
    println!("the paper targeting 64 nodes for the snoopy design point.");
}
