//! Append-only NDJSON run journal: the checkpoint half of
//! checkpoint/resume.
//!
//! While a lab runs, every finished job's full record is appended as
//! one self-checking line. If the process is killed — SIGKILL, OOM,
//! power loss — the journal holds every job that completed; `lab run
//! --resume <journal>` replays those records into their result slots
//! and re-runs only the remainder, producing a canonical report
//! byte-identical to an uninterrupted run.
//!
//! Format, one JSON object per line:
//!
//! ```text
//! {"phastlane_journal": 1, "spec": "<spec.encode()>"}     header
//! {"crc": 3735928559, "record": {...full JobRecord...}}   per job
//! ```
//!
//! Each record line carries a CRC-32 of its record's compact JSON, so
//! a torn tail (the line being written when the process died) is
//! detected and dropped rather than half-parsed. Reading stops at the
//! first bad line: everything before it is trustworthy, everything
//! after it is unreachable garbage by construction of append-only
//! writes. Records are deduplicated by job index, last write wins.
//!
//! Appends are best-effort by design: a full disk degrades the journal
//! (counted in [`Journal::write_errors`]), never the run itself.

use crate::report::JobRecord;
use crate::spec::LabSpec;
use crate::store::crc32;
use phastlane_netsim::obs::json::{self, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Format version stamped in the header line.
const VERSION: u64 = 1;

/// An open journal being appended to by a running lab.
pub struct Journal {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
    write_errors: AtomicUsize,
}

impl Journal {
    /// Creates (truncating any previous file) a journal for one run of
    /// `spec` and writes the header line. The header pins the exact
    /// spec encoding, so a later `--resume` against a different spec is
    /// rejected instead of silently mixing runs.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or writing the file.
    pub fn create(path: &Path, spec: &LabSpec) -> Result<Journal, String> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut w = BufWriter::new(file);
        let header = JsonValue::Obj(vec![
            ("phastlane_journal".into(), JsonValue::Uint(VERSION)),
            ("spec".into(), JsonValue::Str(spec.encode())),
        ]);
        writeln!(w, "{}", header.to_string_compact())
            .and_then(|()| w.flush())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(w),
            write_errors: AtomicUsize::new(0),
        })
    }

    /// Appends one finished job's record and flushes, so the line is in
    /// the OS page cache before the next job is scheduled. Best-effort:
    /// failures bump [`Journal::write_errors`] and the run continues —
    /// a sick disk must never take the science down with it.
    pub fn append(&self, rec: &JobRecord) {
        let body = rec.to_json().to_string_compact();
        let line = JsonValue::Obj(vec![
            ("crc".into(), JsonValue::Uint(crc32(body.as_bytes()) as u64)),
            ("record".into(), rec.to_json()),
        ]);
        let mut w = self.file.lock().expect("journal lock");
        let wrote = writeln!(w, "{}", line.to_string_compact()).and_then(|()| w.flush());
        if wrote.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many appends failed (0 on a healthy disk).
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything recovered from a journal file on `--resume`.
#[derive(Debug)]
pub struct Recovered {
    /// The spec encoding pinned in the header.
    pub spec: String,
    /// Finished-job records, deduplicated by index (last write wins),
    /// in ascending index order.
    pub records: Vec<JobRecord>,
    /// Lines dropped at the tail: `0` for a cleanly-stopped journal,
    /// `1`+ when the process died mid-append (the torn line and
    /// anything after it).
    pub torn_lines: usize,
}

/// Reads a journal back, tolerating a torn tail. The header must parse;
/// record lines are consumed until the first line that is torn,
/// unparseable, or fails its CRC — that line and the rest are counted
/// in [`Recovered::torn_lines`] and discarded.
///
/// # Errors
///
/// If the file is unreadable, empty, or its header line is not a valid
/// journal header (wrong file, not a torn one).
pub fn load(path: &Path) -> Result<Recovered, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let mut lines = raw.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| format!("journal {} is empty", path.display()))?;
    let header = json::parse(header_line)
        .map_err(|e| format!("journal {} has a malformed header: {e}", path.display()))?;
    if header.get("phastlane_journal").and_then(|v| v.as_u64()) != Some(VERSION) {
        return Err(format!(
            "{} is not a phastlane journal (missing version stamp)",
            path.display()
        ));
    }
    let spec = header
        .get("spec")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("journal {} header lacks a spec", path.display()))?
        .to_string();

    let mut by_index: Vec<(usize, JobRecord)> = Vec::new();
    let mut torn = 0usize;
    for (n, line) in lines.enumerate() {
        let parsed = parse_record_line(line);
        match parsed {
            Some(rec) => by_index.push((rec.index, rec)),
            None => {
                // First bad line: everything from here on is after the
                // crash point; count and stop.
                torn = raw.lines().count() - 1 - n;
                break;
            }
        }
    }
    // Dedup by index, last write wins (a retried job journals twice).
    by_index.sort_by_key(|(i, _)| *i);
    let mut records: Vec<JobRecord> = Vec::with_capacity(by_index.len());
    for (i, rec) in by_index {
        match records.last() {
            Some(last) if last.index == i => *records.last_mut().unwrap() = rec,
            _ => records.push(rec),
        }
    }
    Ok(Recovered {
        spec,
        records,
        torn_lines: torn,
    })
}

/// Parses one record line, returning `None` for anything torn: bad
/// JSON, missing fields, or a CRC that does not match the record body.
fn parse_record_line(line: &str) -> Option<JobRecord> {
    let v = json::parse(line).ok()?;
    let expected = v.get("crc")?.as_u64()?;
    let record = v.get("record")?;
    let body = record.to_string_compact();
    if crc32(body.as_bytes()) as u64 != expected {
        return None;
    }
    JobRecord::from_json(record).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::JobOutcome;
    use phastlane_netsim::stats::LatencyStats;

    fn spec() -> LabSpec {
        LabSpec::parse(
            "mesh 4x4\nnets optical4\npatterns uniform\nrates 0.02\n\
             warmup 50\nmeasure 100\ndrain 400\n",
        )
        .unwrap()
    }

    fn record(index: usize) -> JobRecord {
        let mut latency = LatencyStats::new();
        latency.record(3 + index as u64);
        JobRecord {
            index,
            net: "optical4".into(),
            pattern: Some("uniform".into()),
            rate: Some(0.02),
            benchmark: None,
            intensity: 0.0,
            replica: 0,
            seed: 42,
            cycles: 550,
            latency,
            energy_pj: 12.5,
            offered_rate: Some(0.02),
            accepted_rate: Some(0.02),
            delivered_rate: Some(0.019),
            completion_cycle: None,
            unfinished: 0,
            undeliverable: 0,
            timed_out: false,
            stable: Some(true),
            outcome: JobOutcome::Completed,
            wall_seconds: 0.25,
            phases: None,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "phastlane-journal-{tag}-{}.ndjson",
            std::process::id()
        ))
    }

    #[test]
    fn journal_round_trips_records() {
        let path = tmp("roundtrip");
        let spec = spec();
        let j = Journal::create(&path, &spec).unwrap();
        j.append(&record(0));
        j.append(&record(2));
        assert_eq!(j.write_errors(), 0);
        drop(j);

        let rec = load(&path).unwrap();
        assert_eq!(rec.spec, spec.encode());
        assert_eq!(rec.torn_lines, 0);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].index, 0);
        assert_eq!(rec.records[1].index, 2);
        assert_eq!(rec.records[1].latency, record(2).latency);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let j = Journal::create(&path, &spec()).unwrap();
        j.append(&record(0));
        j.append(&record(1));
        drop(j);
        // Simulate a SIGKILL mid-append: chop the last line in half.
        let raw = std::fs::read_to_string(&path).unwrap();
        let cut = raw.len() - 40;
        std::fs::write(&path, &raw[..cut]).unwrap();

        let rec = load(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "only the intact record survives");
        assert_eq!(rec.records[0].index, 0);
        assert_eq!(rec.torn_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_indices_dedup_last_wins() {
        let path = tmp("dedup");
        let j = Journal::create(&path, &spec()).unwrap();
        let mut first = record(1);
        first.outcome = JobOutcome::TimedOut {
            reason: "wall budget 1s exceeded".into(),
        };
        first.timed_out = true;
        j.append(&first);
        j.append(&record(1)); // the retry that completed
        drop(j);

        let rec = load(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert!(rec.records[0].outcome.is_completed(), "retry wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_journal_files_are_rejected_with_context() {
        let path = tmp("reject");
        std::fs::write(&path, "{\"spec\": \"x\"}\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("not a phastlane journal"), "{err}");

        std::fs::write(&path, "").unwrap();
        assert!(load(&path).unwrap_err().contains("empty"));
        let _ = std::fs::remove_file(&path);
    }
}
