//! Diagnostic: energy breakdown per network on one benchmark.
use phastlane_bench::{run_on, scaled_profile, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Barnes".into());
    let profile = scaled_profile(&splash2::benchmark(&name).unwrap(), 0.1);
    let trace = generate_trace(Mesh::PAPER, &profile);
    for cfg in [Config::Optical4, Config::Optical8, Config::Electrical3] {
        let out = run_on(cfg, &trace);
        let e = out.result.energy;
        println!(
            "{:12} cycles={} dyn={:.0}nJ leak={:.0}nJ laser={:.0}nJ link={:.0}nJ total={:.0}nJ power={:.0}mW",
            cfg.label(),
            out.result.completion_cycle,
            e.dynamic_pj / 1000.0,
            e.leakage_pj / 1000.0,
            e.laser_pj / 1000.0,
            e.link_pj / 1000.0,
            e.total_pj() / 1000.0,
            out.average_power_mw(),
        );
    }
}
