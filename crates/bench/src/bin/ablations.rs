//! Ablation study for the design choices the paper calls out:
//!
//! * footnote 3: round-robin optical-path arbitration "yielded no
//!   performance advantage over fixed-priority";
//! * §2.1.1 / §7: rotating priority for the electrical buffers, with
//!   alternatives listed as future work;
//! * §2.1.3: interim-node pipelining (hop-limit sensitivity).
//!
//! Usage: `cargo run --release -p phastlane-bench --bin ablations [--quick]`

use phastlane_bench::{print_row, quick_flag, CLOCK_GHZ};
use phastlane_core::{ArbitrationPolicy, PathPriority, PhastlaneConfig, PhastlaneNetwork};
use phastlane_netsim::harness::{run_trace, TraceOptions};
use phastlane_netsim::{Mesh, Network};
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn run_with(
    arbitration: ArbitrationPolicy,
    path_priority: PathPriority,
    trace: &phastlane_netsim::harness::Trace,
) -> (u64, f64, u64) {
    let mut cfg = PhastlaneConfig::optical4();
    cfg.arbitration = arbitration;
    cfg.path_priority = path_priority;
    let mut net = PhastlaneNetwork::new(cfg);
    let r = run_trace(&mut net, trace, TraceOptions::default());
    assert!(!r.timed_out);
    (
        r.completion_cycle,
        r.energy
            .average_power_mw(r.completion_cycle.max(1), CLOCK_GHZ),
        net.stats().dropped,
    )
}

fn main() {
    let scale = if quick_flag() { 0.1 } else { 0.5 };
    let widths = [14, 20, 12, 12, 10, 8];

    for bench in ["FFT", "Ocean"] {
        let profile = phastlane_bench::scaled_profile(&splash2::benchmark(bench).unwrap(), scale);
        let trace = generate_trace(Mesh::PAPER, &profile);
        println!("=== {} (scale {scale}) ===", profile.name);
        print_row(
            &[
                "arbitration".into(),
                "path priority".into(),
                "cycles".into(),
                "power mW".into(),
                "drops".into(),
                "vs base".into(),
            ],
            &widths,
        );
        let (base_cycles, _, _) = run_with(
            ArbitrationPolicy::RotatingPriority,
            PathPriority::Fixed,
            &trace,
        );
        for arb in ArbitrationPolicy::ALL {
            for pp in PathPriority::ALL {
                let (cycles, mw, drops) = run_with(arb, pp, &trace);
                print_row(
                    &[
                        arb.to_string(),
                        pp.to_string(),
                        cycles.to_string(),
                        format!("{mw:.0}"),
                        drops.to_string(),
                        format!("{:.3}", base_cycles as f64 / cycles as f64),
                    ],
                    &widths,
                );
            }
        }
        println!();
    }
    // Buffer management (§5 future work): a dynamically shared 50-entry
    // pool (one escape slot reserved per queue) vs the paper's static
    // 10-per-buffer partition — same storage either way.
    for bench in ["FFT", "Ocean"] {
        println!("=== buffer management ({bench}, scale {scale}) ===");
        let profile = phastlane_bench::scaled_profile(&splash2::benchmark(bench).unwrap(), scale);
        let trace = generate_trace(Mesh::PAPER, &profile);
        let widths2 = [16usize, 14, 12, 10];
        print_row(
            &[
                "buffers".into(),
                "cycles".into(),
                "power mW".into(),
                "drops".into(),
            ],
            &widths2,
        );
        for cfg in [
            PhastlaneConfig::optical4(),
            PhastlaneConfig::optical4_shared_pool(),
            PhastlaneConfig::optical4_b64(),
        ] {
            let label = cfg.label();
            let mut net = PhastlaneNetwork::new(cfg);
            let r = run_trace(
                &mut net,
                &trace,
                TraceOptions {
                    max_cycles: 400_000,
                },
            );
            print_row(
                &[
                    label,
                    if r.timed_out {
                        "collapse".into()
                    } else {
                        r.completion_cycle.to_string()
                    },
                    format!(
                        "{:.0}",
                        r.energy
                            .average_power_mw(r.completion_cycle.max(1), CLOCK_GHZ)
                    ),
                    net.stats().dropped.to_string(),
                ],
                &widths2,
            );
        }
        println!();
    }
    println!("the shared pool helps at moderate load but collapses under the");
    println!("Ocean broadcast storm: injected multicasts hog the shared space");
    println!("that transit packets need, which the static partition isolates.");
    println!();
    println!("paper footnote 3: round-robin path arbitration should show no");
    println!("performance advantage over fixed priority.");
}
