//! Electrical baseline router configuration (Table 2).

use phastlane_netsim::geometry::Mesh;

/// Configuration of the baseline electrical virtual-channel network.
///
/// The paper's baseline is "an aggressive router optimized for both
/// latency and bandwidth": single-flit packets (no serialization
/// latency), pipeline speculation and route-lookahead compressing the per
/// hop latency to 2–3 cycles, input speedup 4, and ejection that bypasses
/// the crossbar.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectricalConfig {
    /// Mesh dimensions (8x8 in the paper).
    pub mesh: Mesh,
    /// Virtual channels per input port (10).
    pub vcs_per_port: usize,
    /// Flit entries per VC (1, with wait-for-tail credit).
    pub entries_per_vc: usize,
    /// Total router pipeline delay in cycles (3 baseline, 2 aggressive).
    pub router_delay: u64,
    /// Crossbar input speedup: flits that may leave one input port per
    /// cycle (4).
    pub input_speedup: usize,
    /// Crossbar output speedup (1).
    pub output_speedup: usize,
    /// iSLIP iterations for the VC and switch allocators.
    pub islip_iterations: usize,
    /// NIC injection-queue depth (50).
    pub nic_entries: usize,
    /// One-time extra pipeline latency the first multicast from each
    /// source pays while its VCTM tree is installed (0 = pre-warmed
    /// trees, which favours the baseline).
    pub vctm_setup_penalty: u64,
}

impl ElectricalConfig {
    /// The paper's baseline: 3-cycle router.
    pub fn electrical3() -> Self {
        Self::with_router_delay(3)
    }

    /// The "very aggressive" 2-cycle router of §5.
    pub fn electrical2() -> Self {
        Self::with_router_delay(2)
    }

    /// Builds a configuration with the given router delay and Table 2
    /// defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `router_delay` is zero.
    pub fn with_router_delay(router_delay: u64) -> Self {
        assert!(router_delay > 0, "router delay must be positive");
        ElectricalConfig {
            mesh: Mesh::PAPER,
            vcs_per_port: 10,
            entries_per_vc: 1,
            router_delay,
            input_speedup: 4,
            output_speedup: 1,
            islip_iterations: 2,
            nic_entries: phastlane_netsim::nic::NIC_ENTRIES,
            vctm_setup_penalty: 0,
        }
    }

    /// Configuration label matching the paper's figures (`Electrical3`,
    /// `Electrical2`).
    pub fn label(&self) -> String {
        format!("Electrical{}", self.router_delay)
    }
}

impl Default for ElectricalConfig {
    fn default() -> Self {
        Self::electrical3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = ElectricalConfig::default();
        assert_eq!(c.vcs_per_port, 10);
        assert_eq!(c.entries_per_vc, 1);
        assert_eq!(c.router_delay, 3);
        assert_eq!(c.input_speedup, 4);
        assert_eq!(c.output_speedup, 1);
        assert_eq!(c.nic_entries, 50);
    }

    #[test]
    fn labels() {
        assert_eq!(ElectricalConfig::electrical3().label(), "Electrical3");
        assert_eq!(ElectricalConfig::electrical2().label(), "Electrical2");
    }

    #[test]
    #[should_panic(expected = "router delay")]
    fn zero_delay_rejected() {
        let _ = ElectricalConfig::with_router_delay(0);
    }
}
