//! Demonstrates the packet's SECDED protection (§2.1 "Error
//! Detection/Correction bits"): encode a cache line, inject optical bit
//! errors, and watch single upsets get corrected while double errors are
//! detected for retransmission.
//!
//! Run with: `cargo run --release --example ecc_protection`

use phastlane_repro::netsim::ecc::{decode, encode, Decoded, ProtectedLine};

fn main() {
    // One 64-bit word of the cache line.
    let word = 0xCAFE_F00D_DEAD_BEEFu64;
    let cw = encode(word);
    println!("word   {word:#018x}");
    println!(
        "check  {:#04x} (7 Hamming bits + overall parity)\n",
        cw.check
    );

    let mut flipped = cw;
    flipped.data ^= 1 << 42;
    println!("single flip at bit 42 -> {}", decode(flipped));
    assert_eq!(decode(flipped), Decoded::Corrected(word));

    let mut double = cw;
    double.data ^= (1 << 3) | (1 << 57);
    println!("double flip at 3 and 57 -> {}\n", decode(double));
    assert_eq!(decode(double), Decoded::Uncorrectable);

    // A whole 64-byte line: 8 words, 64 bits of ECC overhead out of the
    // packet's 70-bit control/misc budget.
    let line = [1u64, 2, 3, 4, 5, 6, 7, 8];
    let mut protected = ProtectedLine::encode(line);
    protected.flip_bit(0, 12);
    protected.flip_bit(5, 70); // a check bit
    match protected.decode() {
        Some((recovered, corrected)) => {
            println!("cache line recovered: {recovered:?}");
            println!("words needing correction: {corrected}");
            assert_eq!(recovered, line);
        }
        None => unreachable!("single flips per word are correctable"),
    }
    println!(
        "\nECC overhead: {} bits per 64-byte line",
        ProtectedLine::OVERHEAD_BITS
    );
    println!("a NIC receiving near the sensitivity floor corrects single");
    println!("upsets locally; double errors fall back to the drop/resend path.");
}
