//! Latency, throughput, and energy statistics.

use crate::packet::PacketKind;
use std::fmt;

/// Streaming summary of packet latencies, with a log2-bucketed histogram
/// for percentile estimates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    count: u64,
    /// u128: a u64 accumulator overflows after ~2^64 total latency —
    /// reachable with a handful of near-`u64::MAX` samples.
    sum: u128,
    max: u64,
    min: Option<u64>,
    /// bucket[i] counts samples with floor(log2(latency)) == i - 1
    /// (bucket 0 holds latency 0).
    buckets: [u64; 32],
}

impl LatencyStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += u128::from(latency);
        self.max = self.max.max(latency);
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.buckets[Self::bucket_of(latency)] += 1;
    }

    fn bucket_of(latency: u64) -> usize {
        if latency == 0 {
            0
        } else {
            (64 - latency.leading_zeros()).min(31) as usize
        }
    }

    /// Upper bound of a bucket (inclusive). The last bucket is
    /// saturated — `bucket_of` caps at 31, so it holds every sample at
    /// or above 2^30 — and its limit is `u64::MAX` (the percentile
    /// clamp to the observed max then keeps estimates exact there).
    fn bucket_limit(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 31 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// An estimate of the `p`-th percentile (0 < p <= 100), as the upper
    /// bound of the log2 bucket containing that rank — within 2x of the
    /// true value, and clamped to the exact observed maximum.
    ///
    /// Returns `None` when no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_limit(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Maximum latency observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Minimum latency observed, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Serializes the *complete* internal state (count, exact sum, min,
    /// max, histogram buckets) so a summary can be reconstructed
    /// bit-for-bit by [`from_json`](Self::from_json). This is the run
    /// journal's checkpoint format — the summary JSON in reports only
    /// carries derived values (mean, percentiles) and cannot round-trip.
    /// The u128 sum travels as two u64 halves.
    pub fn to_json(&self) -> crate::obs::json::JsonValue {
        use crate::obs::json::JsonValue as J;
        J::Obj(vec![
            ("count".into(), J::Uint(self.count)),
            ("sum_hi".into(), J::Uint((self.sum >> 64) as u64)),
            ("sum_lo".into(), J::Uint(self.sum as u64)),
            ("max".into(), J::Uint(self.max)),
            (
                "min".into(),
                self.min
                    .map(J::Uint)
                    .unwrap_or(crate::obs::json::JsonValue::Null),
            ),
            (
                "buckets".into(),
                J::Arr(self.buckets.iter().map(|&b| J::Uint(b)).collect()),
            ),
        ])
    }

    /// Reconstructs a summary from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &crate::obs::json::JsonValue) -> Result<LatencyStats, String> {
        use crate::obs::json::JsonValue as J;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("latency: missing `{k}`"));
        let uint = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("latency: `{k}` is not an unsigned integer"))
        };
        let sum = (u128::from(uint("sum_hi")?) << 64) | u128::from(uint("sum_lo")?);
        let min = match field("min")? {
            J::Null => None,
            m => Some(
                m.as_u64()
                    .ok_or_else(|| "latency: `min` is not an unsigned integer".to_string())?,
            ),
        };
        let raw = field("buckets")?
            .as_arr()
            .ok_or_else(|| "latency: `buckets` is not an array".to_string())?;
        if raw.len() != 32 {
            return Err(format!("latency: expected 32 buckets, got {}", raw.len()));
        }
        let mut buckets = [0u64; 32];
        for (i, b) in raw.iter().enumerate() {
            buckets[i] = b
                .as_u64()
                .ok_or_else(|| format!("latency: bucket {i} is not an unsigned integer"))?;
        }
        Ok(LatencyStats {
            count: uint("count")?,
            sum,
            max: uint("max")?,
            min,
            buckets,
        })
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            *mine += theirs;
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.2} min={} max={}",
                self.count,
                mean,
                self.min.unwrap_or(0),
                self.max
            ),
            None => f.write_str("n=0"),
        }
    }
}

/// Cumulative energy spent by a network, split by physical mechanism.
/// All values in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Electrical dynamic energy: buffers, arbitration, crossbars, drivers.
    pub dynamic_pj: f64,
    /// Electrical static (leakage) energy.
    pub leakage_pj: f64,
    /// Optical transmit energy: laser power provisioned for launched
    /// packets (zero for the electrical network).
    pub laser_pj: f64,
    /// Link traversal energy (electrical network only; optical links are
    /// covered by `laser_pj`).
    pub link_pj: f64,
}

impl EnergyReport {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.leakage_pj + self.laser_pj + self.link_pj
    }

    /// Average power in milliwatts over `cycles` at `clock_ghz`.
    ///
    /// pJ / (cycles / GHz in ns) = pJ/ns * 1e-9/1e-12 ... directly:
    /// mW = 1e-3 J/s; pJ / ns = 1e-12 J / 1e-9 s = 1e-3 J/s = 1 mW.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn average_power_mw(&self, cycles: u64, clock_ghz: f64) -> f64 {
        assert!(cycles > 0, "cannot average power over zero cycles");
        let ns = cycles as f64 / clock_ghz;
        self.total_pj() / ns
    }

    /// Component-wise difference (`self - other`); used to measure energy
    /// over a window.
    pub fn delta_since(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            dynamic_pj: self.dynamic_pj - other.dynamic_pj,
            leakage_pj: self.leakage_pj - other.leakage_pj,
            laser_pj: self.laser_pj - other.laser_pj,
            link_pj: self.link_pj - other.link_pj,
        }
    }
}

/// Latency summaries broken down by packet kind (requests vs responses
/// vs writebacks behave very differently under coherence workloads).
///
/// Stored as a dense array indexed by [`PacketKind::index`] — recording
/// is hit once per delivery, so it must not hash.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KindLatency {
    slots: [LatencyStats; PacketKind::ALL.len()],
}

impl KindLatency {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample for a kind.
    #[inline]
    pub fn record(&mut self, kind: PacketKind, latency: u64) {
        self.slots[kind.index()].record(latency);
    }

    /// The summary for one kind, if any samples were recorded.
    pub fn get(&self, kind: PacketKind) -> Option<&LatencyStats> {
        let s = &self.slots[kind.index()];
        (s.count() > 0).then_some(s)
    }

    /// Iterates the recorded kinds (declaration order).
    pub fn iter(&self) -> impl Iterator<Item = (PacketKind, &LatencyStats)> {
        PacketKind::ALL
            .iter()
            .map(|&k| (k, &self.slots[k.index()]))
            .filter(|(_, s)| s.count() > 0)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.count() == 0)
    }
}

/// Aggregate counters most experiments want.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkStats {
    /// Per-destination delivery latencies.
    pub latency: LatencyStats,
    /// Latencies broken down by packet kind.
    pub latency_by_kind: KindLatency,
    /// Packets injected (accepted into a NIC).
    pub injected: u64,
    /// Per-destination deliveries.
    pub delivered: u64,
    /// Packets dropped inside the network (Phastlane only).
    pub dropped: u64,
    /// Retransmissions after drops (Phastlane only).
    pub retransmitted: u64,
    /// Destinations terminally given up on (retry cap / livelock guard).
    pub undeliverable: u64,
    /// Messages whose retry cap fired (one message may cover several
    /// undeliverable destinations).
    pub retry_exhausted: u64,
    /// Launches steered around a faulted link/router (detour or forced
    /// electrical fallback at the faulted hop).
    pub rerouted: u64,
    /// Single-bit transient errors corrected by SECDED on delivery.
    pub ecc_corrected: u64,
    /// Uncorrectable (double) bit errors that forced a redelivery.
    pub ecc_uncorrectable: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary() {
        let mut s = LatencyStats::new();
        for v in [4, 8, 6] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(6.0));
        assert_eq!(s.max(), 8);
        assert_eq!(s.min(), Some(4));
    }

    #[test]
    fn empty_latency_has_no_mean() {
        assert_eq!(LatencyStats::new().mean(), None);
        assert_eq!(LatencyStats::new().min(), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(2);
        let mut b = LatencyStats::new();
        b.record(10);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(6.0));
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), 10);
    }

    #[test]
    fn energy_total_and_power() {
        let e = EnergyReport {
            dynamic_pj: 100.0,
            leakage_pj: 50.0,
            laser_pj: 25.0,
            link_pj: 25.0,
        };
        assert_eq!(e.total_pj(), 200.0);
        // 200 pJ over 100 cycles at 4 GHz = 200 pJ / 25 ns = 8 mW.
        assert!((e.average_power_mw(100, 4.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_delta() {
        let a = EnergyReport {
            dynamic_pj: 10.0,
            leakage_pj: 5.0,
            laser_pj: 1.0,
            link_pj: 2.0,
        };
        let b = EnergyReport {
            dynamic_pj: 4.0,
            leakage_pj: 2.0,
            laser_pj: 0.5,
            link_pj: 1.0,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.dynamic_pj, 6.0);
        assert_eq!(d.total_pj(), 10.5);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn power_over_zero_cycles_panics() {
        let _ = EnergyReport::default().average_power_mw(0, 4.0);
    }

    #[test]
    fn percentiles_from_buckets() {
        let mut s = LatencyStats::new();
        for v in 1..=1000u64 {
            s.record(v);
        }
        // p50 of 1..=1000 is ~500; log2 bucket upper bound gives <= 1023
        // and >= 511 (within 2x).
        let p50 = s.percentile(50.0).unwrap();
        assert!((256..=1000).contains(&p50), "p50 estimate {p50}");
        // p100 is clamped to the exact max.
        assert_eq!(s.percentile(100.0), Some(1000));
        // A tiny percentile lands in the low buckets.
        assert!(s.percentile(0.1).unwrap() <= 3);
        assert_eq!(LatencyStats::new().percentile(99.0), None);
    }

    #[test]
    fn percentile_of_constant_distribution() {
        let mut s = LatencyStats::new();
        for _ in 0..100 {
            s.record(7);
        }
        assert_eq!(s.percentile(1.0), Some(7));
        assert_eq!(s.percentile(99.0), Some(7));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_bounds() {
        let _ = LatencyStats::new().percentile(0.0);
    }

    /// Percentile estimates must respect the log2-bucket contract for
    /// any sample multiset: within 2x of the true value, never above
    /// the observed max, monotone in `p`.
    fn check_percentile_contract(samples: &[u64]) {
        let mut s = LatencyStats::new();
        for &v in samples {
            s.record(v);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let mut prev = 0u64;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let est = s.percentile(p).expect("non-empty");
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let truth = sorted[rank - 1];
            assert!(est <= s.max(), "p{p}: est {est} above max {}", s.max());
            assert!(
                est >= truth / 2,
                "p{p}: est {est} below half of true {truth}"
            );
            // Bucket upper bound never undershoots the true value.
            assert!(est >= truth.min(s.max()) / 2);
            assert!(est >= prev, "percentile not monotone at p{p}");
            prev = est;
        }
    }

    #[test]
    fn percentile_contract_uniform() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0x0057_A701);
        for _ in 0..32 {
            let n = rng.gen_range(1usize..400);
            let samples: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..5_000)).collect();
            check_percentile_contract(&samples);
        }
    }

    #[test]
    fn percentile_contract_bimodal() {
        // Two well-separated modes — the regime where bucketed
        // percentiles are most tempted to smear.
        let mut rng = crate::rng::SimRng::seed_from_u64(0x0057_A702);
        for _ in 0..32 {
            let n_low = rng.gen_range(1usize..200);
            let n_high = rng.gen_range(1usize..200);
            let mut samples: Vec<u64> = (0..n_low).map(|_| rng.gen_range(1u64..16)).collect();
            samples.extend((0..n_high).map(|_| rng.gen_range(4_096u64..8_192)));
            check_percentile_contract(&samples);
            // With >1% of mass in the high mode, p99 must report it.
            let mut s = LatencyStats::new();
            for &v in &samples {
                s.record(v);
            }
            if n_high * 100 > samples.len() {
                assert!(s.percentile(99.0).unwrap() >= 2_048);
            }
        }
    }

    #[test]
    fn percentile_contract_single_value() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0x0057_A703);
        for _ in 0..32 {
            let v = rng.gen_u64();
            let n = rng.gen_range(1usize..50);
            let mut s = LatencyStats::new();
            for _ in 0..n {
                s.record(v);
            }
            // Every percentile of a constant distribution is that value
            // (the estimate clamps to the exact observed max).
            for p in [0.5, 50.0, 99.9, 100.0] {
                assert_eq!(s.percentile(p), Some(v), "p{p} of constant {v}");
            }
            assert_eq!(s.min(), Some(v));
            // n*v accumulates in u128; the f64 division is exact only
            // to rounding, so compare with relative tolerance.
            let mean = s.mean().unwrap();
            assert!((mean - v as f64).abs() <= v as f64 * 1e-12);
        }
    }

    #[test]
    fn boundary_latencies_do_not_overflow() {
        // Zero, one, and u64::MAX-adjacent samples in one summary: the
        // u128 accumulator must not wrap, and order stats stay exact.
        let mut s = LatencyStats::new();
        for v in [0, 1, u64::MAX, u64::MAX - 1, u64::MAX] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), u64::MAX);
        let mean = s.mean().unwrap();
        let expect = (2.0 + 3.0 * u64::MAX as f64) / 5.0;
        assert!((mean - expect).abs() / expect < 1e-12, "mean {mean}");
        assert_eq!(s.percentile(100.0), Some(u64::MAX));
        assert!(s.percentile(1.0).unwrap() <= 1);

        // Merging two near-overflow summaries must also stay exact.
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for _ in 0..4 {
            a.record(u64::MAX);
            b.record(u64::MAX);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert!((a.mean().unwrap() - u64::MAX as f64).abs() < 1e3);
    }

    #[test]
    fn kind_latency_breakdown() {
        let mut k = KindLatency::new();
        assert!(k.is_empty());
        k.record(PacketKind::ReadRequest, 10);
        k.record(PacketKind::ReadRequest, 20);
        k.record(PacketKind::DataResponse, 4);
        assert_eq!(k.get(PacketKind::ReadRequest).unwrap().mean(), Some(15.0));
        assert_eq!(k.get(PacketKind::DataResponse).unwrap().count(), 1);
        assert_eq!(k.get(PacketKind::Writeback), None);
        assert_eq!(k.iter().count(), 2);
    }

    #[test]
    fn display_formats() {
        let mut s = LatencyStats::new();
        s.record(5);
        assert_eq!(format!("{s}"), "n=1 mean=5.00 min=5 max=5");
        assert_eq!(format!("{}", LatencyStats::new()), "n=0");
    }

    #[test]
    fn latency_json_round_trip_is_exact() {
        let mut s = LatencyStats::new();
        for lat in [0, 1, 7, 1000, u64::MAX, u64::MAX] {
            s.record(lat);
        }
        // Through the serializer and the parser: the reconstructed
        // summary must be bit-identical, including the u128 sum that
        // overflows a single u64.
        let text = s.to_json().to_string_compact();
        let parsed = crate::obs::json::parse(&text).expect("valid json");
        let back = LatencyStats::from_json(&parsed).expect("round-trips");
        assert_eq!(back, s);
        let err = LatencyStats::from_json(&crate::obs::json::parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
