//! Umbrella crate for the Phastlane reproduction workspace.
//!
//! This crate only re-exports the member crates so that the workspace-level
//! integration tests (`tests/`) and examples (`examples/`) have a single
//! dependency surface. All functionality lives in the member crates:
//!
//! - [`photonics`] — device/technology models (paper §3)
//! - [`netsim`] — shared cycle-accurate simulation substrate
//! - [`traffic`] — synthetic patterns and SPLASH2-style coherence traces
//! - [`optical`] — the Phastlane optical network (paper §2)
//! - [`electrical`] — the baseline electrical virtual-channel network

pub use phastlane_core as optical;
pub use phastlane_electrical as electrical;
pub use phastlane_netsim as netsim;
pub use phastlane_photonics as photonics;
pub use phastlane_traffic as traffic;
