//! Randomized property tests of workload generation: codec roundtrips
//! for arbitrary traces, pattern bijectivity, and trace structural
//! invariants for arbitrary profiles.
//!
//! Cases are drawn from the in-tree deterministic [`SimRng`], so every
//! run checks the same inputs and failures reproduce exactly.

use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::packet::PacketKind;
use phastlane_netsim::rng::SimRng;
use phastlane_traffic::codec;
use phastlane_traffic::coherence::{generate_trace, BenchmarkProfile};
use phastlane_traffic::patterns::Pattern;

fn random_profile(rng: &mut SimRng) -> BenchmarkProfile {
    BenchmarkProfile {
        name: "prop",
        misses_per_core: rng.gen_range(1usize..12),
        write_fraction: rng.gen_f64(),
        shared_fraction: rng.gen_f64(),
        writeback_fraction: rng.gen_f64(),
        mean_gap: rng.gen_f64() * 60.0,
        barrier_every: if rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(2usize..20)
        },
        hotspot_weight: rng.gen_f64() * 0.9,
        outstanding: rng.gen_range(1usize..6),
        active_cores: rng.gen_range(1usize..65),
        seed: rng.gen_u64(),
    }
}

/// Any generated trace validates and roundtrips through the text codec
/// without loss.
#[test]
fn codec_roundtrip_arbitrary_traces() {
    let mut rng = SimRng::seed_from_u64(0x0C0D_EC01);
    for _ in 0..48 {
        let profile = random_profile(&mut rng);
        let trace = generate_trace(Mesh::PAPER, &profile);
        assert!(trace.validate().is_ok(), "{profile:?}");
        let text = codec::encode(&trace);
        let back = codec::decode(&text).expect("roundtrip decodes");
        assert_eq!(trace, back, "{profile:?}");
    }
}

/// Trace structure: every response has exactly one dependency (its
/// request, at the owner), every request broadcasts, and message
/// counts match the profile.
#[test]
fn trace_structure_invariants() {
    let mut rng = SimRng::seed_from_u64(0x0C0D_EC02);
    for _ in 0..48 {
        let profile = random_profile(&mut rng);
        let trace = generate_trace(Mesh::PAPER, &profile);
        let expected_misses = profile.misses_per_core * profile.active_cores.min(64);
        let mut requests = 0usize;
        let mut responses = 0usize;
        for m in &trace.messages {
            match m.kind {
                PacketKind::ReadRequest | PacketKind::WriteRequest => {
                    requests += 1;
                    assert!(m.deps.len() <= 2, "window + release at most: {profile:?}");
                }
                PacketKind::DataResponse => {
                    responses += 1;
                    assert_eq!(m.deps.len(), 1, "{profile:?}");
                }
                _ => {}
            }
        }
        assert_eq!(requests, expected_misses, "{profile:?}");
        assert_eq!(responses, expected_misses, "{profile:?}");
    }
}

/// Determinism: the same profile yields the same trace.
#[test]
fn generation_deterministic() {
    let mut rng = SimRng::seed_from_u64(0x0C0D_EC03);
    for _ in 0..24 {
        let profile = random_profile(&mut rng);
        let a = generate_trace(Mesh::PAPER, &profile);
        let b = generate_trace(Mesh::PAPER, &profile);
        assert_eq!(a, b, "{profile:?}");
    }
}

/// The Figure 9 permutation patterns stay bijective on any power-of-two
/// square mesh.
#[test]
fn patterns_bijective() {
    let mut seeder = SimRng::seed_from_u64(0x0C0D_EC04);
    for pow in 1u32..4 {
        for _ in 0..8 {
            let side = 1u16 << pow;
            let mesh = Mesh::new(side, side);
            let mut rng = SimRng::seed_from_u64(seeder.gen_u64());
            for p in [
                Pattern::BitComplement,
                Pattern::BitReverse,
                Pattern::Shuffle,
                Pattern::Transpose,
            ] {
                let mut seen = std::collections::HashSet::new();
                for src in mesh.iter_nodes() {
                    let d = p.dest(mesh, src, &mut rng);
                    assert!(mesh.contains(d));
                    assert!(seen.insert(d), "{p} not a bijection on {side}x{side}");
                }
            }
        }
    }
}

/// Pattern destinations are deterministic for the deterministic
/// patterns (independent of the RNG).
#[test]
fn deterministic_patterns_ignore_rng() {
    let mut seeder = SimRng::seed_from_u64(0x0C0D_EC05);
    for src in 0u16..64 {
        let mesh = Mesh::PAPER;
        let mut r1 = SimRng::seed_from_u64(seeder.gen_u64());
        let mut r2 = SimRng::seed_from_u64(seeder.gen_u64());
        for p in [
            Pattern::BitComplement,
            Pattern::BitReverse,
            Pattern::Shuffle,
            Pattern::Transpose,
            Pattern::NearestNeighbor,
        ] {
            assert_eq!(
                p.dest(mesh, NodeId(src), &mut r1),
                p.dest(mesh, NodeId(src), &mut r2)
            );
        }
    }
}
