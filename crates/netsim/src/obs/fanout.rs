//! Multi-subscriber fan-out for NDJSON event streams.
//!
//! The [`EventSink`](crate::obs::EventSink) writes one JSON line per
//! lifecycle event to a single writer. A job service needs the opposite
//! cardinality: one producing run, any number of watching HTTP clients,
//! each arriving and leaving at its own pace. [`EventFanout`] is that
//! junction:
//!
//! * the producer side is an ordinary [`Write`] handle
//!   ([`EventFanout::writer`]), so an existing `EventSink` plugs in
//!   unchanged — workers keep the sink's never-block contract because
//!   publishing is a short mutex push, never I/O;
//! * every line is appended to a bounded replay **history**, so a
//!   subscriber that connects late (or after the run finished) still
//!   sees the whole stream up to the history cap;
//! * each [`FanoutSubscriber`] owns a bounded queue. A slow consumer
//!   sheds its *own* events — drops are counted per subscriber and
//!   reported when the stream ends, never inflicted on the producer or
//!   on other subscribers;
//! * [`close`](EventFanout::close) marks the stream complete; drained
//!   subscribers then observe [`FanoutPoll::Closed`] with their final
//!   drop accounting.
//!
//! Consumers *poll*: the fan-out never blocks anyone, in either
//! direction. The serving layer's event threads sleep between polls and
//! do their socket writes outside the fan-out lock.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Default bound on replayable history lines.
pub const DEFAULT_HISTORY_CAPACITY: usize = 4096;

/// Default bound on one subscriber's unconsumed lines.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 4096;

/// One subscriber's queue and accounting inside the shared state.
struct SubState {
    id: u64,
    queue: VecDeque<Arc<str>>,
    capacity: usize,
    dropped: u64,
}

/// Shared fan-out state behind one mutex; every operation is a short
/// push/pop, never I/O.
struct FanoutState {
    history: VecDeque<Arc<str>>,
    history_capacity: usize,
    history_dropped: u64,
    subscribers: Vec<SubState>,
    next_sub: u64,
    published: u64,
    closed: bool,
}

/// A bounded, poll-driven broadcast hub for NDJSON event lines. See the
/// module docs for the contract.
pub struct EventFanout {
    state: Mutex<FanoutState>,
    sub_capacity: usize,
}

/// One `poll` result on a [`FanoutSubscriber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FanoutPoll {
    /// Lines published since the last poll (possibly empty — the stream
    /// is still open, try again later).
    Lines(Vec<Arc<str>>),
    /// The stream is closed and this subscriber has consumed everything
    /// it was queued; `dropped` is how many lines this subscriber shed.
    Closed {
        /// Lines this subscriber lost to its own queue bound.
        dropped: u64,
    },
}

impl EventFanout {
    /// A fan-out with the given history and per-subscriber queue bounds
    /// (each clamped to ≥ 1).
    pub fn new(history_capacity: usize, sub_capacity: usize) -> Arc<EventFanout> {
        Arc::new(EventFanout {
            state: Mutex::new(FanoutState {
                history: VecDeque::new(),
                history_capacity: history_capacity.max(1),
                history_dropped: 0,
                subscribers: Vec::new(),
                next_sub: 0,
                published: 0,
                closed: false,
            }),
            sub_capacity: sub_capacity.max(1),
        })
    }

    /// A fan-out with the default bounds.
    pub fn with_defaults() -> Arc<EventFanout> {
        EventFanout::new(DEFAULT_HISTORY_CAPACITY, DEFAULT_SUBSCRIBER_CAPACITY)
    }

    /// Publishes one event line (without trailing newline) to the
    /// history and every live subscriber. Short lock, no I/O, never
    /// blocks on a consumer.
    pub fn publish(&self, line: &str) {
        let line: Arc<str> = Arc::from(line);
        let mut s = self.state.lock().unwrap();
        s.published += 1;
        if s.history.len() >= s.history_capacity {
            s.history.pop_front();
            s.history_dropped += 1;
        }
        s.history.push_back(Arc::clone(&line));
        for sub in &mut s.subscribers {
            if sub.queue.len() >= sub.capacity {
                sub.dropped += 1;
            } else {
                sub.queue.push_back(Arc::clone(&line));
            }
        }
    }

    /// Marks the stream complete. Idempotent; subscribers drain what
    /// they have queued and then observe [`FanoutPoll::Closed`].
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
    }

    /// Whether [`close`](EventFanout::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Total lines published so far.
    pub fn published(&self) -> u64 {
        self.state.lock().unwrap().published
    }

    /// Lines evicted from the replay history plus lines shed by
    /// *current* subscribers — the fan-out's total loss accounting.
    pub fn dropped(&self) -> u64 {
        let s = self.state.lock().unwrap();
        s.history_dropped + s.subscribers.iter().map(|sub| sub.dropped).sum::<u64>()
    }

    /// Registers a subscriber. Its queue starts with the replay history
    /// (subject to the subscriber bound — overflow counts as dropped),
    /// then receives every subsequently published line.
    pub fn subscribe(self: &Arc<Self>) -> FanoutSubscriber {
        let mut s = self.state.lock().unwrap();
        let id = s.next_sub;
        s.next_sub += 1;
        let mut sub = SubState {
            id,
            queue: VecDeque::new(),
            capacity: self.sub_capacity,
            dropped: s.history_dropped,
        };
        for line in &s.history {
            if sub.queue.len() >= sub.capacity {
                sub.dropped += 1;
            } else {
                sub.queue.push_back(Arc::clone(line));
            }
        }
        s.subscribers.push(sub);
        FanoutSubscriber {
            fanout: Arc::clone(self),
            id,
        }
    }

    /// A [`Write`] adapter feeding complete lines into the fan-out —
    /// hand it to [`EventSink::new`](crate::obs::EventSink::new) as the
    /// sink's writer.
    pub fn writer(self: &Arc<Self>) -> FanoutWriter {
        FanoutWriter {
            fanout: Arc::clone(self),
            partial: Vec::new(),
        }
    }
}

/// One consumer's handle; drop it to unsubscribe.
pub struct FanoutSubscriber {
    fanout: Arc<EventFanout>,
    id: u64,
}

impl FanoutSubscriber {
    /// Takes every queued line. Returns [`FanoutPoll::Closed`] once the
    /// stream is closed *and* the queue is empty.
    pub fn poll(&self) -> FanoutPoll {
        let mut s = self.fanout.state.lock().unwrap();
        let closed = s.closed;
        let sub = s
            .subscribers
            .iter_mut()
            .find(|sub| sub.id == self.id)
            .expect("subscriber still registered");
        if sub.queue.is_empty() {
            if closed {
                return FanoutPoll::Closed {
                    dropped: sub.dropped,
                };
            }
            return FanoutPoll::Lines(Vec::new());
        }
        FanoutPoll::Lines(sub.queue.drain(..).collect())
    }

    /// Lines this subscriber has shed so far.
    pub fn dropped(&self) -> u64 {
        let s = self.fanout.state.lock().unwrap();
        s.subscribers
            .iter()
            .find(|sub| sub.id == self.id)
            .map_or(0, |sub| sub.dropped)
    }
}

impl Drop for FanoutSubscriber {
    fn drop(&mut self) {
        let mut s = self.fanout.state.lock().unwrap();
        s.subscribers.retain(|sub| sub.id != self.id);
    }
}

/// [`Write`] adapter buffering bytes into complete `\n`-terminated
/// lines and publishing each to the fan-out.
pub struct FanoutWriter {
    fanout: Arc<EventFanout>,
    partial: Vec<u8>,
}

impl Write for FanoutWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.partial.extend_from_slice(buf);
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let rest = self.partial.split_off(pos + 1);
            let mut line = std::mem::replace(&mut self.partial, rest);
            line.pop(); // the newline
            self.fanout.publish(&String::from_utf8_lossy(&line));
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::JsonValue;
    use crate::obs::EventSink;

    fn lines_of(poll: FanoutPoll) -> Vec<String> {
        match poll {
            FanoutPoll::Lines(v) => v.iter().map(|l| l.to_string()).collect(),
            FanoutPoll::Closed { .. } => panic!("unexpected close"),
        }
    }

    #[test]
    fn every_subscriber_sees_every_line_in_order() {
        let f = EventFanout::new(64, 64);
        let a = f.subscribe();
        f.publish("one");
        let b = f.subscribe(); // late: replays history
        f.publish("two");
        assert_eq!(lines_of(a.poll()), vec!["one", "two"]);
        assert_eq!(lines_of(b.poll()), vec!["one", "two"]);
        f.close();
        assert_eq!(a.poll(), FanoutPoll::Closed { dropped: 0 });
        assert_eq!(b.poll(), FanoutPoll::Closed { dropped: 0 });
    }

    #[test]
    fn slow_subscriber_sheds_alone_with_accounting() {
        let f = EventFanout::new(64, 2);
        let slow = f.subscribe();
        for i in 0..5 {
            f.publish(&format!("l{i}"));
        }
        // The slow consumer kept the oldest two and shed three...
        assert_eq!(lines_of(slow.poll()), vec!["l0", "l1"]);
        assert_eq!(slow.dropped(), 3);
        // ...while a fresh subscriber replays from history untouched
        // (its own bound permitting).
        let fresh = f.subscribe();
        assert_eq!(lines_of(fresh.poll()).len(), 2);
        assert_eq!(fresh.dropped(), 3, "over its own 2-line bound");
        f.close();
        assert_eq!(slow.poll(), FanoutPoll::Closed { dropped: 3 });
        assert_eq!(f.published(), 5);
    }

    #[test]
    fn late_subscriber_after_close_still_replays_then_ends() {
        let f = EventFanout::new(64, 64);
        f.publish("only");
        f.close();
        let late = f.subscribe();
        assert_eq!(lines_of(late.poll()), vec!["only"]);
        assert_eq!(late.poll(), FanoutPoll::Closed { dropped: 0 });
    }

    #[test]
    fn history_eviction_is_counted_and_inherited() {
        let f = EventFanout::new(2, 64);
        for i in 0..5 {
            f.publish(&format!("l{i}"));
        }
        assert_eq!(f.dropped(), 3, "history evictions");
        let sub = f.subscribe();
        assert_eq!(lines_of(sub.poll()), vec!["l3", "l4"]);
        f.close();
        assert_eq!(
            sub.poll(),
            FanoutPoll::Closed { dropped: 3 },
            "a late subscriber inherits the eviction count so its \
             consumer knows the stream is lossy"
        );
    }

    #[test]
    fn event_sink_plugs_into_the_writer_side() {
        let f = EventFanout::with_defaults();
        let sink = EventSink::new(Box::new(f.writer()), 64);
        for i in 0..3u64 {
            sink.emit(&JsonValue::Obj(vec![("i".to_string(), JsonValue::Uint(i))]));
        }
        let report = sink.finish();
        assert_eq!(report.emitted, 3);
        let sub = f.subscribe();
        let lines = lines_of(sub.poll());
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = crate::obs::json::parse(line).expect("whole JSON lines");
            assert_eq!(v.get("i").and_then(|x| x.as_u64()), Some(i as u64));
        }
    }

    #[test]
    fn concurrent_publishers_never_tear_lines() {
        let f = EventFanout::new(10_000, 10_000);
        let sub = f.subscribe();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let f = Arc::clone(&f);
                scope.spawn(move || {
                    let mut w = f.writer();
                    for i in 0..100u64 {
                        w.write_all(format!("{{\"v\": {}}}\n", t * 1000 + i).as_bytes())
                            .unwrap();
                    }
                });
            }
        });
        f.close();
        let mut seen = 0;
        loop {
            match sub.poll() {
                FanoutPoll::Lines(lines) => {
                    for line in &lines {
                        crate::obs::json::parse(line).expect("interleaving never tears a line");
                    }
                    seen += lines.len();
                }
                FanoutPoll::Closed { dropped } => {
                    assert_eq!(dropped, 0);
                    break;
                }
            }
        }
        assert_eq!(seen, 400);
    }
}
